//! OGC Sensor Observation Service (SOS).
//!
//! The portal's live widgets — river level, rainfall, turbidity and the
//! webcam-linked graphs of paper Fig. 5 — are fed through this service: each
//! in-situ sensor is an SOS *offering*, observations are archived per
//! procedure, and clients retrieve them with temporal filters or ask for the
//! latest value.

use std::collections::BTreeMap;
use std::fmt;

use evop_data::{Observation, Sensor, SensorId, TimeSeries, Timestamp};

use crate::xml::Element;

/// Errors from SOS operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SosError {
    /// The procedure (sensor) is not registered.
    UnknownProcedure(SensorId),
    /// The temporal filter is inverted or empty.
    BadTemporalFilter,
}

impl fmt::Display for SosError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SosError::UnknownProcedure(id) => write!(f, "unknown procedure: {id}"),
            SosError::BadTemporalFilter => write!(f, "bad temporal filter"),
        }
    }
}

impl std::error::Error for SosError {}

/// A GetObservation request.
#[derive(Debug, Clone, PartialEq)]
pub struct GetObservation {
    /// The sensor whose archive is queried.
    pub procedure: SensorId,
    /// Start of the temporal filter (inclusive).
    pub begin: Timestamp,
    /// End of the temporal filter (exclusive).
    pub end: Timestamp,
    /// Optional cap on returned observations (most recent wins).
    pub max_results: Option<usize>,
}

/// The SOS server: sensor registry plus per-procedure observation archives.
///
/// # Examples
///
/// ```
/// use evop_data::{Catchment, Observation, Timestamp};
/// use evop_services::sos::{GetObservation, SosServer};
///
/// let mut sos = SosServer::new();
/// let sensors = Catchment::morland().default_sensors();
/// let stage = sensors[1].clone();
/// let stage_id = stage.id().clone();
/// sos.register_sensor(stage);
///
/// let t = Timestamp::from_ymd(2012, 6, 1);
/// sos.insert(Observation::new(stage_id.clone(), t, 0.42)).unwrap();
///
/// let hits = sos
///     .get_observation(&GetObservation {
///         procedure: stage_id,
///         begin: t.plus_days(-1),
///         end: t.plus_days(1),
///         max_results: None,
///     })
///     .unwrap();
/// assert_eq!(hits.len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct SosServer {
    sensors: BTreeMap<SensorId, Sensor>,
    archives: BTreeMap<SensorId, Vec<Observation>>,
}

impl SosServer {
    /// Creates an empty server.
    pub fn new() -> SosServer {
        SosServer::default()
    }

    /// Registers a sensor as an offering. Re-registering replaces the
    /// descriptor but keeps the archive.
    pub fn register_sensor(&mut self, sensor: Sensor) {
        self.archives.entry(sensor.id().clone()).or_default();
        self.sensors.insert(sensor.id().clone(), sensor);
    }

    /// The registered sensors, sorted by id.
    pub fn sensors(&self) -> impl Iterator<Item = &Sensor> {
        self.sensors.values()
    }

    /// A sensor descriptor by id.
    pub fn sensor(&self, id: &SensorId) -> Option<&Sensor> {
        self.sensors.get(id)
    }

    /// Archives one observation.
    ///
    /// # Errors
    ///
    /// Returns [`SosError::UnknownProcedure`] when the sensor is not
    /// registered.
    pub fn insert(&mut self, observation: Observation) -> Result<(), SosError> {
        let archive = self
            .archives
            .get_mut(observation.sensor())
            .ok_or_else(|| SosError::UnknownProcedure(observation.sensor().clone()))?;
        let idx = archive.partition_point(|o| o.time() <= observation.time());
        archive.insert(idx, observation);
        Ok(())
    }

    /// Bulk-ingests a regular series as observations for `sensor`, skipping
    /// missing (`NaN`) samples.
    ///
    /// # Errors
    ///
    /// Returns [`SosError::UnknownProcedure`] when the sensor is not
    /// registered.
    pub fn ingest_series(
        &mut self,
        sensor: &SensorId,
        series: &TimeSeries,
    ) -> Result<usize, SosError> {
        if !self.sensors.contains_key(sensor) {
            return Err(SosError::UnknownProcedure(sensor.clone()));
        }
        let mut inserted = 0;
        for (t, v) in series.iter() {
            if !v.is_nan() {
                self.insert(Observation::new(sensor.clone(), t, v))?;
                inserted += 1;
            }
        }
        Ok(inserted)
    }

    /// Bulk-ingests a regular series with the standard quality-control
    /// pipeline applied first: samples failing range/spike/flatline checks
    /// are archived flagged [`Suspect`](evop_data::QualityFlag::Suspect)
    /// rather than silently trusted — the paper's "significant
    /// pre-processing before they may be considered usable".
    ///
    /// Returns `(inserted, flagged)` counts.
    ///
    /// # Errors
    ///
    /// Returns [`SosError::UnknownProcedure`] when the sensor is not
    /// registered.
    pub fn ingest_series_with_qc(
        &mut self,
        sensor: &SensorId,
        series: &TimeSeries,
    ) -> Result<(usize, usize), SosError> {
        use evop_data::quality::run_standard_checks;
        use evop_data::QualityFlag;

        let kind = self
            .sensors
            .get(sensor)
            .ok_or_else(|| SosError::UnknownProcedure(sensor.clone()))?
            .kind();
        let report = run_standard_checks(kind, series);
        let flagged_indices: std::collections::BTreeSet<usize> =
            report.issues().iter().map(|i| i.index).collect();

        let mut inserted = 0;
        let mut flagged = 0;
        for (i, (t, v)) in series.iter().enumerate() {
            if v.is_nan() {
                continue; // missing samples are simply absent from the archive
            }
            let quality = if flagged_indices.contains(&i) {
                flagged += 1;
                QualityFlag::Suspect
            } else {
                QualityFlag::Good
            };
            self.insert(Observation::with_quality(sensor.clone(), t, v, quality))?;
            inserted += 1;
        }
        Ok((inserted, flagged))
    }

    /// GetObservation: the archived observations matching a temporal filter,
    /// in time order.
    ///
    /// # Errors
    ///
    /// Returns [`SosError::UnknownProcedure`] or
    /// [`SosError::BadTemporalFilter`].
    pub fn get_observation(&self, request: &GetObservation) -> Result<Vec<&Observation>, SosError> {
        if request.end <= request.begin {
            return Err(SosError::BadTemporalFilter);
        }
        let archive = self
            .archives
            .get(&request.procedure)
            .ok_or_else(|| SosError::UnknownProcedure(request.procedure.clone()))?;
        let lo = archive.partition_point(|o| o.time() < request.begin);
        let hi = archive.partition_point(|o| o.time() < request.end);
        let mut hits: Vec<&Observation> = archive[lo..hi].iter().collect();
        if let Some(cap) = request.max_results {
            if hits.len() > cap {
                hits = hits.split_off(hits.len() - cap);
            }
        }
        Ok(hits)
    }

    /// The most recent observation for a sensor — the "live" value the
    /// portal widgets poll or are pushed.
    pub fn latest(&self, sensor: &SensorId) -> Option<&Observation> {
        self.archives.get(sensor).and_then(|a| a.last())
    }

    /// Number of archived observations for a sensor.
    pub fn archive_len(&self, sensor: &SensorId) -> usize {
        self.archives.get(sensor).map_or(0, Vec::len)
    }

    /// GetCapabilities: service metadata and the offering list, as XML.
    pub fn get_capabilities(&self) -> Element {
        let offerings = self.sensors.values().map(|s| {
            Element::new("sos:ObservationOffering")
                .child(Element::new("gml:name").text(s.id().as_str()))
                .child(Element::new("sos:procedure").attr("xlink:href", s.id().as_str()))
                .child(Element::new("sos:observedProperty").text(s.kind().to_string()))
        });
        Element::new("sos:Capabilities")
            .attr("service", "SOS")
            .attr("version", "1.0.0")
            .child(Element::new("sos:Contents").children(offerings))
    }

    /// Encodes observations as an O&M-style XML collection.
    pub fn encode_observations(&self, observations: &[&Observation]) -> Element {
        let members = observations.iter().map(|o| {
            Element::new("om:Observation")
                .child(Element::new("om:procedure").attr("xlink:href", o.sensor().as_str()))
                .child(Element::new("om:samplingTime").text(o.time().to_string()))
                .child(Element::new("om:result").text(format!("{}", o.value())))
                .child(Element::new("om:quality").text(o.quality().to_string()))
        });
        Element::new("om:ObservationCollection").children(members)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evop_data::{Catchment, QualityFlag};

    fn stage_sensor() -> Sensor {
        Catchment::morland().default_sensors().remove(1)
    }

    fn t0() -> Timestamp {
        Timestamp::from_ymd(2012, 6, 1)
    }

    fn server_with_data() -> (SosServer, SensorId) {
        let mut sos = SosServer::new();
        let sensor = stage_sensor();
        let id = sensor.id().clone();
        sos.register_sensor(sensor);
        for i in 0..10 {
            sos.insert(Observation::new(id.clone(), t0().plus_hours(i), 0.4 + 0.01 * i as f64))
                .unwrap();
        }
        (sos, id)
    }

    #[test]
    fn temporal_filter_is_half_open() {
        let (sos, id) = server_with_data();
        let hits = sos
            .get_observation(&GetObservation {
                procedure: id,
                begin: t0().plus_hours(2),
                end: t0().plus_hours(5),
                max_results: None,
            })
            .unwrap();
        assert_eq!(hits.len(), 3);
        assert_eq!(hits[0].time(), t0().plus_hours(2));
        assert_eq!(hits[2].time(), t0().plus_hours(4));
    }

    #[test]
    fn max_results_keeps_most_recent() {
        let (sos, id) = server_with_data();
        let hits = sos
            .get_observation(&GetObservation {
                procedure: id,
                begin: t0(),
                end: t0().plus_days(1),
                max_results: Some(2),
            })
            .unwrap();
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[1].time(), t0().plus_hours(9));
    }

    #[test]
    fn unknown_procedure_and_bad_filter_error() {
        let (sos, id) = server_with_data();
        assert!(matches!(
            sos.get_observation(&GetObservation {
                procedure: SensorId::new("ghost"),
                begin: t0(),
                end: t0().plus_days(1),
                max_results: None,
            }),
            Err(SosError::UnknownProcedure(_))
        ));
        assert_eq!(
            sos.get_observation(&GetObservation {
                procedure: id,
                begin: t0(),
                end: t0(),
                max_results: None,
            })
            .unwrap_err(),
            SosError::BadTemporalFilter
        );
    }

    #[test]
    fn latest_returns_newest() {
        let (sos, id) = server_with_data();
        assert_eq!(sos.latest(&id).unwrap().time(), t0().plus_hours(9));
        assert!(sos.latest(&SensorId::new("ghost")).is_none());
    }

    #[test]
    fn out_of_order_inserts_are_sorted() {
        let mut sos = SosServer::new();
        let sensor = stage_sensor();
        let id = sensor.id().clone();
        sos.register_sensor(sensor);
        sos.insert(Observation::new(id.clone(), t0().plus_hours(5), 2.0)).unwrap();
        sos.insert(Observation::new(id.clone(), t0(), 1.0)).unwrap();
        let hits = sos
            .get_observation(&GetObservation {
                procedure: id,
                begin: t0().plus_days(-1),
                end: t0().plus_days(1),
                max_results: None,
            })
            .unwrap();
        assert!(hits[0].time() < hits[1].time());
    }

    #[test]
    fn ingest_series_skips_missing() {
        let mut sos = SosServer::new();
        let sensor = stage_sensor();
        let id = sensor.id().clone();
        sos.register_sensor(sensor);
        let series = TimeSeries::from_values(t0(), 900, vec![0.4, f64::NAN, 0.5]);
        let n = sos.ingest_series(&id, &series).unwrap();
        assert_eq!(n, 2);
        assert_eq!(sos.archive_len(&id), 2);
    }

    #[test]
    fn capabilities_lists_offerings() {
        let (sos, id) = server_with_data();
        let caps = sos.get_capabilities();
        let names: Vec<String> =
            caps.find_all("gml:name").iter().map(|e| e.text_content()).collect();
        assert!(names.contains(&id.as_str().to_owned()));
    }

    #[test]
    fn observation_encoding_carries_quality() {
        let mut sos = SosServer::new();
        let sensor = stage_sensor();
        let id = sensor.id().clone();
        sos.register_sensor(sensor);
        sos.insert(Observation::with_quality(id.clone(), t0(), 9.0, QualityFlag::Suspect)).unwrap();
        let hits = sos
            .get_observation(&GetObservation {
                procedure: id,
                begin: t0().plus_days(-1),
                end: t0().plus_days(1),
                max_results: None,
            })
            .unwrap();
        let xml = sos.encode_observations(&hits);
        assert_eq!(xml.find("om:quality").unwrap().text_content(), "suspect");
    }

    #[test]
    fn qc_ingestion_flags_suspect_samples() {
        let mut sos = SosServer::new();
        let sensor = stage_sensor();
        let id = sensor.id().clone();
        sos.register_sensor(sensor);
        // A plausible stage trace with one physically impossible spike.
        let series =
            TimeSeries::from_values(t0(), 900, vec![0.40, 0.42, 9.50, 0.43, f64::NAN, 0.44]);
        let (inserted, flagged) = sos.ingest_series_with_qc(&id, &series).unwrap();
        assert_eq!(inserted, 5, "NaN is skipped");
        assert!(flagged >= 1, "the 9.5 m spike must be flagged");
        let hits = sos
            .get_observation(&GetObservation {
                procedure: id,
                begin: t0(),
                end: t0().plus_days(1),
                max_results: None,
            })
            .unwrap();
        let suspect: Vec<f64> = hits
            .iter()
            .filter(|o| o.quality() == QualityFlag::Suspect)
            .map(|o| o.value())
            .collect();
        assert!(suspect.contains(&9.5));
        // Good samples keep their flag.
        assert!(hits.iter().any(|o| o.quality() == QualityFlag::Good));
    }

    #[test]
    fn ingest_unknown_sensor_errors() {
        let mut sos = SosServer::new();
        let series = TimeSeries::from_values(t0(), 900, vec![1.0]);
        assert!(sos.ingest_series(&SensorId::new("ghost"), &series).is_err());
    }
}
