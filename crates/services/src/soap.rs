//! The transaction-oriented, stateful service baseline.
//!
//! "[SOAP web services] require high communication and operation overheads
//! in order to maintain transaction state on the server … This has a knock
//! on effect on performance, scalability, and fault tolerance" (paper
//! §IV-B). This module implements exactly that style: a multi-step
//! scientific transaction whose intermediate state lives *on the endpoint*.
//! Kill the endpoint and every open session dies with it — the failure mode
//! experiment E2 measures against the stateless REST router.

use std::collections::BTreeMap;
use std::fmt;

use serde_json::Value;

/// A server-side session token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionToken(u64);

impl fmt::Display for SessionToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "soap-session-{}", self.0)
    }
}

/// A SOAP-style fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SoapFault {
    /// The referenced session does not exist on this endpoint — the error a
    /// client sees after its server was replaced.
    UnknownSession(SessionToken),
    /// The transaction was already committed.
    AlreadyCommitted(SessionToken),
}

impl fmt::Display for SoapFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SoapFault::UnknownSession(t) => write!(f, "unknown session: {t}"),
            SoapFault::AlreadyCommitted(t) => write!(f, "session already committed: {t}"),
        }
    }
}

impl std::error::Error for SoapFault {}

#[derive(Debug, Clone)]
struct Transaction {
    steps: Vec<Value>,
    committed: bool,
}

/// A stateful endpoint holding multi-step transactions server-side.
///
/// Note what is *missing* compared to [`Router`](crate::rest::Router):
/// there is no way to clone a live endpoint onto a replacement replica —
/// session state is process-local, exactly as in classic WS-* deployments.
///
/// # Examples
///
/// ```
/// use evop_services::soap::SoapEndpoint;
/// use serde_json::json;
///
/// let mut endpoint = SoapEndpoint::new();
/// let session = endpoint.begin();
/// endpoint.invoke(session, json!({"set": "model=topmodel"})).unwrap();
/// endpoint.invoke(session, json!({"set": "scenario=baseline"})).unwrap();
/// let result = endpoint.commit(session).unwrap();
/// assert_eq!(result["steps"], 2);
/// ```
#[derive(Debug, Default)]
pub struct SoapEndpoint {
    sessions: BTreeMap<SessionToken, Transaction>,
    next_token: u64,
    invocations: u64,
}

impl SoapEndpoint {
    /// Creates an endpoint with no sessions.
    pub fn new() -> SoapEndpoint {
        SoapEndpoint::default()
    }

    /// Opens a transaction, returning its token. The state now lives here
    /// and only here.
    pub fn begin(&mut self) -> SessionToken {
        let token = SessionToken(self.next_token);
        self.next_token += 1;
        self.sessions.insert(token, Transaction { steps: Vec::new(), committed: false });
        token
    }

    /// Applies one step to an open transaction, returning the number of
    /// accumulated steps.
    ///
    /// # Errors
    ///
    /// Returns [`SoapFault::UnknownSession`] if this endpoint has never seen
    /// (or has lost) the token, and [`SoapFault::AlreadyCommitted`] after
    /// commit.
    pub fn invoke(&mut self, token: SessionToken, step: Value) -> Result<usize, SoapFault> {
        self.invocations += 1;
        let tx = self.sessions.get_mut(&token).ok_or(SoapFault::UnknownSession(token))?;
        if tx.committed {
            return Err(SoapFault::AlreadyCommitted(token));
        }
        tx.steps.push(step);
        Ok(tx.steps.len())
    }

    /// Commits a transaction, returning a summary document.
    ///
    /// # Errors
    ///
    /// Returns [`SoapFault::UnknownSession`] or
    /// [`SoapFault::AlreadyCommitted`].
    pub fn commit(&mut self, token: SessionToken) -> Result<Value, SoapFault> {
        self.invocations += 1;
        let tx = self.sessions.get_mut(&token).ok_or(SoapFault::UnknownSession(token))?;
        if tx.committed {
            return Err(SoapFault::AlreadyCommitted(token));
        }
        tx.committed = true;
        Ok(serde_json::json!({
            "session": token.to_string(),
            "steps": tx.steps.len(),
            "inputs": tx.steps,
        }))
    }

    /// Number of open (uncommitted) sessions — server memory the paper
    /// calls "much less load" to avoid.
    pub fn open_sessions(&self) -> usize {
        self.sessions.values().filter(|t| !t.committed).count()
    }

    /// Total invocations served (for overhead accounting).
    pub fn invocations(&self) -> u64 {
        self.invocations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn transaction_accumulates_steps() {
        let mut ep = SoapEndpoint::new();
        let t = ep.begin();
        assert_eq!(ep.invoke(t, json!(1)).unwrap(), 1);
        assert_eq!(ep.invoke(t, json!(2)).unwrap(), 2);
        let result = ep.commit(t).unwrap();
        assert_eq!(result["steps"], 2);
        assert_eq!(result["inputs"][1], 2);
    }

    #[test]
    fn sessions_are_isolated() {
        let mut ep = SoapEndpoint::new();
        let a = ep.begin();
        let b = ep.begin();
        ep.invoke(a, json!("a1")).unwrap();
        assert_eq!(ep.invoke(b, json!("b1")).unwrap(), 1);
        assert_eq!(ep.open_sessions(), 2);
    }

    #[test]
    fn replacement_endpoint_loses_sessions() {
        let mut original = SoapEndpoint::new();
        let token = original.begin();
        original.invoke(token, json!("step")).unwrap();

        // The "replacement replica" after a failure: a fresh endpoint.
        let mut replacement = SoapEndpoint::new();
        assert_eq!(
            replacement.invoke(token, json!("step2")).unwrap_err(),
            SoapFault::UnknownSession(token)
        );
    }

    #[test]
    fn commit_is_terminal() {
        let mut ep = SoapEndpoint::new();
        let t = ep.begin();
        ep.commit(t).unwrap();
        assert_eq!(ep.invoke(t, json!(1)).unwrap_err(), SoapFault::AlreadyCommitted(t));
        assert_eq!(ep.commit(t).unwrap_err(), SoapFault::AlreadyCommitted(t));
        assert_eq!(ep.open_sessions(), 0);
    }

    #[test]
    fn invocations_are_counted() {
        let mut ep = SoapEndpoint::new();
        let t = ep.begin();
        ep.invoke(t, json!(1)).unwrap();
        let _ = ep.invoke(SessionToken(999), json!(1));
        ep.commit(t).unwrap();
        assert_eq!(ep.invocations(), 3);
    }
}
