//! WebSocket-style duplex session channels, and the polling baseline they
//! replace.
//!
//! "This communication is done in the background using HTML5 WebSockets
//! which facilitates event-based asynchronous duplex communication without
//! the need for periodic polling or streaming, which are costly and
//! inefficient modes of background browser traffic exchange" (paper §IV-D).
//! [`duplex_pair`] provides the channel the Resource Broker uses to push
//! session updates to browsers; [`simulate_push`] / [`simulate_polling`]
//! quantify the paper's efficiency claim (experiment E15).

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};
use serde_json::Value;

/// A message on a duplex channel: a topic plus a JSON payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Message {
    topic: String,
    payload: Value,
}

impl Message {
    /// Creates a message.
    pub fn new(topic: impl Into<String>, payload: Value) -> Message {
        Message { topic: topic.into(), payload }
    }

    /// The topic, e.g. `"session-update"`.
    pub fn topic(&self) -> &str {
        &self.topic
    }

    /// The JSON payload.
    pub fn payload(&self) -> &Value {
        &self.payload
    }

    /// Approximate size on the wire, in bytes (topic + serialised payload +
    /// small framing overhead).
    pub fn wire_size(&self) -> usize {
        self.topic.len() + self.payload.to_string().len() + 6
    }
}

/// Cumulative traffic counters for one direction of a channel.
#[derive(Debug, Default)]
struct Counters {
    messages: AtomicU64,
    bytes: AtomicU64,
}

/// A snapshot of one endpoint's traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrafficStats {
    /// Messages sent from this endpoint.
    pub sent_messages: u64,
    /// Bytes sent from this endpoint.
    pub sent_bytes: u64,
}

/// One end of a duplex channel.
///
/// Cheap to clone; clones share the underlying channel and counters (as
/// browser-side and server-side handles to one WebSocket would).
#[derive(Debug, Clone)]
pub struct Endpoint {
    tx: Sender<Message>,
    rx: Receiver<Message>,
    sent: Arc<Counters>,
    peer_open: Arc<AtomicU64>,
}

/// Error returned when sending on a closed channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelClosed;

impl fmt::Display for ChannelClosed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("duplex channel closed by peer")
    }
}

impl std::error::Error for ChannelClosed {}

impl Endpoint {
    /// Sends a message to the peer.
    ///
    /// # Errors
    ///
    /// Returns [`ChannelClosed`] if the peer hung up.
    pub fn send(&self, message: Message) -> Result<(), ChannelClosed> {
        if self.peer_open.load(Ordering::SeqCst) == 0 {
            return Err(ChannelClosed);
        }
        let size = message.wire_size() as u64;
        self.tx.send(message).map_err(|_| ChannelClosed)?;
        self.sent.messages.fetch_add(1, Ordering::SeqCst);
        self.sent.bytes.fetch_add(size, Ordering::SeqCst);
        Ok(())
    }

    /// Receives one pending message, if any.
    pub fn try_recv(&self) -> Option<Message> {
        self.rx.try_recv().ok()
    }

    /// Drains all pending messages.
    pub fn drain(&self) -> Vec<Message> {
        std::iter::from_fn(|| self.try_recv()).collect()
    }

    /// This endpoint's cumulative send counters.
    pub fn stats(&self) -> TrafficStats {
        TrafficStats {
            sent_messages: self.sent.messages.load(Ordering::SeqCst),
            sent_bytes: self.sent.bytes.load(Ordering::SeqCst),
        }
    }

    /// Closes the channel; subsequent peer sends fail.
    pub fn close(&self) {
        self.peer_open.store(0, Ordering::SeqCst);
    }

    /// `true` while the peer has not closed.
    pub fn is_open(&self) -> bool {
        self.peer_open.load(Ordering::SeqCst) == 1
    }
}

/// Creates a connected duplex pair `(server_end, client_end)`.
///
/// # Examples
///
/// ```
/// use evop_services::push::{duplex_pair, Message};
/// use serde_json::json;
///
/// let (server, client) = duplex_pair();
/// server.send(Message::new("session-update", json!({"instance": "i-00000001"}))).unwrap();
/// let received = client.try_recv().unwrap();
/// assert_eq!(received.topic(), "session-update");
/// ```
pub fn duplex_pair() -> (Endpoint, Endpoint) {
    let (tx_a, rx_b) = unbounded();
    let (tx_b, rx_a) = unbounded();
    let open = Arc::new(AtomicU64::new(1));
    let a = Endpoint {
        tx: tx_a,
        rx: rx_a,
        sent: Arc::new(Counters::default()),
        peer_open: Arc::clone(&open),
    };
    let b = Endpoint { tx: tx_b, rx: rx_b, sent: Arc::new(Counters::default()), peer_open: open };
    (a, b)
}

/// Outcome of a push-vs-poll traffic simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficReport {
    /// Total messages exchanged in both directions.
    pub messages: u64,
    /// Total bytes exchanged in both directions.
    pub bytes: u64,
    /// Mean delay between a state change and the client learning of it, in
    /// seconds.
    pub mean_staleness_secs: f64,
}

/// Approximate wire size of one poll request (HTTP GET with headers).
const POLL_REQUEST_BYTES: u64 = 220;
/// Approximate wire size of an empty poll response.
const POLL_EMPTY_RESPONSE_BYTES: u64 = 130;

/// Simulates periodic polling: the client asks every `interval_secs`
/// whether state changed; each poll costs a request and a response whether
/// or not there is news.
///
/// `updates` are `(time_secs, payload)` state changes within
/// `[0, horizon_secs)`.
///
/// # Panics
///
/// Panics if `interval_secs` is zero.
pub fn simulate_polling(
    updates: &[(u64, Value)],
    horizon_secs: u64,
    interval_secs: u64,
) -> TrafficReport {
    assert!(interval_secs > 0, "poll interval must be positive");
    let mut messages = 0u64;
    let mut bytes = 0u64;
    let mut staleness_total = 0.0;
    let mut delivered = 0usize;
    let mut next_update = 0usize;

    let mut t = interval_secs;
    while t <= horizon_secs {
        messages += 2; // request + response
        bytes += POLL_REQUEST_BYTES;
        // All updates that happened since the previous poll arrive now.
        let mut payload_bytes = 0u64;
        while next_update < updates.len() && updates[next_update].0 < t {
            let (changed_at, payload) = &updates[next_update];
            payload_bytes += payload.to_string().len() as u64;
            staleness_total += (t - changed_at) as f64;
            delivered += 1;
            next_update += 1;
        }
        bytes += POLL_EMPTY_RESPONSE_BYTES + payload_bytes;
        t += interval_secs;
    }

    TrafficReport {
        messages,
        bytes,
        mean_staleness_secs: if delivered == 0 { 0.0 } else { staleness_total / delivered as f64 },
    }
}

/// Simulates event-driven push over an established duplex channel: the
/// server sends exactly one message per state change, with negligible
/// delivery delay.
pub fn simulate_push(updates: &[(u64, Value)], _horizon_secs: u64) -> TrafficReport {
    let (server, client) = duplex_pair();
    for (_, payload) in updates {
        // The paired client half lives to the end of this function, so the
        // channel cannot be closed; a failed send would only skew the
        // traffic report, never justify a panic.
        if server.send(Message::new("session-update", payload.clone())).is_err() {
            break;
        }
    }
    let received = client.drain();
    let stats = server.stats();
    debug_assert_eq!(received.len(), updates.len());
    TrafficReport {
        messages: stats.sent_messages,
        bytes: stats.sent_bytes,
        mean_staleness_secs: 0.05, // one-way delivery latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn duplex_is_bidirectional() {
        let (server, client) = duplex_pair();
        server.send(Message::new("a", json!(1))).unwrap();
        client.send(Message::new("b", json!(2))).unwrap();
        assert_eq!(client.try_recv().unwrap().topic(), "a");
        assert_eq!(server.try_recv().unwrap().topic(), "b");
        assert!(client.try_recv().is_none());
    }

    #[test]
    fn counters_track_sends() {
        let (server, client) = duplex_pair();
        server.send(Message::new("t", json!({"x": 1}))).unwrap();
        server.send(Message::new("t", json!({"x": 2}))).unwrap();
        let stats = server.stats();
        assert_eq!(stats.sent_messages, 2);
        assert!(stats.sent_bytes > 0);
        assert_eq!(client.stats().sent_messages, 0);
    }

    #[test]
    fn close_stops_sends() {
        let (server, client) = duplex_pair();
        client.close();
        assert_eq!(server.send(Message::new("t", json!(1))), Err(ChannelClosed));
        assert!(!server.is_open());
    }

    #[test]
    fn drain_returns_in_order() {
        let (server, client) = duplex_pair();
        for i in 0..5 {
            server.send(Message::new("t", json!(i))).unwrap();
        }
        let all = client.drain();
        assert_eq!(all.len(), 5);
        assert_eq!(all[4].payload(), &json!(4));
    }

    #[test]
    fn push_beats_polling_on_sparse_updates() {
        // Three updates over an hour; a 10-second poll interval.
        let updates = vec![
            (100, json!({"state": "booting"})),
            (600, json!({"state": "ready"})),
            (3000, json!({"state": "migrated"})),
        ];
        let poll = simulate_polling(&updates, 3600, 10);
        let push = simulate_push(&updates, 3600);
        assert!(poll.messages > push.messages * 50);
        assert!(poll.bytes > push.bytes * 10);
    }

    #[test]
    fn slow_polling_saves_traffic_but_costs_staleness() {
        let updates = vec![(100, json!("a")), (1700, json!("b"))];
        let fast = simulate_polling(&updates, 3600, 5);
        let slow = simulate_polling(&updates, 3600, 300);
        assert!(slow.bytes < fast.bytes);
        assert!(slow.mean_staleness_secs > fast.mean_staleness_secs);
    }

    #[test]
    fn polling_with_no_updates_still_costs() {
        let report = simulate_polling(&[], 600, 10);
        assert_eq!(report.messages, 120);
        assert!(report.bytes > 0);
        assert_eq!(report.mean_staleness_secs, 0.0);
    }

    #[test]
    fn push_delivers_everything() {
        let updates: Vec<(u64, Value)> = (0..50).map(|i| (i * 10, json!(i))).collect();
        let report = simulate_push(&updates, 600);
        assert_eq!(report.messages, 50);
    }
}
