//! A stateless REST router.
//!
//! "RESTful web services remain completely stateless with all data required
//! to transition between different states being included in the service
//! request" (paper §IV-B). The router therefore owns no session state at
//! all: handlers receive the request plus extracted path parameters, and any
//! replica holding the same `Router` value can serve any request — the
//! property experiments E2 and E4 rely on.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use evop_obs::{MetricsRegistry, Tracer};

use crate::http::{Method, Request, Response};

/// Path parameters extracted from a matched route template.
///
/// For the template `/catchments/{id}/sensors/{sensor}`, a request for
/// `/catchments/morland/sensors/rain-1` yields `id = "morland"` and
/// `sensor = "rain-1"`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PathParams(BTreeMap<String, String>);

impl PathParams {
    /// A parameter by name.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.0.get(name).map(String::as_str)
    }

    /// All parameters.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.0.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }
}

/// A request handler. Handlers are `Fn` (not `FnMut`): they may not
/// accumulate state between calls, which keeps replicas interchangeable.
pub type Handler = Arc<dyn Fn(&Request, &PathParams) -> Response + Send + Sync>;

#[derive(Clone)]
struct Route {
    method: Method,
    template: String,
    segments: Vec<Segment>,
    handler: Handler,
}

impl fmt::Debug for Route {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Route")
            .field("method", &self.method)
            .field("template", &self.template)
            .finish_non_exhaustive()
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Segment {
    Literal(String),
    Param(String),
}

fn parse_template(template: &str) -> Vec<Segment> {
    template
        .trim_matches('/')
        .split('/')
        .filter(|s| !s.is_empty())
        .map(|s| {
            if let Some(name) = s.strip_prefix('{').and_then(|s| s.strip_suffix('}')) {
                Segment::Param(name.to_owned())
            } else {
                Segment::Literal(s.to_owned())
            }
        })
        .collect()
}

fn match_path(segments: &[Segment], path: &str) -> Option<PathParams> {
    let parts: Vec<&str> = path.trim_matches('/').split('/').filter(|s| !s.is_empty()).collect();
    if parts.len() != segments.len() {
        return None;
    }
    let mut params = BTreeMap::new();
    for (seg, part) in segments.iter().zip(&parts) {
        match seg {
            Segment::Literal(lit) if lit == part => {}
            Segment::Literal(_) => return None,
            Segment::Param(name) => {
                params.insert(name.clone(), (*part).to_owned());
            }
        }
    }
    Some(PathParams(params))
}

/// A stateless request router with `{param}` path templates.
///
/// Cloning a `Router` clones the routing table (handlers are shared), which
/// is exactly how replicas are made in the failover experiments: every clone
/// serves identically because there is no per-router state to diverge.
///
/// # Examples
///
/// ```
/// use evop_services::rest::Router;
/// use evop_services::{Method, Request, Response, StatusCode};
///
/// let mut router = Router::new();
/// router.route(Method::Get, "/catchments/{id}", |_req, params| {
///     Response::ok().text(format!("catchment {}", params.get("id").unwrap()))
/// });
///
/// let resp = router.dispatch(&Request::get("/catchments/morland"));
/// assert_eq!(resp.status(), StatusCode::OK);
/// assert_eq!(resp.body_text(), Some("catchment morland"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Router {
    routes: Vec<Route>,
    tracer: Option<Tracer>,
    metrics: Option<MetricsRegistry>,
}

impl Router {
    /// Creates an empty router.
    pub fn new() -> Router {
        Router::default()
    }

    /// Attaches a tracer: every dispatch opens an `http {method} {template}`
    /// span (joined to the request's propagated context, when present) and
    /// re-injects the span's context into the request seen by the handler.
    pub fn set_tracer(&mut self, tracer: Tracer) -> &mut Router {
        self.tracer = Some(tracer);
        self
    }

    /// Attaches a metrics registry: every dispatch increments
    /// `router_requests_total{method,route,status}`.
    pub fn set_metrics(&mut self, metrics: MetricsRegistry) -> &mut Router {
        self.metrics = Some(metrics);
        self
    }

    /// Registers a handler for `method` on the path `template`.
    ///
    /// Templates use `{name}` to capture one path segment. Routes are
    /// matched in registration order; the first match wins.
    pub fn route<F>(&mut self, method: Method, template: &str, handler: F) -> &mut Router
    where
        F: Fn(&Request, &PathParams) -> Response + Send + Sync + 'static,
    {
        self.routes.push(Route {
            method,
            template: template.to_owned(),
            segments: parse_template(template),
            handler: Arc::new(handler),
        });
        self
    }

    /// Dispatches a request to the first matching route.
    ///
    /// Returns `404 Not Found` when no template matches the path, and
    /// `405 Method Not Allowed` when a template matches but not the method.
    pub fn dispatch(&self, request: &Request) -> Response {
        let mut path_matched = false;
        for route in &self.routes {
            if let Some(params) = match_path(&route.segments, request.path()) {
                if route.method == request.method() {
                    return self.invoke(route, request, &params);
                }
                path_matched = true;
            }
        }
        let response = if path_matched {
            Response::new(crate::http::StatusCode::METHOD_NOT_ALLOWED)
                .text(format!("method {} not allowed", request.method()))
        } else {
            Response::not_found(format!("no route for {}", request.path()))
        };
        self.observe(request.method(), "<unrouted>", &response);
        response
    }

    /// Runs one matched route, wrapped in a span when a tracer is attached.
    ///
    /// The handler sees a request carrying the *router span's* context in
    /// its propagation headers, so anything the handler calls (WPS, broker)
    /// parents its spans under the HTTP span — one connected timeline.
    fn invoke(&self, route: &Route, request: &Request, params: &PathParams) -> Response {
        let span = self.tracer.as_ref().map(|tracer| {
            let name = format!("http {} {}", route.method, route.template);
            let span = match request.trace_context() {
                Some(ctx) => tracer.start_span(name, &ctx),
                None => tracer.start_trace(name),
            };
            span.attr("path", request.path());
            span
        });
        let response = match &span {
            Some(span) => (route.handler)(&request.clone().traced(&span.context()), params),
            None => (route.handler)(request, params),
        };
        self.observe(route.method, &route.template, &response);
        match span {
            Some(span) => {
                span.attr("status", response.status().to_string());
                let ctx = span.context();
                span.finish();
                response.traced(&ctx)
            }
            None => response,
        }
    }

    fn observe(&self, method: Method, route: &str, response: &Response) {
        if let Some(metrics) = &self.metrics {
            metrics.inc_counter(
                "router_requests_total",
                &[
                    ("method", &method.to_string()),
                    ("route", route),
                    ("status", &response.status().to_string()),
                ],
            );
        }
    }

    /// The number of registered routes.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// `true` if no routes are registered.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::StatusCode;

    fn sample_router() -> Router {
        let mut r = Router::new();
        r.route(Method::Get, "/datasets", |_, _| Response::ok().text("list"));
        r.route(Method::Get, "/datasets/{id}", |_, p| {
            Response::ok().text(format!("get {}", p.get("id").unwrap()))
        });
        r.route(Method::Post, "/datasets/{id}/runs/{run}", |_, p| {
            Response::ok().text(format!("run {}/{}", p.get("id").unwrap(), p.get("run").unwrap()))
        });
        r
    }

    #[test]
    fn literal_and_param_matching() {
        let r = sample_router();
        assert_eq!(r.dispatch(&Request::get("/datasets")).body_text(), Some("list"));
        assert_eq!(r.dispatch(&Request::get("/datasets/rain-1")).body_text(), Some("get rain-1"));
        assert_eq!(
            r.dispatch(&Request::post("/datasets/rain-1/runs/42")).body_text(),
            Some("run rain-1/42")
        );
    }

    #[test]
    fn trailing_slashes_are_tolerated() {
        let r = sample_router();
        assert_eq!(r.dispatch(&Request::get("/datasets/")).status(), StatusCode::OK);
        assert_eq!(r.dispatch(&Request::get("datasets")).status(), StatusCode::OK);
    }

    #[test]
    fn wrong_length_does_not_match() {
        let r = sample_router();
        assert_eq!(r.dispatch(&Request::get("/datasets/a/b")).status(), StatusCode::NOT_FOUND);
    }

    #[test]
    fn method_mismatch_is_405() {
        let r = sample_router();
        let resp = r.dispatch(&Request::delete("/datasets"));
        assert_eq!(resp.status(), StatusCode::METHOD_NOT_ALLOWED);
    }

    #[test]
    fn unknown_path_is_404() {
        let r = sample_router();
        assert_eq!(r.dispatch(&Request::get("/nope")).status(), StatusCode::NOT_FOUND);
    }

    #[test]
    fn first_registration_wins() {
        let mut r = Router::new();
        r.route(Method::Get, "/x/{a}", |_, _| Response::ok().text("param"));
        r.route(Method::Get, "/x/literal", |_, _| Response::ok().text("literal"));
        assert_eq!(r.dispatch(&Request::get("/x/literal")).body_text(), Some("param"));
    }

    #[test]
    fn clones_serve_identically() {
        let r = sample_router();
        let replica = r.clone();
        let req = Request::get("/datasets/rain-1");
        assert_eq!(r.dispatch(&req), replica.dispatch(&req));
    }

    #[test]
    fn dispatch_records_spans_and_metrics() {
        let mut r = sample_router();
        let tracer = Tracer::new();
        let metrics = MetricsRegistry::new();
        r.set_tracer(tracer.clone());
        r.set_metrics(metrics.clone());

        let resp = r.dispatch(&Request::get("/datasets/rain-1"));
        assert!(resp.trace_context().is_some(), "response echoes the trace context");
        let spans = tracer.finished();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "http GET /datasets/{id}");
        assert_eq!(spans[0].attrs["status"], "200");
        assert_eq!(
            metrics.counter(
                "router_requests_total",
                &[("method", "GET"), ("route", "/datasets/{id}"), ("status", "200")],
            ),
            1
        );

        r.dispatch(&Request::get("/nope"));
        assert_eq!(
            metrics.counter(
                "router_requests_total",
                &[("method", "GET"), ("route", "<unrouted>"), ("status", "404")],
            ),
            1
        );
    }

    #[test]
    fn dispatch_joins_propagated_context_and_reinjects_it() {
        use std::sync::Mutex;
        let tracer = Tracer::new();
        let seen = std::sync::Arc::new(Mutex::new(None));
        let seen_in_handler = seen.clone();
        let mut r = Router::new();
        r.set_tracer(tracer.clone());
        r.route(Method::Get, "/probe", move |req, _| {
            *seen_in_handler.lock().unwrap() = req.trace_context();
            Response::ok()
        });

        let caller = tracer.start_trace("client");
        r.dispatch(&Request::get("/probe").traced(&caller.context()));
        let caller_ctx = caller.context();
        caller.finish();

        let spans = tracer.finished();
        let http = spans.iter().find(|s| s.name.starts_with("http")).unwrap();
        assert_eq!(http.trace_id, caller_ctx.trace_id, "joined the caller's trace");
        assert_eq!(http.parent, Some(caller_ctx.span_id));
        let handler_ctx = seen.lock().unwrap().expect("handler saw a context");
        assert_eq!(handler_ctx.trace_id, http.trace_id);
        assert_eq!(handler_ctx.span_id, http.span_id, "handler parents under the http span");
    }

    #[test]
    fn handlers_see_query_and_body() {
        let mut r = Router::new();
        r.route(Method::Post, "/echo", |req, _| {
            let who = req.query_param("who").unwrap_or("world");
            Response::ok().text(format!("hello {who}: {}", req.body_bytes().len()))
        });
        let resp = r.dispatch(&Request::post("/echo").query("who", "evop").body(vec![1, 2, 3]));
        assert_eq!(resp.body_text(), Some("hello evop: 3"));
    }
}
