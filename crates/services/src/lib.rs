//! Web-service substrate for the EVOp reproduction.
//!
//! "All EVOp web services interfaces are of a uniform view, designed
//! according to the Representational State Transfer (REST) architectural
//! principles, except where current standards do not accommodate REST"
//! (paper §IV-B). This crate builds that service layer from scratch, at the
//! message level (see DESIGN.md's substitution table — the REST-vs-SOAP
//! claims are about statelessness, not TCP):
//!
//! * [`http`] — method/request/response envelope types;
//! * [`rest`] — a stateless router with path templates: any replica can
//!   serve any request, which is what makes the paper's load balancing and
//!   failure recovery "graceful";
//! * [`soap`] — the transaction-oriented, *stateful* baseline the paper
//!   contrasts REST against: session state lives on one server, and dies
//!   with it (experiment E2);
//! * [`xml`] — a small XML element tree with writer and parser for the OGC
//!   messages;
//! * [`wps`] — OGC Web Processing Service: GetCapabilities /
//!   DescribeProcess / Execute (sync and async) over pluggable processes;
//! * [`sos`] — OGC Sensor Observation Service: GetCapabilities /
//!   GetObservation over the sensor archive;
//! * [`push`] — WebSocket-style duplex session channels plus the polling
//!   client they replace (experiment E15 measures the saving).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod http;
pub mod push;
pub mod rest;
pub mod soap;
pub mod sos;
pub mod wps;
pub mod xml;

pub use http::{Method, Request, Response, StatusCode};
pub use rest::Router;
