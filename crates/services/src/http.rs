//! HTTP-style message envelopes.
//!
//! The substrate is in-process (see DESIGN.md), so these types model the
//! *message semantics* — method, path, query, headers, body — without a
//! socket. Everything above this module (REST router, WPS, SOS, the portal)
//! is written exactly as it would be against a real HTTP stack.

use std::collections::BTreeMap;
use std::fmt;

use bytes::Bytes;
use evop_obs::TraceContext;
use serde::de::DeserializeOwned;
use serde::Serialize;

/// An HTTP request method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Safe, idempotent retrieval.
    Get,
    /// Creation / RPC-style invocation.
    Post,
    /// Idempotent replacement.
    Put,
    /// Idempotent removal.
    Delete,
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Put => "PUT",
            Method::Delete => "DELETE",
        };
        f.write_str(s)
    }
}

/// An HTTP status code (newtype over the numeric code).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StatusCode(pub u16);

impl StatusCode {
    /// 200 OK.
    pub const OK: StatusCode = StatusCode(200);
    /// 201 Created.
    pub const CREATED: StatusCode = StatusCode(201);
    /// 202 Accepted (asynchronous WPS executions).
    pub const ACCEPTED: StatusCode = StatusCode(202);
    /// 400 Bad Request.
    pub const BAD_REQUEST: StatusCode = StatusCode(400);
    /// 403 Forbidden (access-policy refusals).
    pub const FORBIDDEN: StatusCode = StatusCode(403);
    /// 404 Not Found.
    pub const NOT_FOUND: StatusCode = StatusCode(404);
    /// 405 Method Not Allowed.
    pub const METHOD_NOT_ALLOWED: StatusCode = StatusCode(405);
    /// 409 Conflict.
    pub const CONFLICT: StatusCode = StatusCode(409);
    /// 500 Internal Server Error.
    pub const INTERNAL_ERROR: StatusCode = StatusCode(500);
    /// 503 Service Unavailable.
    pub const SERVICE_UNAVAILABLE: StatusCode = StatusCode(503);

    /// `true` for 2xx codes.
    pub fn is_success(self) -> bool {
        (200..300).contains(&self.0)
    }
}

impl fmt::Display for StatusCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// An HTTP-style request.
///
/// # Examples
///
/// ```
/// use evop_services::{Method, Request};
///
/// let req = Request::get("/catchments/morland/sensors")
///     .query("kind", "river-level")
///     .header("accept", "application/json");
/// assert_eq!(req.method(), Method::Get);
/// assert_eq!(req.query_param("kind"), Some("river-level"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    method: Method,
    path: String,
    query: BTreeMap<String, String>,
    headers: BTreeMap<String, String>,
    body: Bytes,
}

impl Request {
    /// Creates a request with the given method and path.
    pub fn new(method: Method, path: impl Into<String>) -> Request {
        Request {
            method,
            path: path.into(),
            query: BTreeMap::new(),
            headers: BTreeMap::new(),
            body: Bytes::new(),
        }
    }

    /// Convenience: a GET request.
    pub fn get(path: impl Into<String>) -> Request {
        Request::new(Method::Get, path)
    }

    /// Convenience: a POST request.
    pub fn post(path: impl Into<String>) -> Request {
        Request::new(Method::Post, path)
    }

    /// Convenience: a PUT request.
    pub fn put(path: impl Into<String>) -> Request {
        Request::new(Method::Put, path)
    }

    /// Convenience: a DELETE request.
    pub fn delete(path: impl Into<String>) -> Request {
        Request::new(Method::Delete, path)
    }

    /// Adds a query parameter.
    pub fn query(mut self, key: impl Into<String>, value: impl Into<String>) -> Request {
        self.query.insert(key.into(), value.into());
        self
    }

    /// Adds a header (keys are lower-cased).
    pub fn header(mut self, key: impl Into<String>, value: impl Into<String>) -> Request {
        self.headers.insert(key.into().to_lowercase(), value.into());
        self
    }

    /// Sets a raw body.
    pub fn body(mut self, body: impl Into<Bytes>) -> Request {
        self.body = body.into();
        self
    }

    /// Sets a JSON body and content type.
    ///
    /// A value that cannot be serialised (a programmer error for the types
    /// used in this workspace) produces an empty JSON object body rather
    /// than panicking mid-request; the receiving handler rejects it.
    pub fn json<T: Serialize>(self, value: &T) -> Request {
        let bytes = serde_json::to_vec(value).unwrap_or_else(|_| b"{}".to_vec());
        self.header("content-type", "application/json").body(bytes)
    }

    /// The request method.
    pub fn method(&self) -> Method {
        self.method
    }

    /// The request path, e.g. `"/datasets/rain-morland"`.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// A query parameter by key.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.get(key).map(String::as_str)
    }

    /// All query parameters.
    pub fn query_params(&self) -> &BTreeMap<String, String> {
        &self.query
    }

    /// A header by (case-insensitive) key.
    pub fn header_value(&self, key: &str) -> Option<&str> {
        self.headers.get(&key.to_lowercase()).map(String::as_str)
    }

    /// The raw body.
    pub fn body_bytes(&self) -> &Bytes {
        &self.body
    }

    /// Deserialises the body as JSON.
    ///
    /// # Errors
    ///
    /// Returns the `serde_json` error when the body is not valid JSON for
    /// `T`.
    pub fn json_body<T: DeserializeOwned>(&self) -> Result<T, serde_json::Error> {
        serde_json::from_slice(&self.body)
    }

    /// Attaches a trace context as `x-trace-id` / `x-span-id` headers, the
    /// same way a real HTTP client would propagate W3C trace context.
    pub fn traced(self, ctx: &TraceContext) -> Request {
        self.header(TraceContext::TRACE_HEADER, ctx.trace_id.to_string())
            .header(TraceContext::SPAN_HEADER, ctx.span_id.to_string())
    }

    /// The trace context carried in the propagation headers, when both are
    /// present and well-formed hex.
    pub fn trace_context(&self) -> Option<TraceContext> {
        TraceContext::from_header_values(
            self.header_value(TraceContext::TRACE_HEADER)?,
            self.header_value(TraceContext::SPAN_HEADER)?,
        )
    }

    /// The approximate size of the request on the wire, in bytes. Used by
    /// the push-vs-poll experiment to compare traffic volumes.
    pub fn wire_size(&self) -> usize {
        let mut size = self.method.to_string().len() + self.path.len() + 12;
        for (k, v) in &self.query {
            size += k.len() + v.len() + 2;
        }
        for (k, v) in &self.headers {
            size += k.len() + v.len() + 4;
        }
        size + self.body.len()
    }
}

/// An HTTP-style response.
///
/// # Examples
///
/// ```
/// use evop_services::{Response, StatusCode};
///
/// let resp = Response::ok().json(&serde_json::json!({"status": "ready"}));
/// assert_eq!(resp.status(), StatusCode::OK);
/// let value: serde_json::Value = resp.json_body().unwrap();
/// assert_eq!(value["status"], "ready");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    status: StatusCode,
    headers: BTreeMap<String, String>,
    body: Bytes,
}

impl Response {
    /// Creates a response with the given status and empty body.
    pub fn new(status: StatusCode) -> Response {
        Response { status, headers: BTreeMap::new(), body: Bytes::new() }
    }

    /// Convenience: 200 OK.
    pub fn ok() -> Response {
        Response::new(StatusCode::OK)
    }

    /// Convenience: 404 with a plain-text reason.
    pub fn not_found(reason: impl Into<String>) -> Response {
        Response::new(StatusCode::NOT_FOUND).text(reason.into())
    }

    /// Convenience: 400 with a plain-text reason.
    pub fn bad_request(reason: impl Into<String>) -> Response {
        Response::new(StatusCode::BAD_REQUEST).text(reason.into())
    }

    /// Convenience: 500 with a plain-text reason.
    pub fn internal_error(reason: impl Into<String>) -> Response {
        Response::new(StatusCode::INTERNAL_ERROR).text(reason.into())
    }

    /// Adds a header (keys are lower-cased).
    pub fn header(mut self, key: impl Into<String>, value: impl Into<String>) -> Response {
        self.headers.insert(key.into().to_lowercase(), value.into());
        self
    }

    /// Sets a plain-text body.
    pub fn text(self, body: impl Into<String>) -> Response {
        let body: String = body.into();
        self.header("content-type", "text/plain").body_from(body.into_bytes())
    }

    /// Sets a JSON body and content type.
    ///
    /// A value that cannot be serialised (a programmer error for the types
    /// used in this workspace) degrades to a 500 response rather than
    /// panicking mid-request — one bad handler must not take down the
    /// process serving every other session.
    pub fn json<T: Serialize>(self, value: &T) -> Response {
        match serde_json::to_vec(value) {
            Ok(bytes) => self.header("content-type", "application/json").body_from(bytes),
            Err(e) => Response::internal_error(format!("response serialisation failed: {e}")),
        }
    }

    /// Sets an XML body and content type.
    pub fn xml(self, body: impl Into<String>) -> Response {
        let body: String = body.into();
        self.header("content-type", "application/xml").body_from(body.into_bytes())
    }

    fn body_from(mut self, body: Vec<u8>) -> Response {
        self.body = Bytes::from(body);
        self
    }

    /// The status code.
    pub fn status(&self) -> StatusCode {
        self.status
    }

    /// A header by (case-insensitive) key.
    pub fn header_value(&self, key: &str) -> Option<&str> {
        self.headers.get(&key.to_lowercase()).map(String::as_str)
    }

    /// The raw body.
    pub fn body_bytes(&self) -> &Bytes {
        &self.body
    }

    /// The body as UTF-8 text, if valid.
    pub fn body_text(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }

    /// Deserialises the body as JSON.
    ///
    /// # Errors
    ///
    /// Returns the `serde_json` error when the body is not valid JSON for
    /// `T`.
    pub fn json_body<T: DeserializeOwned>(&self) -> Result<T, serde_json::Error> {
        serde_json::from_slice(&self.body)
    }

    /// Attaches a trace context as `x-trace-id` / `x-span-id` headers, so a
    /// caller can correlate the response with the server-side timeline.
    pub fn traced(self, ctx: &TraceContext) -> Response {
        self.header(TraceContext::TRACE_HEADER, ctx.trace_id.to_string())
            .header(TraceContext::SPAN_HEADER, ctx.span_id.to_string())
    }

    /// The trace context carried in the propagation headers, when both are
    /// present and well-formed hex.
    pub fn trace_context(&self) -> Option<TraceContext> {
        TraceContext::from_header_values(
            self.header_value(TraceContext::TRACE_HEADER)?,
            self.header_value(TraceContext::SPAN_HEADER)?,
        )
    }

    /// The approximate size of the response on the wire, in bytes.
    pub fn wire_size(&self) -> usize {
        let mut size = 16;
        for (k, v) in &self.headers {
            size += k.len() + v.len() + 4;
        }
        size + self.body.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_builder_round_trip() {
        let req = Request::post("/runs")
            .query("model", "topmodel")
            .header("X-Session", "abc")
            .json(&serde_json::json!({"scenario": "baseline"}));
        assert_eq!(req.method(), Method::Post);
        assert_eq!(req.path(), "/runs");
        assert_eq!(req.query_param("model"), Some("topmodel"));
        assert_eq!(req.header_value("x-session"), Some("abc"));
        let body: serde_json::Value = req.json_body().unwrap();
        assert_eq!(body["scenario"], "baseline");
    }

    #[test]
    fn response_helpers() {
        assert_eq!(Response::ok().status(), StatusCode::OK);
        assert!(StatusCode::ACCEPTED.is_success());
        assert!(!StatusCode::NOT_FOUND.is_success());
        let r = Response::not_found("no such dataset");
        assert_eq!(r.body_text(), Some("no such dataset"));
        assert_eq!(r.header_value("content-type"), Some("text/plain"));
    }

    #[test]
    fn json_body_errors_on_garbage() {
        let r = Response::ok().text("not json");
        assert!(r.json_body::<serde_json::Value>().is_err());
    }

    #[test]
    fn wire_size_grows_with_content() {
        let small = Request::get("/a");
        let big = Request::get("/a").body(vec![0u8; 1000]);
        assert!(big.wire_size() > small.wire_size() + 900);
    }

    #[test]
    fn trace_context_round_trips_through_headers() {
        use evop_obs::{SpanId, TraceId};
        let ctx = TraceContext { trace_id: TraceId(0xabc), span_id: SpanId(7) };
        let req = Request::get("/catchments").traced(&ctx);
        assert_eq!(req.trace_context(), Some(ctx));
        let resp = Response::ok().traced(&ctx);
        assert_eq!(resp.trace_context(), Some(ctx));
        assert_eq!(Request::get("/").trace_context(), None);
    }

    #[test]
    fn method_display() {
        assert_eq!(Method::Get.to_string(), "GET");
        assert_eq!(Method::Delete.to_string(), "DELETE");
    }
}
