//! A minimal XML element tree with writer and parser.
//!
//! The OGC standards EVOp adopted (WPS, SOS) are XML protocols: "Conforming
//! to these standards is of high priority to us for all model
//! implementations" (paper §IV-B). This module provides just enough XML to
//! speak them: an element tree, escaped serialisation, and a small
//! non-validating parser. Namespaces are carried verbatim in names (e.g.
//! `"wps:Execute"`), which is how the reproduction's endpoints compare them.

use std::fmt;

/// A node in the tree: a child element or a text run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// A nested element.
    Element(Element),
    /// Character data (unescaped form).
    Text(String),
}

/// An XML element: name, attributes and children.
///
/// # Examples
///
/// ```
/// use evop_services::xml::Element;
///
/// let doc = Element::new("wps:Execute")
///     .attr("service", "WPS")
///     .child(Element::new("ows:Identifier").text("topmodel"));
/// let s = doc.to_string();
/// assert!(s.contains("<wps:Execute service=\"WPS\">"));
///
/// let parsed = Element::parse(&s).unwrap();
/// assert_eq!(parsed.find("ows:Identifier").unwrap().text_content(), "topmodel");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Element {
    name: String,
    attrs: Vec<(String, String)>,
    children: Vec<Node>,
}

impl Element {
    /// Creates an element with the given (possibly prefixed) name.
    ///
    /// # Panics
    ///
    /// Panics if `name` is empty or contains whitespace.
    pub fn new(name: impl Into<String>) -> Element {
        let name = name.into();
        assert!(
            !name.is_empty() && !name.contains(char::is_whitespace),
            "invalid element name: {name:?}"
        );
        Element { name, attrs: Vec::new(), children: Vec::new() }
    }

    /// Adds an attribute (builder style).
    pub fn attr(mut self, name: impl Into<String>, value: impl Into<String>) -> Element {
        self.attrs.push((name.into(), value.into()));
        self
    }

    /// Adds a child element (builder style).
    pub fn child(mut self, child: Element) -> Element {
        self.children.push(Node::Element(child));
        self
    }

    /// Adds a text child (builder style).
    pub fn text(mut self, text: impl Into<String>) -> Element {
        self.children.push(Node::Text(text.into()));
        self
    }

    /// Adds several child elements (builder style).
    pub fn children<I: IntoIterator<Item = Element>>(mut self, children: I) -> Element {
        self.children.extend(children.into_iter().map(Node::Element));
        self
    }

    /// The element name, including any prefix.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The value of an attribute, if present.
    pub fn attribute(&self, name: &str) -> Option<&str> {
        self.attrs.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// All child nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.children
    }

    /// Child elements only.
    pub fn elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(|n| match n {
            Node::Element(e) => Some(e),
            Node::Text(_) => None,
        })
    }

    /// The first descendant element (depth-first) with the given name,
    /// including `self`.
    pub fn find(&self, name: &str) -> Option<&Element> {
        if self.name == name {
            return Some(self);
        }
        self.elements().find_map(|e| e.find(name))
    }

    /// All descendant elements (depth-first) with the given name.
    pub fn find_all<'a>(&'a self, name: &'a str) -> Vec<&'a Element> {
        let mut out = Vec::new();
        self.collect_named(name, &mut out);
        out
    }

    fn collect_named<'a>(&'a self, name: &str, out: &mut Vec<&'a Element>) {
        if self.name == name {
            out.push(self);
        }
        for e in self.elements() {
            e.collect_named(name, out);
        }
    }

    /// The concatenated text content of this element's direct text children.
    pub fn text_content(&self) -> String {
        self.children
            .iter()
            .filter_map(|n| match n {
                Node::Text(t) => Some(t.as_str()),
                Node::Element(_) => None,
            })
            .collect()
    }

    /// Parses a document, returning its root element.
    ///
    /// The parser is non-validating and supports elements, attributes, text,
    /// self-closing tags, comments and the XML declaration — enough for the
    /// OGC message bodies used in this workspace.
    ///
    /// # Errors
    ///
    /// Returns [`ParseXmlError`] describing the byte offset and problem.
    pub fn parse(input: &str) -> Result<Element, ParseXmlError> {
        Parser { input: input.as_bytes(), pos: 0 }.parse_document()
    }
}

impl fmt::Display for Element {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}", self.name)?;
        for (name, value) in &self.attrs {
            write!(f, " {}=\"{}\"", name, escape(value))?;
        }
        if self.children.is_empty() {
            return write!(f, "/>");
        }
        write!(f, ">")?;
        for node in &self.children {
            match node {
                Node::Element(e) => write!(f, "{e}")?,
                Node::Text(t) => write!(f, "{}", escape(t))?,
            }
        }
        write!(f, "</{}>", self.name)
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;").replace('"', "&quot;")
}

fn unescape(s: &str) -> String {
    s.replace("&quot;", "\"").replace("&gt;", ">").replace("&lt;", "<").replace("&amp;", "&")
}

/// An XML parsing error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseXmlError {
    /// Byte offset at which the problem was detected.
    pub offset: usize,
    /// Human-readable problem description.
    pub message: String,
}

impl fmt::Display for ParseXmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "xml parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseXmlError {}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> ParseXmlError {
        ParseXmlError { offset: self.pos, message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn skip_prolog(&mut self) -> Result<(), ParseXmlError> {
        loop {
            self.skip_ws();
            if self.starts_with("<?") {
                self.advance_past("?>")?;
            } else if self.starts_with("<!--") {
                self.advance_past("-->")?;
            } else {
                return Ok(());
            }
        }
    }

    fn advance_past(&mut self, terminator: &str) -> Result<(), ParseXmlError> {
        let rest = &self.input[self.pos..];
        let term = terminator.as_bytes();
        match rest.windows(term.len()).position(|w| w == term) {
            Some(i) => {
                self.pos += i + term.len();
                Ok(())
            }
            None => Err(self.error(format!("unterminated construct, expected {terminator:?}"))),
        }
    }

    fn parse_document(mut self) -> Result<Element, ParseXmlError> {
        self.skip_prolog()?;
        let root = self.parse_element()?;
        self.skip_ws();
        if self.pos != self.input.len() {
            return Err(self.error("trailing content after root element"));
        }
        Ok(root)
    }

    fn parse_name(&mut self) -> Result<String, ParseXmlError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || matches!(c, b':' | b'_' | b'-' | b'.') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.error("expected a name"));
        }
        Ok(String::from_utf8_lossy(&self.input[start..self.pos]).into_owned())
    }

    fn parse_element(&mut self) -> Result<Element, ParseXmlError> {
        if self.peek() != Some(b'<') {
            return Err(self.error("expected '<'"));
        }
        self.pos += 1;
        let name = self.parse_name()?;
        let mut element = Element::new(name.clone());

        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    self.pos += 1;
                    if self.peek() != Some(b'>') {
                        return Err(self.error("expected '>' after '/'"));
                    }
                    self.pos += 1;
                    return Ok(element);
                }
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => {
                    let attr_name = self.parse_name()?;
                    self.skip_ws();
                    if self.peek() != Some(b'=') {
                        return Err(self.error("expected '=' in attribute"));
                    }
                    self.pos += 1;
                    self.skip_ws();
                    let quote = match self.peek() {
                        Some(q @ (b'"' | b'\'')) => q,
                        _ => return Err(self.error("expected quoted attribute value")),
                    };
                    self.pos += 1;
                    let start = self.pos;
                    while self.peek().is_some() && self.peek() != Some(quote) {
                        self.pos += 1;
                    }
                    if self.peek() != Some(quote) {
                        return Err(self.error("unterminated attribute value"));
                    }
                    let raw = String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
                    self.pos += 1;
                    element.attrs.push((attr_name, unescape(&raw)));
                }
                None => return Err(self.error("unexpected end of input in tag")),
            }
        }

        // Children until the matching close tag.
        loop {
            if self.starts_with("<!--") {
                self.advance_past("-->")?;
                continue;
            }
            if self.starts_with("</") {
                self.pos += 2;
                let close = self.parse_name()?;
                if close != name {
                    return Err(self.error(format!("mismatched close tag: <{name}> vs </{close}>")));
                }
                self.skip_ws();
                if self.peek() != Some(b'>') {
                    return Err(self.error("expected '>' in close tag"));
                }
                self.pos += 1;
                return Ok(element);
            }
            match self.peek() {
                Some(b'<') => {
                    let child = self.parse_element()?;
                    element.children.push(Node::Element(child));
                }
                Some(_) => {
                    let start = self.pos;
                    while self.peek().is_some() && self.peek() != Some(b'<') {
                        self.pos += 1;
                    }
                    let raw = String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
                    let text = unescape(&raw);
                    if !text.trim().is_empty() {
                        element.children.push(Node::Text(text));
                    }
                }
                None => return Err(self.error(format!("unexpected end of input inside <{name}>"))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_serialise() {
        let doc = Element::new("a").attr("x", "1").child(Element::new("b").text("hi"));
        assert_eq!(doc.to_string(), "<a x=\"1\"><b>hi</b></a>");
    }

    #[test]
    fn self_closing_when_empty() {
        assert_eq!(Element::new("empty").to_string(), "<empty/>");
    }

    #[test]
    fn escaping_round_trips() {
        let doc = Element::new("t").attr("q", "a\"b").text("1 < 2 & 3 > 2");
        let parsed = Element::parse(&doc.to_string()).unwrap();
        assert_eq!(parsed.attribute("q"), Some("a\"b"));
        assert_eq!(parsed.text_content(), "1 < 2 & 3 > 2");
    }

    #[test]
    fn parse_with_prolog_and_comments() {
        let s = "<?xml version=\"1.0\"?><!-- hello --><root a='1'><!-- inner --><leaf/></root>";
        let root = Element::parse(s).unwrap();
        assert_eq!(root.name(), "root");
        assert_eq!(root.attribute("a"), Some("1"));
        assert_eq!(root.elements().count(), 1);
    }

    #[test]
    fn whitespace_only_text_is_dropped() {
        let root = Element::parse("<a>\n  <b>x</b>\n</a>").unwrap();
        assert_eq!(root.nodes().len(), 1);
    }

    #[test]
    fn find_descends_depth_first() {
        let doc = Element::new("root")
            .child(Element::new("mid").child(Element::new("ows:Identifier").text("one")))
            .child(Element::new("ows:Identifier").text("two"));
        assert_eq!(doc.find("ows:Identifier").unwrap().text_content(), "one");
        assert_eq!(doc.find_all("ows:Identifier").len(), 2);
        assert!(doc.find("missing").is_none());
    }

    #[test]
    fn mismatched_tags_error() {
        let err = Element::parse("<a><b></a></b>").unwrap_err();
        assert!(err.message.contains("mismatched"), "{err}");
    }

    #[test]
    fn trailing_garbage_errors() {
        assert!(Element::parse("<a/>junk").is_err());
    }

    #[test]
    fn unterminated_input_errors() {
        assert!(Element::parse("<a><b>").is_err());
        assert!(Element::parse("<a attr=>").is_err());
    }

    #[test]
    fn nested_round_trip() {
        let doc = Element::new("sos:GetObservation")
            .attr("service", "SOS")
            .attr("version", "1.0.0")
            .child(Element::new("sos:offering").text("morland-stage-outlet"))
            .child(
                Element::new("sos:eventTime").child(
                    Element::new("ogc:TM_During")
                        .child(Element::new("gml:begin").text("2012-01-01T00:00:00Z"))
                        .child(Element::new("gml:end").text("2012-01-08T00:00:00Z")),
                ),
            );
        let parsed = Element::parse(&doc.to_string()).unwrap();
        assert_eq!(parsed, doc);
    }
}
