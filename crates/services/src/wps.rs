//! OGC Web Processing Service (WPS).
//!
//! "The ones we adopt are Web Processing Service (WPS) and Sensor
//! Observation Service (SOS)" (paper §IV-B). This module implements the WPS
//! trio — GetCapabilities, DescribeProcess, Execute — over pluggable
//! processes, with input validation against declared parameter ranges,
//! both JSON (the portal's native encoding) and XML (standards-compliant)
//! execute paths, and asynchronous execution with status polling.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use evop_obs::{MetricsRegistry, TraceContext, Tracer};
use parking_lot::Mutex;
use serde_json::{Map, Value};

use crate::xml::Element;

/// A pluggable result cache consulted by [`WpsServer::execute`] after input
/// validation and fed on successful execution.
///
/// The server itself knows nothing about keys, tiers, TTLs or admission —
/// it hands the cache the validated inputs (canonical: defaults filled in,
/// ranges checked) and either serves the returned value or stores the fresh
/// one. `evop-cache` supplies the real two-tier implementation; tests can
/// plug in anything. Implementations count their own hit/miss metrics.
pub trait WpsCache: Send + Sync {
    /// A cached result for `process` run with `inputs`, if one is fresh.
    fn lookup(&self, process: &str, inputs: &Map<String, Value>) -> Option<Value>;

    /// Offers a freshly computed `result` for caching. Implementations are
    /// free to reject it (admission control).
    fn store(&self, process: &str, inputs: &Map<String, Value>, result: &Value);
}

/// The type and constraints of one process parameter.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamType {
    /// A float, optionally range-constrained.
    Float {
        /// Inclusive minimum, if constrained.
        min: Option<f64>,
        /// Inclusive maximum, if constrained.
        max: Option<f64>,
    },
    /// An integer, optionally range-constrained.
    Integer {
        /// Inclusive minimum, if constrained.
        min: Option<i64>,
        /// Inclusive maximum, if constrained.
        max: Option<i64>,
    },
    /// Free text.
    Text,
    /// One of a fixed set of literal values.
    Choice(Vec<String>),
    /// An arbitrary JSON document (WPS ComplexData).
    Json,
}

/// One declared input parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamSpec {
    /// Parameter identifier, e.g. `"m"`.
    pub name: String,
    /// Human-readable title shown by portal widgets.
    pub title: String,
    /// Type and constraints.
    pub param_type: ParamType,
    /// Used when the input is omitted; `None` makes the parameter required.
    pub default: Option<Value>,
}

impl ParamSpec {
    /// A required parameter.
    pub fn required(
        name: impl Into<String>,
        title: impl Into<String>,
        param_type: ParamType,
    ) -> ParamSpec {
        ParamSpec { name: name.into(), title: title.into(), param_type, default: None }
    }

    /// An optional parameter with a default.
    pub fn optional(
        name: impl Into<String>,
        title: impl Into<String>,
        param_type: ParamType,
        default: Value,
    ) -> ParamSpec {
        ParamSpec { name: name.into(), title: title.into(), param_type, default: Some(default) }
    }
}

/// Static description of a process, served by DescribeProcess.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessDescriptor {
    /// Process identifier, e.g. `"topmodel"`.
    pub identifier: String,
    /// Human-readable title.
    pub title: String,
    /// Prose description.
    pub abstract_text: String,
    /// Declared inputs.
    pub inputs: Vec<ParamSpec>,
    /// Declared outputs as `(identifier, description)` pairs.
    pub outputs: Vec<(String, String)>,
}

/// Errors from WPS operations.
#[derive(Debug, Clone, PartialEq)]
pub enum WpsError {
    /// No process with that identifier is registered.
    UnknownProcess(String),
    /// An input failed validation.
    InvalidParameter {
        /// The offending parameter.
        name: String,
        /// Why it was rejected.
        reason: String,
    },
    /// The process itself failed.
    ExecutionFailed(String),
    /// The status id does not correspond to an async execution.
    UnknownJob(u64),
    /// The XML request was malformed.
    MalformedRequest(String),
}

impl fmt::Display for WpsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WpsError::UnknownProcess(id) => write!(f, "unknown process: {id}"),
            WpsError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter {name}: {reason}")
            }
            WpsError::ExecutionFailed(reason) => write!(f, "execution failed: {reason}"),
            WpsError::UnknownJob(id) => write!(f, "unknown execution: {id}"),
            WpsError::MalformedRequest(reason) => write!(f, "malformed request: {reason}"),
        }
    }
}

impl std::error::Error for WpsError {}

/// A computational process exposed over WPS.
///
/// Implementations live in `evop-models` (TOPMODEL, FUSE, GLUE) and
/// anywhere else a tool wants to expose computation to the portal.
pub trait WpsProcess: Send + Sync {
    /// The static process description.
    fn descriptor(&self) -> ProcessDescriptor;

    /// Runs the process on validated inputs (defaults already filled in).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on failure, which the server wraps
    /// in [`WpsError::ExecutionFailed`].
    fn execute(&self, inputs: &Map<String, Value>) -> Result<Value, String>;
}

/// Status of an asynchronous execution.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecStatus {
    /// Queued, not yet processed.
    Accepted,
    /// Finished successfully with the given outputs.
    Succeeded(Value),
    /// Failed with the given error.
    Failed(String),
}

/// The WPS server: a registry of processes plus the protocol operations.
///
/// # Examples
///
/// ```
/// use evop_services::wps::{ParamSpec, ParamType, ProcessDescriptor, WpsProcess, WpsServer};
/// use serde_json::{json, Map, Value};
///
/// #[derive(Debug)]
/// struct Doubler;
/// impl WpsProcess for Doubler {
///     fn descriptor(&self) -> ProcessDescriptor {
///         ProcessDescriptor {
///             identifier: "double".into(),
///             title: "Doubler".into(),
///             abstract_text: "Doubles x".into(),
///             inputs: vec![ParamSpec::required("x", "Input", ParamType::Float { min: None, max: None })],
///             outputs: vec![("y".into(), "2x".into())],
///         }
///     }
///     fn execute(&self, inputs: &Map<String, Value>) -> Result<Value, String> {
///         let x = inputs["x"].as_f64().ok_or("x must be a number")?;
///         Ok(json!({ "y": 2.0 * x }))
///     }
/// }
///
/// let mut server = WpsServer::new();
/// server.register(Doubler);
/// let out = server.execute("double", json!({"x": 21.0})).unwrap();
/// assert_eq!(out["y"], 42.0);
/// ```
#[derive(Default)]
pub struct WpsServer {
    processes: BTreeMap<String, Box<dyn WpsProcess>>,
    /// Asynchronous executions. Interior-mutable so a shared (`Arc`) server
    /// can accept and progress async jobs — the portal API serves many
    /// simultaneous users over one server instance.
    jobs: Mutex<AsyncJobs>,
    tracer: Option<Tracer>,
    metrics: Option<MetricsRegistry>,
    cache: Option<Arc<dyn WpsCache>>,
}

#[derive(Default)]
struct AsyncJobs {
    next: u64,
    by_id: BTreeMap<u64, (String, Map<String, Value>, ExecStatus)>,
}

impl fmt::Debug for WpsServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WpsServer")
            .field("processes", &self.processes.keys().collect::<Vec<_>>())
            .field("jobs", &self.jobs.lock().by_id.len())
            .finish()
    }
}

impl WpsServer {
    /// Creates a server with no processes.
    pub fn new() -> WpsServer {
        WpsServer::default()
    }

    /// Registers a process under its descriptor's identifier. Re-registering
    /// replaces the previous process.
    pub fn register<P: WpsProcess + 'static>(&mut self, process: P) {
        let id = process.descriptor().identifier;
        self.processes.insert(id, Box::new(process));
    }

    /// Attaches a tracer: [`WpsServer::execute_traced`] opens a
    /// `wps.execute {id}` span under the caller's context.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = Some(tracer);
    }

    /// Attaches a metrics registry: executions increment
    /// `wps_executions_total{process,outcome}`.
    pub fn set_metrics(&mut self, metrics: MetricsRegistry) {
        self.metrics = Some(metrics);
    }

    /// Attaches a result cache: [`WpsServer::execute`] consults it after
    /// validation and feeds it on success. Callers of `execute` are
    /// untouched — a hit simply returns faster.
    pub fn set_cache(&mut self, cache: Arc<dyn WpsCache>) {
        self.cache = Some(cache);
    }

    /// Detaches the result cache, if any.
    pub fn clear_cache(&mut self) {
        self.cache = None;
    }

    /// Registered process identifiers, sorted.
    pub fn process_ids(&self) -> Vec<&str> {
        self.processes.keys().map(String::as_str).collect()
    }

    /// GetCapabilities: the service metadata and process offerings, as XML.
    pub fn get_capabilities(&self) -> Element {
        let offerings = self.processes.values().map(|p| {
            let d = p.descriptor();
            Element::new("wps:Process")
                .child(Element::new("ows:Identifier").text(&d.identifier))
                .child(Element::new("ows:Title").text(&d.title))
        });
        Element::new("wps:Capabilities")
            .attr("service", "WPS")
            .attr("version", "1.0.0")
            .child(
                Element::new("ows:ServiceIdentification")
                    .child(Element::new("ows:Title").text("EVOp Web Processing Service")),
            )
            .child(Element::new("wps:ProcessOfferings").children(offerings))
    }

    /// DescribeProcess: the full input/output description, as XML.
    ///
    /// # Errors
    ///
    /// Returns [`WpsError::UnknownProcess`] for an unregistered identifier.
    pub fn describe_process(&self, id: &str) -> Result<Element, WpsError> {
        let process =
            self.processes.get(id).ok_or_else(|| WpsError::UnknownProcess(id.to_owned()))?;
        let d = process.descriptor();
        let inputs = d.inputs.iter().map(|p| {
            let mut e = Element::new("wps:Input")
                .attr("minOccurs", if p.default.is_none() { "1" } else { "0" })
                .child(Element::new("ows:Identifier").text(&p.name))
                .child(Element::new("ows:Title").text(&p.title));
            if let ParamType::Float { min: Some(lo), max: Some(hi) } = &p.param_type {
                e = e.child(
                    Element::new("ows:AllowedValues").child(
                        Element::new("ows:Range")
                            .child(Element::new("ows:MinimumValue").text(lo.to_string()))
                            .child(Element::new("ows:MaximumValue").text(hi.to_string())),
                    ),
                );
            }
            e
        });
        let outputs = d.outputs.iter().map(|(name, desc)| {
            Element::new("wps:Output")
                .child(Element::new("ows:Identifier").text(name))
                .child(Element::new("ows:Abstract").text(desc))
        });
        Ok(Element::new("wps:ProcessDescription")
            .child(Element::new("ows:Identifier").text(&d.identifier))
            .child(Element::new("ows:Title").text(&d.title))
            .child(Element::new("ows:Abstract").text(&d.abstract_text))
            .child(Element::new("wps:DataInputs").children(inputs))
            .child(Element::new("wps:ProcessOutputs").children(outputs)))
    }

    /// Synchronous Execute with JSON inputs.
    ///
    /// Inputs are validated against the descriptor: unknown parameters are
    /// rejected, missing optionals take their defaults, and range
    /// constraints are enforced.
    ///
    /// # Errors
    ///
    /// Returns [`WpsError::UnknownProcess`], [`WpsError::InvalidParameter`]
    /// or [`WpsError::ExecutionFailed`].
    pub fn execute(&self, id: &str, inputs: Value) -> Result<Value, WpsError> {
        self.execute_traced(id, inputs, None)
    }

    /// [`WpsServer::execute`] joined to a caller's trace context.
    ///
    /// When a tracer is attached, the execution is recorded as a
    /// `wps.execute {id}` span — a child of `ctx` when given, or a fresh
    /// trace otherwise — so the model run shows up on the request timeline.
    ///
    /// # Errors
    ///
    /// As for [`WpsServer::execute`].
    pub fn execute_traced(
        &self,
        id: &str,
        inputs: Value,
        ctx: Option<&TraceContext>,
    ) -> Result<Value, WpsError> {
        let span = self.tracer.as_ref().map(|tracer| {
            let name = format!("wps.execute {id}");
            match ctx {
                Some(ctx) => tracer.start_span(name, ctx),
                None => tracer.start_trace(name),
            }
        });
        let result = self.execute_inner(id, inputs);
        let outcome = match &result {
            Ok(_) => "ok",
            Err(_) => "error",
        };
        if let Some(span) = span {
            span.attr("process", id);
            span.attr("outcome", outcome);
            if let Err(e) = &result {
                span.event(format!("execution failed: {e}"));
            }
            span.finish();
        }
        if let Some(metrics) = &self.metrics {
            metrics.inc_counter("wps_executions_total", &[("process", id), ("outcome", outcome)]);
        }
        result
    }

    fn execute_inner(&self, id: &str, inputs: Value) -> Result<Value, WpsError> {
        let process =
            self.processes.get(id).ok_or_else(|| WpsError::UnknownProcess(id.to_owned()))?;
        let validated = validate_inputs(&process.descriptor(), inputs)?;
        // Cache lookup happens on *validated* inputs so `{}` and an
        // explicit spelling of every default hit the same entry.
        if let Some(cache) = &self.cache {
            if let Some(value) = cache.lookup(id, &validated) {
                return Ok(value);
            }
        }
        let result = process.execute(&validated).map_err(WpsError::ExecutionFailed)?;
        if let Some(cache) = &self.cache {
            cache.store(id, &validated, &result);
        }
        Ok(result)
    }

    /// Asynchronous Execute: validates and enqueues, returning a status id
    /// ("statusLocation" in WPS terms). Call [`WpsServer::process_pending`]
    /// to run queued executions, then poll [`WpsServer::status`].
    ///
    /// # Errors
    ///
    /// Returns validation errors immediately, like [`WpsServer::execute`].
    pub fn execute_async(&self, id: &str, inputs: Value) -> Result<u64, WpsError> {
        let process =
            self.processes.get(id).ok_or_else(|| WpsError::UnknownProcess(id.to_owned()))?;
        let validated = validate_inputs(&process.descriptor(), inputs)?;
        let mut jobs = self.jobs.lock();
        let job = jobs.next;
        jobs.next += 1;
        jobs.by_id.insert(job, (id.to_owned(), validated, ExecStatus::Accepted));
        Ok(job)
    }

    /// Runs all queued asynchronous executions, returning how many ran.
    ///
    /// The job lock is not held across process execution, so status polls
    /// from other callers never block on a long model run.
    pub fn process_pending(&self) -> usize {
        let pending: Vec<(u64, String, Map<String, Value>)> = {
            let jobs = self.jobs.lock();
            jobs.by_id
                .iter()
                .filter(|(_, (_, _, s))| matches!(s, ExecStatus::Accepted))
                .map(|(&id, (p, i, _))| (id, p.clone(), i.clone()))
                .collect()
        };
        for (job, process_id, inputs) in &pending {
            let outcome = match self.processes.get(process_id) {
                Some(p) => match p.execute(inputs) {
                    Ok(v) => ExecStatus::Succeeded(v),
                    Err(e) => ExecStatus::Failed(e),
                },
                None => ExecStatus::Failed(format!("process vanished: {process_id}")),
            };
            if let Some(entry) = self.jobs.lock().by_id.get_mut(job) {
                entry.2 = outcome;
            }
        }
        pending.len()
    }

    /// The status of an asynchronous execution.
    ///
    /// # Errors
    ///
    /// Returns [`WpsError::UnknownJob`] for an unknown id.
    pub fn status(&self, job: u64) -> Result<ExecStatus, WpsError> {
        self.jobs.lock().by_id.get(&job).map(|(_, _, s)| s.clone()).ok_or(WpsError::UnknownJob(job))
    }

    /// Standards-compliant Execute over an XML request document.
    ///
    /// # Errors
    ///
    /// Returns [`WpsError::MalformedRequest`] for bad XML structure, plus
    /// the same errors as [`WpsServer::execute`].
    pub fn execute_xml(&self, request: &Element) -> Result<Element, WpsError> {
        if request.name() != "wps:Execute" {
            return Err(WpsError::MalformedRequest(format!(
                "expected wps:Execute, got {}",
                request.name()
            )));
        }
        let id = request
            .elements()
            .find(|e| e.name() == "ows:Identifier")
            .map(|e| e.text_content())
            .ok_or_else(|| WpsError::MalformedRequest("missing ows:Identifier".to_owned()))?;

        let mut inputs = Map::new();
        if let Some(data_inputs) = request.find("wps:DataInputs") {
            for input in data_inputs.find_all("wps:Input") {
                let name =
                    input.find("ows:Identifier").map(Element::text_content).ok_or_else(|| {
                        WpsError::MalformedRequest("input missing identifier".to_owned())
                    })?;
                let value = if let Some(lit) = input.find("wps:LiteralData") {
                    let text = lit.text_content();
                    match text.parse::<f64>() {
                        Ok(n) => Value::from(n),
                        Err(_) => Value::from(text),
                    }
                } else if let Some(complex) = input.find("wps:ComplexData") {
                    serde_json::from_str(&complex.text_content())
                        .map_err(|e| WpsError::MalformedRequest(format!("bad ComplexData: {e}")))?
                } else {
                    return Err(WpsError::MalformedRequest(format!("input {name} has no data")));
                };
                inputs.insert(name, value);
            }
        }

        let outputs = self.execute(&id, Value::Object(inputs))?;
        Ok(Element::new("wps:ExecuteResponse")
            .attr("service", "WPS")
            .attr("version", "1.0.0")
            .child(
                Element::new("wps:Status").child(Element::new("wps:ProcessSucceeded").text("ok")),
            )
            .child(
                Element::new("wps:ProcessOutputs").child(
                    Element::new("wps:Output")
                        .child(Element::new("ows:Identifier").text("result"))
                        .child(
                            Element::new("wps:Data").child(
                                Element::new("wps:ComplexData")
                                    .attr("mimeType", "application/json")
                                    .text(outputs.to_string()),
                            ),
                        ),
                ),
            ))
    }
}

/// Validates JSON inputs against a descriptor, filling defaults.
fn validate_inputs(
    descriptor: &ProcessDescriptor,
    inputs: Value,
) -> Result<Map<String, Value>, WpsError> {
    let supplied = match inputs {
        Value::Object(map) => map,
        Value::Null => Map::new(),
        other => {
            return Err(WpsError::InvalidParameter {
                name: "<inputs>".to_owned(),
                reason: format!("expected an object, got {other}"),
            })
        }
    };

    for key in supplied.keys() {
        if !descriptor.inputs.iter().any(|p| &p.name == key) {
            return Err(WpsError::InvalidParameter {
                name: key.clone(),
                reason: "not a declared input".to_owned(),
            });
        }
    }

    let mut validated = Map::new();
    for spec in &descriptor.inputs {
        let value = match supplied.get(&spec.name) {
            Some(v) => v.clone(),
            None => match &spec.default {
                Some(d) => d.clone(),
                None => {
                    return Err(WpsError::InvalidParameter {
                        name: spec.name.clone(),
                        reason: "required input missing".to_owned(),
                    })
                }
            },
        };
        // Null (supplied or defaulted) means "unset": the parameter is
        // simply absent from the validated inputs and the process applies
        // its own default.
        if value.is_null() {
            continue;
        }
        check_type(spec, &value)?;
        validated.insert(spec.name.clone(), value);
    }
    Ok(validated)
}

fn check_type(spec: &ParamSpec, value: &Value) -> Result<(), WpsError> {
    let fail = |reason: String| Err(WpsError::InvalidParameter { name: spec.name.clone(), reason });
    match &spec.param_type {
        ParamType::Float { min, max } => match value.as_f64() {
            Some(x) => {
                if let Some(lo) = min {
                    if x < *lo {
                        return fail(format!("{x} below minimum {lo}"));
                    }
                }
                if let Some(hi) = max {
                    if x > *hi {
                        return fail(format!("{x} above maximum {hi}"));
                    }
                }
                Ok(())
            }
            None => fail(format!("expected a number, got {value}")),
        },
        ParamType::Integer { min, max } => match value.as_i64() {
            Some(x) => {
                if let Some(lo) = min {
                    if x < *lo {
                        return fail(format!("{x} below minimum {lo}"));
                    }
                }
                if let Some(hi) = max {
                    if x > *hi {
                        return fail(format!("{x} above maximum {hi}"));
                    }
                }
                Ok(())
            }
            None => fail(format!("expected an integer, got {value}")),
        },
        ParamType::Text => {
            if value.is_string() {
                Ok(())
            } else {
                fail(format!("expected text, got {value}"))
            }
        }
        ParamType::Choice(options) => match value.as_str() {
            Some(s) if options.iter().any(|o| o == s) => Ok(()),
            Some(s) => fail(format!("{s:?} is not one of {options:?}")),
            None => fail(format!("expected one of {options:?}, got {value}")),
        },
        ParamType::Json => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[derive(Debug)]
    struct Power;

    impl WpsProcess for Power {
        fn descriptor(&self) -> ProcessDescriptor {
            ProcessDescriptor {
                identifier: "power".into(),
                title: "Power".into(),
                abstract_text: "x^n".into(),
                inputs: vec![
                    ParamSpec::required(
                        "x",
                        "Base",
                        ParamType::Float { min: Some(0.0), max: Some(100.0) },
                    ),
                    ParamSpec::optional(
                        "n",
                        "Exponent",
                        ParamType::Integer { min: Some(0), max: Some(8) },
                        json!(2),
                    ),
                    ParamSpec::optional(
                        "mode",
                        "Mode",
                        ParamType::Choice(vec!["exact".into(), "approx".into()]),
                        json!("exact"),
                    ),
                ],
                outputs: vec![("y".into(), "result".into())],
            }
        }

        fn execute(&self, inputs: &Map<String, Value>) -> Result<Value, String> {
            let x = inputs["x"].as_f64().expect("validated");
            let n = inputs["n"].as_i64().expect("validated");
            Ok(json!({ "y": x.powi(n as i32) }))
        }
    }

    fn server() -> WpsServer {
        let mut s = WpsServer::new();
        s.register(Power);
        s
    }

    #[test]
    fn execute_with_defaults() {
        let out = server().execute("power", json!({"x": 3.0})).unwrap();
        assert_eq!(out["y"], 9.0);
    }

    #[test]
    fn traced_execute_parents_under_caller_and_counts() {
        let mut s = server();
        let tracer = Tracer::new();
        let metrics = MetricsRegistry::new();
        s.set_tracer(tracer.clone());
        s.set_metrics(metrics.clone());

        let root = tracer.start_trace("request");
        s.execute_traced("power", json!({"x": 3.0}), Some(&root.context())).unwrap();
        s.execute_traced("missing", json!({}), Some(&root.context())).unwrap_err();
        let root_ctx = root.context();
        root.finish();

        let spans = tracer.finished();
        let ok = spans.iter().find(|sp| sp.name == "wps.execute power").unwrap();
        assert_eq!(ok.trace_id, root_ctx.trace_id);
        assert_eq!(ok.parent, Some(root_ctx.span_id));
        assert_eq!(ok.attrs["outcome"], "ok");
        let failed = spans.iter().find(|sp| sp.name == "wps.execute missing").unwrap();
        assert_eq!(failed.attrs["outcome"], "error");
        assert_eq!(
            metrics.counter("wps_executions_total", &[("process", "power"), ("outcome", "ok")]),
            1
        );
        assert_eq!(
            metrics
                .counter("wps_executions_total", &[("process", "missing"), ("outcome", "error")]),
            1
        );
    }

    #[test]
    fn execute_with_explicit_inputs() {
        let out = server().execute("power", json!({"x": 2.0, "n": 5})).unwrap();
        assert_eq!(out["y"], 32.0);
    }

    #[test]
    fn missing_required_input_rejected() {
        let err = server().execute("power", json!({})).unwrap_err();
        assert!(matches!(err, WpsError::InvalidParameter { ref name, .. } if name == "x"));
    }

    #[test]
    fn out_of_range_rejected() {
        let err = server().execute("power", json!({"x": 1000.0})).unwrap_err();
        assert!(matches!(err, WpsError::InvalidParameter { ref name, .. } if name == "x"));
        let err = server().execute("power", json!({"x": 1.0, "n": 99})).unwrap_err();
        assert!(matches!(err, WpsError::InvalidParameter { ref name, .. } if name == "n"));
    }

    #[test]
    fn unknown_input_rejected() {
        let err = server().execute("power", json!({"x": 1.0, "bogus": 1})).unwrap_err();
        assert!(matches!(err, WpsError::InvalidParameter { ref name, .. } if name == "bogus"));
    }

    #[test]
    fn choice_validation() {
        assert!(server().execute("power", json!({"x": 1.0, "mode": "approx"})).is_ok());
        let err = server().execute("power", json!({"x": 1.0, "mode": "magic"})).unwrap_err();
        assert!(matches!(err, WpsError::InvalidParameter { ref name, .. } if name == "mode"));
    }

    #[test]
    fn unknown_process_rejected() {
        let err = server().execute("nope", json!({})).unwrap_err();
        assert_eq!(err, WpsError::UnknownProcess("nope".to_owned()));
    }

    #[test]
    fn capabilities_lists_processes() {
        let caps = server().get_capabilities();
        assert_eq!(caps.attribute("service"), Some("WPS"));
        let ids: Vec<String> =
            caps.find_all("ows:Identifier").iter().map(|e| e.text_content()).collect();
        assert!(ids.contains(&"power".to_owned()));
    }

    #[test]
    fn describe_process_exposes_ranges() {
        let desc = server().describe_process("power").unwrap();
        assert_eq!(desc.find("ows:MinimumValue").unwrap().text_content(), "0");
        assert_eq!(desc.find("ows:MaximumValue").unwrap().text_content(), "100");
        assert!(server().describe_process("nope").is_err());
    }

    #[test]
    fn async_execution_lifecycle() {
        let s = server();
        let job = s.execute_async("power", json!({"x": 4.0})).unwrap();
        assert_eq!(s.status(job).unwrap(), ExecStatus::Accepted);
        assert_eq!(s.process_pending(), 1);
        match s.status(job).unwrap() {
            ExecStatus::Succeeded(v) => assert_eq!(v["y"], 16.0),
            other => panic!("unexpected status: {other:?}"),
        }
        assert!(matches!(s.status(999), Err(WpsError::UnknownJob(999))));
    }

    #[test]
    fn async_validation_is_eager() {
        let s = server();
        assert!(s.execute_async("power", json!({"x": -1.0})).is_err());
    }

    #[test]
    fn async_execution_through_a_shared_server() {
        use std::sync::Arc;
        let s = Arc::new(server());
        // Many clients enqueue through clones of the Arc…
        let jobs: Vec<u64> =
            (0..8).map(|i| s.execute_async("power", json!({"x": f64::from(i)})).unwrap()).collect();
        // …a worker drains the queue…
        assert_eq!(s.process_pending(), 8);
        assert_eq!(s.process_pending(), 0, "queue is empty afterwards");
        // …and every client sees its own result.
        for (i, job) in jobs.iter().enumerate() {
            match s.status(*job).unwrap() {
                ExecStatus::Succeeded(v) => assert_eq!(v["y"], (i * i) as f64),
                other => panic!("unexpected status: {other:?}"),
            }
        }
    }

    #[test]
    fn xml_execute_round_trip() {
        let request = Element::new("wps:Execute")
            .attr("service", "WPS")
            .child(Element::new("ows:Identifier").text("power"))
            .child(Element::new("wps:DataInputs").child(
                Element::new("wps:Input").child(Element::new("ows:Identifier").text("x")).child(
                    Element::new("wps:Data").child(Element::new("wps:LiteralData").text("3")),
                ),
            ));
        let response = server().execute_xml(&request).unwrap();
        assert!(response.find("wps:ProcessSucceeded").is_some());
        let payload = response.find("wps:ComplexData").unwrap().text_content();
        let v: Value = serde_json::from_str(&payload).unwrap();
        assert_eq!(v["y"], 9.0);
    }

    #[test]
    fn xml_execute_rejects_malformed() {
        let bad = Element::new("wps:Execute"); // no identifier
        assert!(matches!(server().execute_xml(&bad), Err(WpsError::MalformedRequest(_))));
        let wrong_root = Element::new("something");
        assert!(server().execute_xml(&wrong_root).is_err());
    }
}
