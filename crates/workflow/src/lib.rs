//! Workflow composition: directed acyclic graphs of execution units.
//!
//! "A workflow is a conglomerate scientific process composed of a directed
//! acyclic graph of basic execution units (e.g. executables, scripts, web
//! services, etc.). Workflows allow 'advanced' users … to create complex
//! experiments that can be easily tweaked and replayed, offering
//! reproducibility and traceability" (paper §VIII). This crate implements
//! that future-work feature: typed-by-JSON task nodes, cycle-checked
//! composition, deterministic topological execution, a provenance trace per
//! run, and replay verification (experiment E13).
//!
//! # Examples
//!
//! ```
//! use evop_workflow::Workflow;
//! use serde_json::{json, Value};
//!
//! let workflow = Workflow::builder("peak-finder")
//!     .task("load", [] as [&str; 0], |_inputs| Ok(json!([1.0, 4.0, 2.0])))
//!     .task("peak", ["load"], |inputs| {
//!         let series = inputs[0].as_array().ok_or("expected array")?;
//!         let max = series
//!             .iter()
//!             .filter_map(Value::as_f64)
//!             .fold(f64::NEG_INFINITY, f64::max);
//!         Ok(json!(max))
//!     })
//!     .build()?;
//!
//! let run = workflow.execute()?;
//! assert_eq!(run.output("peak").unwrap(), &json!(4.0));
//! assert!(workflow.replay(&run)?.matches());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

use serde_json::Value;

/// A task body: consumes the outputs of its input nodes (in declaration
/// order), produces one JSON value.
pub type TaskFn = Arc<dyn Fn(&[Value]) -> Result<Value, String> + Send + Sync>;

/// Errors from building or running a workflow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkflowError {
    /// Two nodes share a name.
    DuplicateNode(String),
    /// A node references an input that is not a node.
    UnknownInput {
        /// The referencing node.
        node: String,
        /// The missing input name.
        input: String,
    },
    /// The graph contains a cycle through the named node.
    Cycle(String),
    /// A node's task failed at execution time.
    NodeFailed {
        /// The failing node.
        node: String,
        /// The task's error message.
        message: String,
    },
    /// A replayed record does not belong to this workflow.
    RecordMismatch(String),
}

impl fmt::Display for WorkflowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkflowError::DuplicateNode(n) => write!(f, "duplicate node name: {n}"),
            WorkflowError::UnknownInput { node, input } => {
                write!(f, "node {node} references unknown input {input}")
            }
            WorkflowError::Cycle(n) => write!(f, "workflow graph has a cycle through {n}"),
            WorkflowError::NodeFailed { node, message } => {
                write!(f, "node {node} failed: {message}")
            }
            WorkflowError::RecordMismatch(reason) => write!(f, "record mismatch: {reason}"),
        }
    }
}

impl std::error::Error for WorkflowError {}

struct Node {
    name: String,
    inputs: Vec<String>,
    task: TaskFn,
}

impl fmt::Debug for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Node")
            .field("name", &self.name)
            .field("inputs", &self.inputs)
            .finish_non_exhaustive()
    }
}

/// One node's provenance entry in a run record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// The executed node.
    pub node: String,
    /// Names of the nodes whose outputs it consumed.
    pub consumed: Vec<String>,
    /// Content hash of the node's output.
    pub output_hash: u64,
    /// Position in the execution order (0-based).
    pub order: usize,
}

/// The record of one workflow execution: every output plus a provenance
/// trace — the paper's "reproducibility and traceability".
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    workflow: String,
    outputs: BTreeMap<String, Value>,
    trace: Vec<TraceEntry>,
}

impl RunRecord {
    /// The workflow name this record came from.
    pub fn workflow(&self) -> &str {
        &self.workflow
    }

    /// A node's output.
    pub fn output(&self, node: &str) -> Option<&Value> {
        self.outputs.get(node)
    }

    /// The outputs of the workflow's sink nodes (nodes nothing consumes).
    pub fn outputs(&self) -> &BTreeMap<String, Value> {
        &self.outputs
    }

    /// The provenance trace in execution order.
    pub fn trace(&self) -> &[TraceEntry] {
        &self.trace
    }
}

/// The verdict of replaying a run record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayReport {
    divergent: Vec<String>,
}

impl ReplayReport {
    /// `true` when every node reproduced the recorded output hash.
    pub fn matches(&self) -> bool {
        self.divergent.is_empty()
    }

    /// Nodes whose outputs diverged from the record.
    pub fn divergent_nodes(&self) -> &[String] {
        &self.divergent
    }
}

/// A validated, executable workflow DAG.
#[derive(Debug)]
pub struct Workflow {
    name: String,
    nodes: Vec<Node>,
    /// Topological execution order, as indices into `nodes`.
    order: Vec<usize>,
}

impl Workflow {
    /// Starts building a workflow.
    pub fn builder(name: impl Into<String>) -> WorkflowBuilder {
        WorkflowBuilder { name: name.into(), nodes: Vec::new() }
    }

    /// The workflow name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the workflow has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Node names in topological execution order.
    pub fn execution_order(&self) -> Vec<&str> {
        self.order.iter().map(|&i| self.nodes[i].name.as_str()).collect()
    }

    /// Executes every node in topological order, recording provenance.
    ///
    /// # Errors
    ///
    /// Returns [`WorkflowError::NodeFailed`] on the first task failure.
    pub fn execute(&self) -> Result<RunRecord, WorkflowError> {
        let mut outputs: BTreeMap<String, Value> = BTreeMap::new();
        let mut trace = Vec::with_capacity(self.nodes.len());
        for (order, &idx) in self.order.iter().enumerate() {
            let node = &self.nodes[idx];
            // Construction already validated every input edge, and the
            // topological order runs producers first — but surface any
            // breach as the typed error rather than a panic.
            let inputs: Vec<Value> = node
                .inputs
                .iter()
                .map(|name| {
                    outputs.get(name).cloned().ok_or_else(|| WorkflowError::UnknownInput {
                        node: node.name.clone(),
                        input: name.clone(),
                    })
                })
                .collect::<Result<_, _>>()?;
            let output = (node.task)(&inputs).map_err(|message| WorkflowError::NodeFailed {
                node: node.name.clone(),
                message,
            })?;
            trace.push(TraceEntry {
                node: node.name.clone(),
                consumed: node.inputs.clone(),
                output_hash: hash_value(&output),
                order,
            });
            outputs.insert(node.name.clone(), output);
        }
        Ok(RunRecord { workflow: self.name.clone(), outputs, trace })
    }

    /// Re-executes the workflow and compares every node's output hash
    /// against `record` — the reproducibility check of experiment E13.
    ///
    /// # Errors
    ///
    /// Returns [`WorkflowError::RecordMismatch`] when the record names a
    /// different workflow or node set, or any execution error.
    pub fn replay(&self, record: &RunRecord) -> Result<ReplayReport, WorkflowError> {
        if record.workflow != self.name {
            return Err(WorkflowError::RecordMismatch(format!(
                "record is for workflow {:?}, this is {:?}",
                record.workflow, self.name
            )));
        }
        if record.trace.len() != self.nodes.len() {
            return Err(WorkflowError::RecordMismatch(format!(
                "record has {} nodes, workflow has {}",
                record.trace.len(),
                self.nodes.len()
            )));
        }
        let rerun = self.execute()?;
        let recorded: BTreeMap<&str, u64> =
            record.trace.iter().map(|t| (t.node.as_str(), t.output_hash)).collect();
        let divergent = rerun
            .trace
            .iter()
            .filter(|t| recorded.get(t.node.as_str()) != Some(&t.output_hash))
            .map(|t| t.node.clone())
            .collect();
        Ok(ReplayReport { divergent })
    }

    /// Node names nothing consumes — the workflow's results.
    pub fn sink_nodes(&self) -> Vec<&str> {
        let consumed: BTreeSet<&str> =
            self.nodes.iter().flat_map(|n| n.inputs.iter().map(String::as_str)).collect();
        self.nodes.iter().map(|n| n.name.as_str()).filter(|n| !consumed.contains(n)).collect()
    }
}

/// FNV-1a over the canonical JSON encoding.
fn hash_value(value: &Value) -> u64 {
    let encoded = value.to_string();
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in encoded.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Builder for [`Workflow`].
pub struct WorkflowBuilder {
    name: String,
    nodes: Vec<Node>,
}

impl fmt::Debug for WorkflowBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkflowBuilder")
            .field("name", &self.name)
            .field("nodes", &self.nodes.len())
            .finish()
    }
}

impl WorkflowBuilder {
    /// Adds a task node consuming the named inputs (in order).
    pub fn task<I, S, F>(mut self, name: impl Into<String>, inputs: I, task: F) -> WorkflowBuilder
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
        F: Fn(&[Value]) -> Result<Value, String> + Send + Sync + 'static,
    {
        self.nodes.push(Node {
            name: name.into(),
            inputs: inputs.into_iter().map(Into::into).collect(),
            task: Arc::new(task),
        });
        self
    }

    /// Adds a constant source node.
    pub fn constant(self, name: impl Into<String>, value: Value) -> WorkflowBuilder {
        self.task(name, Vec::<String>::new(), move |_| Ok(value.clone()))
    }

    /// Validates the graph (unique names, known inputs, acyclicity) and
    /// freezes the topological order.
    ///
    /// # Errors
    ///
    /// Returns [`WorkflowError::DuplicateNode`],
    /// [`WorkflowError::UnknownInput`] or [`WorkflowError::Cycle`].
    pub fn build(self) -> Result<Workflow, WorkflowError> {
        let mut seen = BTreeSet::new();
        for node in &self.nodes {
            if !seen.insert(node.name.as_str()) {
                return Err(WorkflowError::DuplicateNode(node.name.clone()));
            }
        }
        let index: BTreeMap<&str, usize> =
            self.nodes.iter().enumerate().map(|(i, n)| (n.name.as_str(), i)).collect();
        for node in &self.nodes {
            for input in &node.inputs {
                if !index.contains_key(input.as_str()) {
                    return Err(WorkflowError::UnknownInput {
                        node: node.name.clone(),
                        input: input.clone(),
                    });
                }
            }
        }

        // Kahn's algorithm, deterministic (declaration-order tie-breaking).
        let n = self.nodes.len();
        let mut in_degree = vec![0usize; n];
        let mut dependants: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, node) in self.nodes.iter().enumerate() {
            for input in &node.inputs {
                let j = index[input.as_str()];
                in_degree[i] += 1;
                dependants[j].push(i);
            }
        }
        let mut ready: Vec<usize> = (0..n).filter(|&i| in_degree[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(i) = ready.first().copied() {
            ready.remove(0);
            order.push(i);
            for &d in &dependants[i] {
                in_degree[d] -= 1;
                if in_degree[d] == 0 {
                    ready.push(d);
                    ready.sort_unstable();
                }
            }
        }
        if order.len() != n {
            let stuck = (0..n)
                .find(|&i| in_degree[i] > 0)
                .map(|i| self.nodes[i].name.clone())
                .unwrap_or_default();
            return Err(WorkflowError::Cycle(stuck));
        }

        Ok(Workflow { name: self.name, nodes: self.nodes, order })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn diamond() -> Workflow {
        Workflow::builder("diamond")
            .constant("source", json!(10))
            .task("left", ["source"], |ins| Ok(json!(ins[0].as_i64().unwrap() * 2)))
            .task("right", ["source"], |ins| Ok(json!(ins[0].as_i64().unwrap() + 5)))
            .task("join", ["left", "right"], |ins| {
                Ok(json!(ins[0].as_i64().unwrap() + ins[1].as_i64().unwrap()))
            })
            .build()
            .unwrap()
    }

    #[test]
    fn diamond_executes_in_topological_order() {
        let wf = diamond();
        let order = wf.execution_order();
        assert_eq!(order[0], "source");
        assert_eq!(order[3], "join");
        let run = wf.execute().unwrap();
        assert_eq!(run.output("join").unwrap(), &json!(35));
        assert_eq!(wf.sink_nodes(), vec!["join"]);
    }

    #[test]
    fn trace_records_order_and_consumption() {
        let run = diamond().execute().unwrap();
        assert_eq!(run.trace().len(), 4);
        assert_eq!(run.trace()[0].node, "source");
        let join = run.trace().iter().find(|t| t.node == "join").unwrap();
        assert_eq!(join.consumed, vec!["left", "right"]);
        assert_eq!(join.order, 3);
    }

    #[test]
    fn replay_matches_for_deterministic_workflow() {
        let wf = diamond();
        let run = wf.execute().unwrap();
        let report = wf.replay(&run).unwrap();
        assert!(report.matches());
    }

    #[test]
    fn replay_detects_divergence() {
        use std::sync::atomic::{AtomicI64, Ordering};
        let counter = Arc::new(AtomicI64::new(0));
        let c2 = Arc::clone(&counter);
        let wf = Workflow::builder("drifting")
            .task("tick", [] as [&str; 0], move |_| Ok(json!(c2.fetch_add(1, Ordering::SeqCst))))
            .build()
            .unwrap();
        let run = wf.execute().unwrap();
        let report = wf.replay(&run).unwrap();
        assert!(!report.matches());
        assert_eq!(report.divergent_nodes(), ["tick"]);
    }

    #[test]
    fn replay_rejects_foreign_record() {
        let wf = diamond();
        let other = Workflow::builder("other").constant("x", json!(1)).build().unwrap();
        let record = other.execute().unwrap();
        assert!(matches!(wf.replay(&record), Err(WorkflowError::RecordMismatch(_))));
    }

    #[test]
    fn cycle_is_rejected() {
        let err = Workflow::builder("loopy")
            .task("a", ["b"], |_| Ok(json!(1)))
            .task("b", ["a"], |_| Ok(json!(2)))
            .build()
            .unwrap_err();
        assert!(matches!(err, WorkflowError::Cycle(_)));
    }

    #[test]
    fn self_loop_is_rejected() {
        let err =
            Workflow::builder("selfie").task("a", ["a"], |_| Ok(json!(1))).build().unwrap_err();
        assert!(matches!(err, WorkflowError::Cycle(_)));
    }

    #[test]
    fn duplicate_and_unknown_names_rejected() {
        let err = Workflow::builder("dup")
            .constant("x", json!(1))
            .constant("x", json!(2))
            .build()
            .unwrap_err();
        assert_eq!(err, WorkflowError::DuplicateNode("x".to_owned()));

        let err = Workflow::builder("missing")
            .task("a", ["ghost"], |_| Ok(json!(1)))
            .build()
            .unwrap_err();
        assert!(matches!(err, WorkflowError::UnknownInput { .. }));
    }

    #[test]
    fn node_failure_is_attributed() {
        let wf = Workflow::builder("failing")
            .constant("ok", json!(1))
            .task("boom", ["ok"], |_| Err("kaput".to_owned()))
            .build()
            .unwrap();
        let err = wf.execute().unwrap_err();
        assert_eq!(
            err,
            WorkflowError::NodeFailed { node: "boom".to_owned(), message: "kaput".to_owned() }
        );
    }

    #[test]
    fn declaration_order_breaks_ties_deterministically() {
        let wf = Workflow::builder("ties")
            .constant("b", json!(1))
            .constant("a", json!(2))
            .task("sum", ["a", "b"], |ins| {
                Ok(json!(ins[0].as_i64().unwrap() + ins[1].as_i64().unwrap()))
            })
            .build()
            .unwrap();
        // Declaration order: b before a.
        assert_eq!(wf.execution_order(), vec!["b", "a", "sum"]);
        // Inputs are delivered in *declared input* order, not execution order.
        let run = wf.execute().unwrap();
        assert_eq!(run.output("sum").unwrap(), &json!(3));
    }

    #[test]
    fn multi_stage_pipeline_passes_data() {
        // The paper's example shape: data → model → statistics.
        let wf = Workflow::builder("rainfall-stats")
            .constant("rainfall", json!([0.0, 2.5, 10.0, 4.0]))
            .task("runoff", ["rainfall"], |ins| {
                let total: f64 = ins[0]
                    .as_array()
                    .ok_or("expected array")?
                    .iter()
                    .filter_map(Value::as_f64)
                    .sum();
                Ok(json!({ "runoff_mm": total * 0.4 }))
            })
            .task("report", ["runoff"], |ins| {
                Ok(json!(format!("runoff: {} mm", ins[0]["runoff_mm"])))
            })
            .build()
            .unwrap();
        let run = wf.execute().unwrap();
        assert_eq!(run.output("report").unwrap(), &json!("runoff: 6.6000000000000005 mm"));
    }
}
