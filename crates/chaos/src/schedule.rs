//! Declarative fault schedules.
//!
//! A [`FaultSchedule`] is data, not code: a named list of time windows,
//! each activating one [`FaultKind`] against one target. Schedules
//! round-trip through JSON, so a chaos scenario can be checked into the
//! repository, diffed in review, and replayed bit-for-bit — the KheOps
//! position that cloud experiments are only trustworthy when fully
//! repeatable.

use serde::{Deserialize, Serialize};

use evop_sim::SimTime;

/// One kind of injected fault. Rates and probabilities are evaluated by
/// the engine's seeded RNG, so a schedule plus a seed fully determines
/// every fault that fires.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "fault", rename_all = "kebab-case")]
pub enum FaultKind {
    /// The provider's control-plane API refuses a fraction of calls —
    /// the transient error burst named as the dominant operational pain
    /// in the EVO hybrid-cloud experience report.
    ApiErrorBurst {
        /// Which provider misbehaves.
        provider: String,
        /// Probability that any one guarded call fails, in `[0, 1]`.
        error_rate: f64,
    },
    /// Freshly accepted launches die at the moment boot completes.
    BootFailure {
        /// Which provider loses instances.
        provider: String,
        /// Probability that any one launch is doomed, in `[0, 1]`.
        probability: f64,
    },
    /// New instances boot slowly — the classic straggler.
    Straggler {
        /// Which provider straggles.
        provider: String,
        /// Boot-time multiplier for affected instances (> 1).
        slowdown: f64,
        /// Probability that any one boot straggles, in `[0, 1]`.
        probability: f64,
    },
    /// The blob container's backing store refuses all requests.
    BlobOutage {
        /// Which container is unreachable.
        container: String,
    },
    /// Reads from the container return corrupt objects.
    BlobCorruption {
        /// Which container is affected.
        container: String,
        /// Probability that any one read is corrupt, in `[0, 1]`.
        probability: f64,
    },
    /// The provider is unreachable from the broker's network: every
    /// control-plane call fails for the whole window.
    Partition {
        /// Which provider is cut off.
        provider: String,
    },
}

impl FaultKind {
    /// A short machine-readable label, used in event logs.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::ApiErrorBurst { .. } => "api-error-burst",
            FaultKind::BootFailure { .. } => "boot-failure",
            FaultKind::Straggler { .. } => "straggler",
            FaultKind::BlobOutage { .. } => "blob-outage",
            FaultKind::BlobCorruption { .. } => "blob-corruption",
            FaultKind::Partition { .. } => "partition",
        }
    }
}

/// A fault active from `start_secs` for `duration_secs` of virtual time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultWindow {
    /// Window start, in virtual seconds from the beginning of the run.
    pub start_secs: u64,
    /// Window length in virtual seconds.
    pub duration_secs: u64,
    /// What misbehaves during the window.
    pub kind: FaultKind,
}

impl FaultWindow {
    /// `true` while `now` falls inside `[start, start + duration)`.
    pub fn active_at(&self, now: SimTime) -> bool {
        let start = self.start_secs * 1000;
        let end = start + self.duration_secs * 1000;
        now.as_millis() >= start && now.as_millis() < end
    }

    /// Virtual milliseconds from `now` to the end of the window (zero if
    /// the window is over).
    pub fn remaining_millis(&self, now: SimTime) -> u64 {
        let end = (self.start_secs + self.duration_secs) * 1000;
        end.saturating_sub(now.as_millis())
    }
}

/// A named, serializable chaos plan.
///
/// # Examples
///
/// ```
/// use evop_chaos::{FaultKind, FaultSchedule};
///
/// let schedule = FaultSchedule::named("aws-flaky-morning").window(
///     600,
///     1800,
///     FaultKind::ApiErrorBurst { provider: "aws".to_owned(), error_rate: 0.5 },
/// );
/// let json = schedule.to_json();
/// assert_eq!(FaultSchedule::from_json(&json).unwrap(), schedule);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSchedule {
    name: String,
    windows: Vec<FaultWindow>,
}

impl FaultSchedule {
    /// Creates an empty schedule.
    pub fn named(name: impl Into<String>) -> FaultSchedule {
        FaultSchedule { name: name.into(), windows: Vec::new() }
    }

    /// The schedule's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a fault window (builder style).
    pub fn window(mut self, start_secs: u64, duration_secs: u64, kind: FaultKind) -> FaultSchedule {
        self.windows.push(FaultWindow { start_secs, duration_secs, kind });
        self
    }

    /// All windows, in insertion order.
    pub fn windows(&self) -> &[FaultWindow] {
        &self.windows
    }

    /// Windows active at `now`, in insertion order.
    pub fn active_at(&self, now: SimTime) -> impl Iterator<Item = &FaultWindow> {
        self.windows.iter().filter(move |w| w.active_at(now))
    }

    /// When the last window closes, in virtual seconds.
    pub fn end_secs(&self) -> u64 {
        self.windows.iter().map(|w| w.start_secs + w.duration_secs).max().unwrap_or(0)
    }

    /// Serializes the schedule to canonical (stable field order) JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|_| String::from("{}"))
    }

    /// Parses a schedule from JSON.
    ///
    /// # Errors
    ///
    /// Returns the serde error message for malformed input.
    pub fn from_json(json: &str) -> Result<FaultSchedule, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }

    /// The reference "provider storm" used by the chaos regression tests
    /// and the `chaos_report` tool: an AWS API error burst, a campus
    /// boot-failure spell overlapping an AWS straggler spell, a short
    /// full partition of AWS (overlapping an even shorter campus
    /// partition, so provisioning transiently has nowhere to go), and a
    /// model-library blob outage — all within the first two hours of a
    /// run.
    pub fn provider_storm() -> FaultSchedule {
        FaultSchedule::named("provider-storm")
            .window(
                600,
                1200,
                FaultKind::ApiErrorBurst { provider: "aws".to_owned(), error_rate: 0.6 },
            )
            .window(
                1800,
                1800,
                FaultKind::BootFailure { provider: "campus".to_owned(), probability: 0.5 },
            )
            .window(
                2400,
                1800,
                FaultKind::Straggler {
                    provider: "aws".to_owned(),
                    slowdown: 4.0,
                    probability: 0.5,
                },
            )
            .window(4200, 600, FaultKind::Partition { provider: "aws".to_owned() })
            .window(4200, 600, FaultKind::Partition { provider: "campus".to_owned() })
            .window(5400, 900, FaultKind::BlobOutage { container: "model-library".to_owned() })
            .window(
                6300,
                900,
                FaultKind::BlobCorruption {
                    container: "model-library".to_owned(),
                    probability: 0.3,
                },
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_activate_and_expire() {
        let w = FaultWindow {
            start_secs: 10,
            duration_secs: 20,
            kind: FaultKind::Partition { provider: "aws".to_owned() },
        };
        assert!(!w.active_at(SimTime::from_secs(9)));
        assert!(w.active_at(SimTime::from_secs(10)));
        assert!(w.active_at(SimTime::from_secs(29)));
        assert!(!w.active_at(SimTime::from_secs(30)));
        assert_eq!(w.remaining_millis(SimTime::from_secs(20)), 10_000);
        assert_eq!(w.remaining_millis(SimTime::from_secs(40)), 0);
    }

    #[test]
    fn schedule_round_trips_through_json() {
        let schedule = FaultSchedule::provider_storm();
        let json = schedule.to_json();
        let parsed = FaultSchedule::from_json(&json).unwrap();
        assert_eq!(parsed, schedule);
        assert_eq!(parsed.name(), "provider-storm");
        assert_eq!(parsed.windows().len(), 7);
        assert_eq!(parsed.end_secs(), 7200);
    }

    #[test]
    fn bad_json_is_rejected_with_a_message() {
        assert!(FaultSchedule::from_json("{").is_err());
        assert!(FaultSchedule::from_json("{\"name\": 3}").is_err());
    }

    #[test]
    fn active_at_filters_by_time() {
        let schedule = FaultSchedule::provider_storm();
        let labels: Vec<&str> =
            schedule.active_at(SimTime::from_secs(2500)).map(|w| w.kind.label()).collect();
        assert_eq!(labels, ["boot-failure", "straggler"]);
        assert_eq!(schedule.active_at(SimTime::from_secs(0)).count(), 0);
    }
}
