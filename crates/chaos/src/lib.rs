//! Deterministic fault-injection plane for the EVOp simulator.
//!
//! Chaos testing is only useful when a failing run can be replayed
//! exactly. This crate makes every chaos experiment a pure function of a
//! `(schedule, seed)` pair:
//!
//! - [`FaultSchedule`] — a declarative, JSON-round-trippable plan of
//!   fault windows (API error bursts, boot failures, stragglers,
//!   partitions, blob outages and corruption);
//! - [`ChaosEngine`] — a seeded [`FaultInjector`](evop_cloud::FaultInjector)
//!   that fires the scheduled faults through the cloud simulator's
//!   injection hooks and records every fault it fires;
//! - [`ChaosBlobStore`] — the same treatment for blob storage;
//! - [`ChaosScenario`] — an end-to-end harness that drives a full broker
//!   through a schedule and returns a measured [`ChaosRunReport`] with a
//!   canonical event log for golden-trace regression.
//!
//! # Examples
//!
//! ```
//! use evop_chaos::{ChaosScenario, FaultSchedule};
//! use evop_sim::SimDuration;
//!
//! let report = ChaosScenario::new(FaultSchedule::provider_storm(), 42)
//!     .sessions(6)
//!     .duration(SimDuration::from_secs(3600))
//!     .run();
//! assert_eq!(report.sessions_unserved, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod blob;
mod engine;
mod scenario;
mod schedule;

pub use blob::ChaosBlobStore;
pub use engine::{ChaosEngine, ChaosEvent};
pub use scenario::{ChaosRunReport, ChaosScenario, SubmitStats};
pub use schedule::{FaultKind, FaultSchedule, FaultWindow};
