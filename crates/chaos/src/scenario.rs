//! The chaos scenario harness: one `(schedule, seed)` run against a real
//! broker, with a canonical, replayable event log and measured
//! reliability numbers.

use std::collections::{BTreeMap, BTreeSet};

use serde_json::{json, Value};

use evop_broker::{Broker, BrokerConfig, BrokerError, BrokerEvent, SessionId, SessionState};
use evop_cloud::{InstanceId, InstanceState, JobState};
use evop_obs::{AlertEngine, AlertRecord, AlertSeverity, SloSpec, Tsdb, TsdbConfig};
use evop_sim::{SimDuration, SimTime};

use crate::engine::ChaosEngine;
use crate::schedule::FaultSchedule;

/// A declarative chaos experiment: a fault schedule, a seed, a broker
/// configuration and a synthetic user population.
///
/// Running the scenario is deterministic end to end — the broker, the
/// cloud and the fault engine all derive from the same seed — so a run is
/// identified by `(schedule, seed)` and replays byte-identically.
///
/// # Examples
///
/// ```
/// use evop_chaos::{ChaosScenario, FaultSchedule};
///
/// let scenario = ChaosScenario::new(FaultSchedule::provider_storm(), 42).sessions(6);
/// let a = scenario.run();
/// let b = scenario.run();
/// assert_eq!(a.canonical_log(), b.canonical_log());
/// ```
#[derive(Debug, Clone)]
pub struct ChaosScenario {
    schedule: FaultSchedule,
    seed: u64,
    config: BrokerConfig,
    sessions: usize,
    duration: SimDuration,
    submit_every: SimDuration,
    work: SimDuration,
    slos: Vec<SloSpec>,
    tsdb: Option<TsdbConfig>,
}

impl ChaosScenario {
    /// Creates a scenario with the default population (20 sessions
    /// soaking for four virtual hours, one model run each per five
    /// minutes) and the default broker configuration.
    pub fn new(schedule: FaultSchedule, seed: u64) -> ChaosScenario {
        ChaosScenario {
            schedule,
            seed,
            config: BrokerConfig::default(),
            sessions: 20,
            duration: SimDuration::from_secs(4 * 3600),
            submit_every: SimDuration::from_secs(300),
            work: SimDuration::from_secs(30),
            slos: Vec::new(),
            tsdb: None,
        }
    }

    /// Attaches an embedded time-series store: every control tick flushes
    /// the broker's metrics registry into multi-resolution rollups, and
    /// the report carries the store's deterministic snapshot.
    ///
    /// Like the SLO engine, the store only *reads* the registry — the
    /// chaos/broker event log is byte-identical with or without it.
    pub fn tsdb(mut self, config: TsdbConfig) -> ChaosScenario {
        self.tsdb = Some(config);
        self
    }

    /// Registers an SLO to be judged after every control tick.
    ///
    /// The alert engine only *reads* the broker's metrics registry, so
    /// adding SLOs never perturbs the simulation: the chaos/broker event
    /// log is byte-identical with or without them.
    pub fn slo(mut self, spec: SloSpec) -> ChaosScenario {
        self.slos.push(spec);
        self
    }

    /// The reference SLO set the E4 alert-latency experiments judge:
    /// broker availability (submissions answered `ok` against a 90 %
    /// target) and boot latency (instances ready within 180 s against a
    /// 90 % target), each with a fast page window and a slower ticket
    /// window.
    pub fn default_slos() -> Vec<SloSpec> {
        vec![
            SloSpec::availability(
                "broker-availability",
                0.9,
                "broker_submit_total",
                &[("outcome", "ok")],
                "broker_submit_total",
            )
            .window(1800, 300, 2.0, AlertSeverity::Page)
            .window(7200, 1800, 1.0, AlertSeverity::Ticket),
            SloSpec::latency(
                "boot-latency",
                0.9,
                "cloud_boot_seconds",
                &[("provider", "aws")],
                180.0,
            )
            .window(1800, 300, 2.0, AlertSeverity::Page),
        ]
    }

    /// Overrides the broker configuration.
    pub fn config(mut self, config: BrokerConfig) -> ChaosScenario {
        self.config = config;
        self
    }

    /// Overrides the number of concurrent user sessions.
    pub fn sessions(mut self, sessions: usize) -> ChaosScenario {
        self.sessions = sessions;
        self
    }

    /// Overrides the soak length.
    pub fn duration(mut self, duration: SimDuration) -> ChaosScenario {
        self.duration = duration;
        self
    }

    /// Overrides how often each session fires a model run.
    pub fn submit_every(mut self, submit_every: SimDuration) -> ChaosScenario {
        self.submit_every = submit_every;
        self
    }

    /// Runs the scenario to completion and measures it.
    ///
    /// # Panics
    ///
    /// Panics if the broker configuration fails validation — scenario
    /// construction is programmer input.
    pub fn run(&self) -> ChaosRunReport {
        let engine = ChaosEngine::new(self.schedule.clone(), self.seed);
        let mut broker = Broker::new(self.config.clone(), self.seed);
        engine.set_tracer(broker.tracer().clone());
        broker.set_fault_injector(Some(Box::new(engine.clone())));
        let mut alert_engine = AlertEngine::new(broker.metrics().clone());
        for spec in &self.slos {
            alert_engine.add_slo(spec.clone());
        }
        let mut tsdb = self.tsdb.clone().map(Tsdb::new);

        let sessions: Vec<SessionId> = (0..self.sessions)
            .map(|i| {
                broker
                    .connect(&format!("user-{i}"), "topmodel")
                    // evop-lint: allow(rob-expect) -- default library always serves topmodel
                    .expect("default library serves topmodel")
            })
            .collect();

        let step = self.config.check_interval;
        let mut failed_at: BTreeMap<InstanceId, SimTime> = BTreeMap::new();
        let mut next_submit = SimTime::ZERO + self.submit_every;
        let mut stats = SubmitStats::default();
        let mut awaiting_rebind: BTreeSet<SessionId> = BTreeSet::new();

        while broker.now() < SimTime::ZERO + self.duration {
            broker.advance(step);
            alert_engine.tick(broker.now());
            // Record first sightings of failed instances *before* the
            // broker terminates them, so detection latency is measurable.
            for inst in broker.cloud().instances() {
                if let InstanceState::Failed { at, .. } = inst.state() {
                    failed_at.entry(inst.id()).or_insert(at);
                }
            }
            if broker.now() >= next_submit {
                next_submit = broker.now() + self.submit_every;
                for &s in &sessions {
                    stats.attempts += 1;
                    match broker.run_model(s, self.work) {
                        Ok(_) => {
                            if awaiting_rebind.remove(&s) {
                                stats.recovered += 1;
                            }
                            stats.accepted += 1;
                        }
                        Err(BrokerError::TransientlyUnavailable { .. }) => {
                            awaiting_rebind.insert(s);
                            stats.transient_refusals += 1;
                        }
                        Err(_) => stats.hard_failures += 1,
                    }
                }
            }
            // Flush the registry into the rollup store at the end of the
            // tick, once this cycle's submissions have been counted.
            if let Some(tsdb) = tsdb.as_mut() {
                tsdb.ingest_registry(broker.metrics(), broker.now());
            }
        }

        let mut detection_latencies_secs = Vec::new();
        let mut detections = 0usize;
        let mut migrations = 0usize;
        let mut requeues = 0usize;
        let mut provision_faults = 0usize;
        for event in broker.events() {
            match event {
                BrokerEvent::FailureDetected { at, instance, .. } => {
                    detections += 1;
                    if let Some(&failed) = failed_at.get(instance) {
                        detection_latencies_secs.push(at.saturating_since(failed).as_secs_f64());
                    }
                }
                BrokerEvent::SessionMigrated { .. } => migrations += 1,
                BrokerEvent::SessionRequeued { .. } => requeues += 1,
                BrokerEvent::ProvisionFault { .. } => provision_faults += 1,
                _ => {}
            }
        }

        let unserved = sessions
            .iter()
            .filter(|&&s| {
                let Some(session) = broker.session(s) else { return true };
                if session.state() != SessionState::Active {
                    return true;
                }
                let Some(inst) = session.instance() else { return true };
                !broker
                    .cloud()
                    .instance(inst)
                    .is_some_and(|i| !matches!(i.state(), InstanceState::Terminated { .. }))
            })
            .count();

        let (jobs_completed, jobs_lost) =
            broker.cloud().instances().fold((0usize, 0usize), |(c, l), i| {
                let done = i.jobs().iter().filter(|j| j.latency().is_some()).count();
                let gone =
                    i.jobs().iter().filter(|j| matches!(j.state(), JobState::Lost { .. })).count();
                (c + done, l + gone)
            });

        let alerts = alert_engine.alerts().to_vec();
        let canonical_log =
            canonical_log(&self.schedule, self.seed, &engine, broker.events(), &alerts);
        let metrics_snapshot = broker.metrics().snapshot();
        let prometheus = evop_obs::prometheus_text(broker.metrics());
        let tsdb_snapshot = tsdb.map(|mut store| {
            store.finish(broker.now());
            store.to_json()
        });
        ChaosRunReport {
            schedule_name: self.schedule.name().to_owned(),
            seed: self.seed,
            detections,
            migrations,
            requeues,
            provision_faults,
            retry_successes: broker
                .metrics()
                .counter("broker_provision_retries_total", &[("outcome", "success")]),
            backoff_skips: broker.metrics().counter("broker_provision_backoff_skips_total", &[]),
            detection_latencies_secs,
            chaos_faults_fired: engine.events().len(),
            submits: stats,
            sessions_total: sessions.len(),
            sessions_unserved: unserved,
            jobs_completed,
            jobs_lost,
            total_cost: broker.total_cost(),
            alerts,
            metrics_snapshot,
            prometheus,
            tsdb_snapshot,
            canonical_log,
        }
    }
}

/// Model-run submission outcomes over a whole scenario.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SubmitStats {
    /// Model runs attempted.
    pub attempts: u64,
    /// Accepted on the first try of that cycle.
    pub accepted: u64,
    /// Refused with the typed transient error (session between instances).
    pub transient_refusals: u64,
    /// Refused with a non-transient error.
    pub hard_failures: u64,
    /// Sessions that were transiently refused and then served on a later
    /// cycle — the end-to-end retry-success signal.
    pub recovered: u64,
}

/// Everything one chaos run measured.
#[derive(Debug, Clone)]
pub struct ChaosRunReport {
    /// The schedule that drove the run.
    pub schedule_name: String,
    /// The seed that drove the run.
    pub seed: u64,
    /// Instance failures the broker detected.
    pub detections: usize,
    /// Sessions moved between instances.
    pub migrations: usize,
    /// Sessions sent back to the waiting queue for lack of a replacement.
    pub requeues: usize,
    /// Provisioning attempts that hit a transient provider fault.
    pub provision_faults: usize,
    /// Backed-off provisioning retries that eventually succeeded.
    pub retry_successes: u64,
    /// Provider calls skipped outright while waiting out a backoff.
    pub backoff_skips: u64,
    /// Failure-to-detection latency per detected failure, in seconds.
    pub detection_latencies_secs: Vec<f64>,
    /// Faults the chaos engine actually fired.
    pub chaos_faults_fired: usize,
    /// Model-run submission outcomes.
    pub submits: SubmitStats,
    /// Sessions in the scenario.
    pub sessions_total: usize,
    /// Sessions not actively served by a live instance at the end.
    pub sessions_unserved: usize,
    /// Model runs that completed.
    pub jobs_completed: usize,
    /// Model runs lost to failures.
    pub jobs_lost: usize,
    /// Total accumulated cost.
    pub total_cost: f64,
    /// SLO alert transitions, in firing order (empty when the scenario
    /// registered no SLOs).
    pub alerts: Vec<AlertRecord>,
    /// The broker's full metrics registry at the end of the run, as the
    /// registry's deterministic JSON snapshot.
    pub metrics_snapshot: Value,
    /// The same registry rendered in the Prometheus text format.
    pub prometheus: String,
    /// The embedded time-series store's snapshot, when the scenario
    /// attached one via [`ChaosScenario::tsdb`].
    pub tsdb_snapshot: Option<Value>,
    canonical_log: String,
}

impl ChaosRunReport {
    /// Mean failure-to-detection latency, when any was measured.
    pub fn mean_detection_latency_secs(&self) -> Option<f64> {
        if self.detection_latencies_secs.is_empty() {
            return None;
        }
        Some(
            self.detection_latencies_secs.iter().sum::<f64>()
                / self.detection_latencies_secs.len() as f64,
        )
    }

    /// Worst failure-to-detection latency, when any was measured.
    pub fn max_detection_latency_secs(&self) -> Option<f64> {
        self.detection_latencies_secs
            .iter()
            .copied()
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// Fraction of transiently refused cycles that later recovered.
    pub fn retry_success_rate(&self) -> Option<f64> {
        if self.submits.transient_refusals == 0 {
            return None;
        }
        Some(self.submits.recovered as f64 / self.submits.transient_refusals as f64)
    }

    /// The combined chaos + broker event log as canonical JSON: the byte
    /// string that defines "the same run" for golden-trace regression.
    pub fn canonical_log(&self) -> &str {
        &self.canonical_log
    }
}

/// Serializes the run into one stable JSON document: schedule identity,
/// seed, the chaos engine's fired-fault log and the broker's operational
/// event log, all in their deterministic order.
fn canonical_log(
    schedule: &FaultSchedule,
    seed: u64,
    engine: &ChaosEngine,
    broker_events: &[BrokerEvent],
    alerts: &[AlertRecord],
) -> String {
    let broker: Vec<Value> = broker_events.iter().map(broker_event_json).collect();
    let chaos: Vec<Value> = engine
        .events()
        .iter()
        .map(|e| {
            json!({
                "at_ms": e.at_ms,
                "kind": e.kind,
                "target": e.target,
                "detail": e.detail,
                "trace": e.trace,
            })
        })
        .collect();
    let alerts: Vec<Value> = alerts.iter().map(AlertRecord::to_json).collect();
    let doc = json!({
        "schedule": schedule.name(),
        "seed": seed,
        "chaos": chaos,
        "broker": broker,
        "alerts": alerts,
    });
    serde_json::to_string_pretty(&doc).unwrap_or_else(|_| String::from("{}"))
}

fn broker_event_json(event: &BrokerEvent) -> Value {
    match event {
        BrokerEvent::ScaledUp { at, instance, provider, cloudburst } => json!({
            "at_ms": at.as_millis(),
            "event": "scaled-up",
            "instance": instance.to_string(),
            "provider": provider,
            "cloudburst": cloudburst,
        }),
        BrokerEvent::ScaledDown { at, instance, provider } => json!({
            "at_ms": at.as_millis(),
            "event": "scaled-down",
            "instance": instance.to_string(),
            "provider": provider,
        }),
        BrokerEvent::FailureDetected { at, instance, signature } => json!({
            "at_ms": at.as_millis(),
            "event": "failure-detected",
            "instance": instance.to_string(),
            "signature": signature,
        }),
        BrokerEvent::SessionMigrated { at, session, from, to } => json!({
            "at_ms": at.as_millis(),
            "event": "session-migrated",
            "session": session.to_string(),
            "from": from.to_string(),
            "to": to.to_string(),
        }),
        BrokerEvent::WarmPoolHit { at, session } => json!({
            "at_ms": at.as_millis(),
            "event": "warm-pool-hit",
            "session": session.to_string(),
        }),
        BrokerEvent::SessionRequeued { at, session, from } => json!({
            "at_ms": at.as_millis(),
            "event": "session-requeued",
            "session": session.to_string(),
            "from": from.to_string(),
        }),
        BrokerEvent::ProvisionFault { at, reason, retry_after } => json!({
            "at_ms": at.as_millis(),
            "event": "provision-fault",
            "reason": reason,
            "retry_after_ms": retry_after.as_millis(),
        }),
        BrokerEvent::RequestCoalesced { at, key, leader, follower, followers } => json!({
            "at_ms": at.as_millis(),
            "event": "request-coalesced",
            "key": key,
            "leader": leader.to_string(),
            "follower": follower.to_string(),
            "followers": followers,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::FaultKind;

    fn short_storm() -> ChaosScenario {
        // Tight private capacity forces cloudbursting into the AWS fault
        // windows, and background MTBF churn forces boots during the
        // campus boot-failure spell — so the storm has something to hit.
        let config = BrokerConfig {
            private_capacity_vcpus: 4,
            instance_mtbf: Some(SimDuration::from_secs(900)),
            ..BrokerConfig::default()
        };
        ChaosScenario::new(FaultSchedule::provider_storm(), 42)
            .config(config)
            .sessions(20)
            .duration(SimDuration::from_secs(3600))
    }

    #[test]
    fn runs_are_reproducible_from_schedule_and_seed() {
        let a = short_storm().run();
        let b = short_storm().run();
        assert_eq!(a.canonical_log(), b.canonical_log());
        assert_eq!(a.detections, b.detections);
        assert_eq!(a.submits, b.submits);

        let other = ChaosScenario::new(FaultSchedule::provider_storm(), 43)
            .sessions(8)
            .duration(SimDuration::from_secs(3600))
            .run();
        assert_ne!(a.canonical_log(), other.canonical_log(), "different seeds differ (a.s.)");
    }

    #[test]
    fn storm_is_survived_with_everyone_served() {
        let report = short_storm().run();
        assert!(report.chaos_faults_fired > 0, "the storm must actually fire faults");
        assert_eq!(report.sessions_unserved, 0, "no one may be left behind");
        assert!(report.jobs_completed > 0);
        assert!(report.submits.hard_failures == 0, "faults must surface as typed transients");
    }

    #[test]
    fn slos_alert_on_a_partition_and_join_back_to_faults() {
        let scenario = || {
            let schedule = FaultSchedule::named("total-partition")
                .window(600, 1200, FaultKind::Partition { provider: "aws".to_owned() })
                .window(600, 1200, FaultKind::Partition { provider: "campus".to_owned() });
            ChaosScenario::new(schedule, 11).sessions(8).duration(SimDuration::from_secs(3600)).slo(
                SloSpec::availability(
                    "broker-availability",
                    0.9,
                    "broker_submit_total",
                    &[("outcome", "ok")],
                    "broker_submit_total",
                )
                .window(600, 300, 2.0, AlertSeverity::Page),
            )
        };
        let report = scenario().run();
        assert!(!report.alerts.is_empty(), "a total partition must page");
        let first = &report.alerts[0];
        assert!(first.at_ms >= 600_000, "no alert before the fault starts");
        assert!(
            first.at_ms <= 1_800_000,
            "detection must land inside the window, got {}ms",
            first.at_ms
        );
        // Every fired fault is stamped with the trace id of its
        // `chaos.fault` span, so the alert joins back to evidence.
        assert!(report.chaos_faults_fired > 0);
        assert!(report.canonical_log().contains("\"trace\": \""));
        // Judged runs replay byte-identically, alerts included.
        assert_eq!(report.canonical_log(), scenario().run().canonical_log());
    }

    #[test]
    fn slos_read_only_never_perturb_the_simulation() {
        let plain = short_storm().run();
        let mut judged_scenario = short_storm();
        for slo in ChaosScenario::default_slos() {
            judged_scenario = judged_scenario.slo(slo);
        }
        let judged = judged_scenario.run();
        assert_eq!(plain.submits, judged.submits);
        assert_eq!(plain.detections, judged.detections);
        assert_eq!(plain.chaos_faults_fired, judged.chaos_faults_fired);
        assert_eq!(plain.total_cost, judged.total_cost);
    }

    #[test]
    fn tsdb_attachment_is_read_only_and_rolls_up_hot_counters() {
        let plain = short_storm().run();
        let stored = short_storm().tsdb(TsdbConfig::default()).run();
        assert_eq!(plain.canonical_log(), stored.canonical_log(), "tsdb must not perturb");
        let snapshot = stored.tsdb_snapshot.expect("scenario attached a store");
        assert!(plain.tsdb_snapshot.is_none());
        let series = snapshot["series"].as_object().expect("series map");
        assert!(
            series.keys().any(|k| k.starts_with("broker_submit_total")),
            "hot broker counters must gain rollup families: {:?}",
            series.keys().take(8).collect::<Vec<_>>()
        );
        // One hour of 15s ticks seals 60 minute windows; the family total
        // across minute rollups must equal the final cumulative counter.
        let store = short_storm().tsdb(TsdbConfig::default()).run();
        let snap = store.tsdb_snapshot.expect("snapshot");
        let total: f64 = snap["series"]
            .as_object()
            .into_iter()
            .flatten()
            .filter(|(k, _)| k.starts_with("broker_submit_total"))
            .flat_map(|(_, v)| v["minute"].as_array().cloned().unwrap_or_default())
            .filter_map(|p| p["sum"].as_f64())
            .sum();
        let cumulative = store.metrics_snapshot["counters"]
            .as_object()
            .into_iter()
            .flatten()
            .filter(|(k, _)| k.starts_with("broker_submit_total"))
            .filter_map(|(_, v)| v.as_f64())
            .sum::<f64>();
        assert_eq!(total, cumulative, "rollup sums must conserve the counter total");
    }

    #[test]
    fn boot_failure_spell_forces_detections() {
        // A run where every campus boot during the spell is doomed: the
        // broker must detect the corpses and keep serving.
        let schedule = FaultSchedule::named("doomed-boots").window(
            0,
            1200,
            FaultKind::BootFailure { provider: "campus".to_owned(), probability: 1.0 },
        );
        let report = ChaosScenario::new(schedule, 9)
            .sessions(6)
            .duration(SimDuration::from_secs(2400))
            .run();
        assert!(report.detections >= 1, "doomed boots must be detected: {report:?}");
        assert_eq!(report.sessions_unserved, 0);
        for &lat in &report.detection_latencies_secs {
            assert!(lat <= 120.0, "detection must be prompt, saw {lat}s");
        }
    }
}
