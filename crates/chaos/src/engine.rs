//! The seeded fault-injection engine.

use std::sync::Arc;

use parking_lot::Mutex;

use evop_cloud::{ApiFault, CloudOp, FailureMode, FaultInjector};
use evop_obs::Tracer;
use evop_sim::{SimDuration, SimRng, SimTime};

use crate::schedule::{FaultKind, FaultSchedule};

/// How long an API-error-burst refusal tells the caller to wait.
const BURST_RETRY_AFTER: SimDuration = SimDuration::from_secs(30);

/// One fault the engine actually fired (as opposed to a window merely
/// being open). The canonical chaos log is the ordered list of these.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct ChaosEvent {
    /// When the fault fired, in virtual milliseconds.
    pub at_ms: u64,
    /// The fault label (matches [`FaultKind::label`]).
    pub kind: String,
    /// The provider or container hit.
    pub target: String,
    /// What exactly happened (operation refused, slowdown applied, …).
    pub detail: String,
    /// The `x-trace-id` of the `chaos.fault` span stamped into the
    /// flight recorder, when a tracer is attached — how a fired alert
    /// joins back to the fault that caused it.
    pub trace: Option<String>,
}

#[derive(Debug)]
struct Inner {
    schedule: FaultSchedule,
    seed: u64,
    /// Independent per-purpose streams, so an extra API-fault draw never
    /// shifts which boot straggles.
    api_rng: SimRng,
    boot_rng: SimRng,
    straggle_rng: SimRng,
    blob_rng: SimRng,
    events: Vec<ChaosEvent>,
    tracer: Option<Tracer>,
}

/// A seeded, schedule-driven [`FaultInjector`].
///
/// The engine is a cheap-clone shared handle (like the observability
/// plane's `Tracer`): one clone goes into the simulator as the injector,
/// while the original stays with the harness to read the fault log
/// afterwards. Everything it does is a pure function of
/// `(schedule, seed, consultation order)`, and the consultation order is
/// fixed by the deterministic simulation — so a chaos run replays
/// byte-identically.
///
/// # Examples
///
/// ```
/// use evop_chaos::{ChaosEngine, FaultSchedule};
///
/// let engine = ChaosEngine::new(FaultSchedule::provider_storm(), 42);
/// let again = ChaosEngine::new(FaultSchedule::provider_storm(), 42);
/// assert_eq!(engine.canonical_json(), again.canonical_json());
/// ```
#[derive(Debug, Clone)]
pub struct ChaosEngine {
    inner: Arc<Mutex<Inner>>,
}

impl ChaosEngine {
    /// Creates an engine for one `(schedule, seed)` pair.
    pub fn new(schedule: FaultSchedule, seed: u64) -> ChaosEngine {
        let root = SimRng::new(seed).fork("chaos");
        ChaosEngine {
            inner: Arc::new(Mutex::new(Inner {
                schedule,
                seed,
                api_rng: root.fork("api"),
                boot_rng: root.fork("boot"),
                straggle_rng: root.fork("straggle"),
                blob_rng: root.fork("blob"),
                events: Vec::new(),
                tracer: None,
            })),
        }
    }

    /// Attaches a tracer: every fault the engine fires from now on is also
    /// stamped into the flight recorder as an instant `chaos.fault` span,
    /// and the event log carries the span's `x-trace-id`.
    pub fn set_tracer(&self, tracer: Tracer) {
        self.inner.lock().tracer = Some(tracer);
    }

    /// The seed the engine was built with.
    pub fn seed(&self) -> u64 {
        self.inner.lock().seed
    }

    /// The schedule the engine follows.
    pub fn schedule(&self) -> FaultSchedule {
        self.inner.lock().schedule.clone()
    }

    /// Every fault fired so far, oldest first.
    pub fn events(&self) -> Vec<ChaosEvent> {
        self.inner.lock().events.clone()
    }

    /// The fired-fault log as canonical JSON (one stable-ordered array).
    pub fn canonical_json(&self) -> String {
        let inner = self.inner.lock();
        serde_json::to_string_pretty(&inner.events).unwrap_or_else(|_| String::from("[]"))
    }

    /// Whether `container` is inside a blob-outage window at `now`;
    /// returns the time until the outage lifts.
    pub fn blob_outage(&self, now: SimTime, container: &str) -> Option<SimDuration> {
        let mut inner = self.inner.lock();
        let remaining = inner.schedule.active_at(now).find_map(|w| match &w.kind {
            FaultKind::BlobOutage { container: c } if c == container => {
                Some(SimDuration::from_millis(w.remaining_millis(now)))
            }
            _ => None,
        })?;
        inner.record(now, "blob-outage", container, "request refused");
        Some(remaining)
    }

    /// Whether a read from `container` at `now` returns a corrupt object.
    pub fn blob_corrupts(&self, now: SimTime, container: &str) -> bool {
        let mut inner = self.inner.lock();
        let probability = inner.schedule.active_at(now).find_map(|w| match &w.kind {
            FaultKind::BlobCorruption { container: c, probability } if c == container => {
                Some(*probability)
            }
            _ => None,
        });
        let Some(probability) = probability else { return false };
        if inner.blob_rng.chance(probability) {
            inner.record(now, "blob-corruption", container, "read returned corrupt object");
            true
        } else {
            false
        }
    }
}

impl Inner {
    fn record(&mut self, now: SimTime, kind: &str, target: &str, detail: impl Into<String>) {
        let detail = detail.into();
        let trace = self.tracer.as_ref().map(|tracer| {
            tracer.set_now(now);
            let span = tracer.start_trace("chaos.fault");
            span.attr("kind", kind);
            span.attr("target", target);
            span.attr("detail", detail.clone());
            let id = span.trace_id().to_string();
            span.finish();
            id
        });
        self.events.push(ChaosEvent {
            at_ms: now.as_millis(),
            kind: kind.to_owned(),
            target: target.to_owned(),
            detail,
            trace,
        });
    }
}

impl FaultInjector for ChaosEngine {
    fn api_fault(&mut self, now: SimTime, provider: &str, op: CloudOp) -> Option<ApiFault> {
        let mut inner = self.inner.lock();
        // Partitions dominate bursts: check them first, and report the
        // remaining partition length as the retry hint.
        let mut burst_rate: Option<f64> = None;
        let mut partition_remaining: Option<u64> = None;
        for w in inner.schedule.active_at(now) {
            match &w.kind {
                FaultKind::Partition { provider: p } if p == provider => {
                    let r = w.remaining_millis(now);
                    partition_remaining =
                        Some(partition_remaining.map_or(r, |prev: u64| prev.max(r)));
                }
                FaultKind::ApiErrorBurst { provider: p, error_rate } if p == provider => {
                    burst_rate = Some(burst_rate.map_or(*error_rate, |prev| prev.max(*error_rate)));
                }
                _ => {}
            }
        }
        if let Some(remaining) = partition_remaining {
            inner.record(now, "partition", provider, format!("{op} refused"));
            return Some(ApiFault {
                reason: "network-partition".to_owned(),
                retry_after: SimDuration::from_millis(remaining),
            });
        }
        let rate = burst_rate?;
        if inner.api_rng.chance(rate) {
            inner.record(now, "api-error-burst", provider, format!("{op} refused"));
            Some(ApiFault { reason: "api-error-burst".to_owned(), retry_after: BURST_RETRY_AFTER })
        } else {
            None
        }
    }

    fn boot_factor(&mut self, now: SimTime, provider: &str) -> f64 {
        let mut inner = self.inner.lock();
        let slowdown = inner.schedule.active_at(now).find_map(|w| match &w.kind {
            FaultKind::Straggler { provider: p, slowdown, probability } if p == provider => {
                Some((*slowdown, *probability))
            }
            _ => None,
        });
        let Some((slowdown, probability)) = slowdown else { return 1.0 };
        if inner.straggle_rng.chance(probability) {
            inner.record(now, "straggler", provider, format!("boot slowed {slowdown}x"));
            slowdown.max(1.0)
        } else {
            1.0
        }
    }

    fn boot_failure(&mut self, now: SimTime, provider: &str) -> Option<FailureMode> {
        let mut inner = self.inner.lock();
        let probability = inner.schedule.active_at(now).find_map(|w| match &w.kind {
            FaultKind::BootFailure { provider: p, probability } if p == provider => {
                Some(*probability)
            }
            _ => None,
        })?;
        if inner.boot_rng.chance(probability) {
            inner.record(now, "boot-failure", provider, "instance doomed at boot");
            Some(FailureMode::Crash)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn burst_schedule() -> FaultSchedule {
        FaultSchedule::named("burst").window(
            0,
            60,
            FaultKind::ApiErrorBurst { provider: "aws".to_owned(), error_rate: 1.0 },
        )
    }

    #[test]
    fn bursts_fire_only_inside_the_window_and_for_the_target() {
        let mut engine = ChaosEngine::new(burst_schedule(), 1);
        let fault = engine.api_fault(SimTime::from_secs(10), "aws", CloudOp::Launch).unwrap();
        assert_eq!(fault.reason, "api-error-burst");
        assert_eq!(fault.retry_after, BURST_RETRY_AFTER);
        assert!(engine.api_fault(SimTime::from_secs(10), "campus", CloudOp::Launch).is_none());
        assert!(engine.api_fault(SimTime::from_secs(90), "aws", CloudOp::Launch).is_none());
        assert_eq!(engine.events().len(), 1);
    }

    #[test]
    fn partitions_refuse_everything_with_window_sized_hint() {
        let schedule = FaultSchedule::named("cut").window(
            0,
            100,
            FaultKind::Partition { provider: "aws".to_owned() },
        );
        let mut engine = ChaosEngine::new(schedule, 1);
        let fault = engine.api_fault(SimTime::from_secs(40), "aws", CloudOp::SubmitJob).unwrap();
        assert_eq!(fault.reason, "network-partition");
        assert_eq!(fault.retry_after, SimDuration::from_secs(60));
    }

    #[test]
    fn boot_hooks_follow_their_windows() {
        let schedule = FaultSchedule::named("boots")
            .window(
                0,
                60,
                FaultKind::BootFailure { provider: "campus".to_owned(), probability: 1.0 },
            )
            .window(
                0,
                60,
                FaultKind::Straggler {
                    provider: "aws".to_owned(),
                    slowdown: 3.0,
                    probability: 1.0,
                },
            );
        let mut engine = ChaosEngine::new(schedule, 2);
        assert_eq!(engine.boot_failure(SimTime::from_secs(1), "campus"), Some(FailureMode::Crash));
        assert_eq!(engine.boot_failure(SimTime::from_secs(1), "aws"), None);
        assert!((engine.boot_factor(SimTime::from_secs(1), "aws") - 3.0).abs() < f64::EPSILON);
        assert!((engine.boot_factor(SimTime::from_secs(1), "campus") - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn blob_hooks_follow_their_windows() {
        let schedule = FaultSchedule::named("blobs")
            .window(0, 30, FaultKind::BlobOutage { container: "lib".to_owned() })
            .window(
                40,
                30,
                FaultKind::BlobCorruption { container: "lib".to_owned(), probability: 1.0 },
            );
        let engine = ChaosEngine::new(schedule, 3);
        assert_eq!(
            engine.blob_outage(SimTime::from_secs(10), "lib"),
            Some(SimDuration::from_secs(20))
        );
        assert_eq!(engine.blob_outage(SimTime::from_secs(10), "other"), None);
        assert_eq!(engine.blob_outage(SimTime::from_secs(35), "lib"), None);
        assert!(engine.blob_corrupts(SimTime::from_secs(50), "lib"));
        assert!(!engine.blob_corrupts(SimTime::from_secs(50), "other"));
    }

    #[test]
    fn equal_seeds_replay_identical_fault_logs() {
        let schedule = FaultSchedule::named("half").window(
            0,
            600,
            FaultKind::ApiErrorBurst { provider: "aws".to_owned(), error_rate: 0.5 },
        );
        let drive = |seed: u64| {
            let mut engine = ChaosEngine::new(schedule.clone(), seed);
            for s in 0..600 {
                let _ = engine.api_fault(SimTime::from_secs(s), "aws", CloudOp::Launch);
            }
            engine.canonical_json()
        };
        assert_eq!(drive(7), drive(7));
        assert_ne!(drive(7), drive(8), "different seeds fire different faults");
    }

    #[test]
    fn clones_share_one_log() {
        let mut engine = ChaosEngine::new(burst_schedule(), 4);
        let handle = engine.clone();
        let _ = engine.api_fault(SimTime::from_secs(1), "aws", CloudOp::Launch);
        assert_eq!(handle.events().len(), 1);
        assert_eq!(handle.seed(), 4);
        assert_eq!(handle.schedule().name(), "burst");
    }
}
