//! Chaos-wrapped blob storage.

use evop_sim::SimTime;
use evop_xcloud::{Blob, BlobStore, BlobStoreError};

use crate::engine::ChaosEngine;

/// A [`BlobStore`] fronted by the chaos engine: reads and writes are
/// refused during a blob-outage window and reads may come back corrupt
/// during a corruption window — exactly the failure surface the
/// [`RetryPolicy`](evop_xcloud::RetryPolicy) is built to absorb.
///
/// Operations take the caller's virtual `now` because storage has no
/// clock of its own; the schedule decides what is broken *when*.
///
/// # Examples
///
/// ```
/// use evop_chaos::{ChaosBlobStore, ChaosEngine, FaultKind, FaultSchedule};
/// use evop_sim::SimTime;
/// use evop_xcloud::{Blob, BlobStore, BlobStoreError};
///
/// let mut store = BlobStore::new();
/// store.create_container("model-library");
/// store.put("model-library", "eden.img", Blob::from("bytes")).unwrap();
///
/// let schedule = FaultSchedule::named("outage")
///     .window(0, 60, FaultKind::BlobOutage { container: "model-library".to_owned() });
/// let chaos = ChaosBlobStore::new(store, ChaosEngine::new(schedule, 1));
///
/// let during = chaos.get_at(SimTime::from_secs(10), "model-library", "eden.img");
/// assert!(matches!(during, Err(BlobStoreError::TransientlyUnavailable { .. })));
/// let after = chaos.get_at(SimTime::from_secs(70), "model-library", "eden.img");
/// assert!(after.is_ok());
/// ```
#[derive(Debug)]
pub struct ChaosBlobStore {
    store: BlobStore,
    engine: ChaosEngine,
}

impl ChaosBlobStore {
    /// Wraps a store with an engine.
    pub fn new(store: BlobStore, engine: ChaosEngine) -> ChaosBlobStore {
        ChaosBlobStore { store, engine }
    }

    /// The unwrapped store (faults bypassed) — for assertions and setup.
    pub fn inner(&self) -> &BlobStore {
        &self.store
    }

    /// Mutable access to the unwrapped store.
    pub fn inner_mut(&mut self) -> &mut BlobStore {
        &mut self.store
    }

    /// Fetches a blob at virtual time `now`.
    ///
    /// # Errors
    ///
    /// [`BlobStoreError::TransientlyUnavailable`] during an outage window
    /// (with the time-to-recovery as the retry hint),
    /// [`BlobStoreError::Corrupted`] when a corruption window fires, or
    /// the underlying store's own errors.
    pub fn get_at(
        &self,
        now: SimTime,
        container: &str,
        key: &str,
    ) -> Result<&Blob, BlobStoreError> {
        if let Some(retry_after) = self.engine.blob_outage(now, container) {
            return Err(BlobStoreError::TransientlyUnavailable {
                container: container.to_owned(),
                retry_after,
            });
        }
        let blob = self.store.get(container, key)?;
        if self.engine.blob_corrupts(now, container) {
            return Err(BlobStoreError::Corrupted {
                container: container.to_owned(),
                key: key.to_owned(),
            });
        }
        Ok(blob)
    }

    /// Stores a blob at virtual time `now`.
    ///
    /// # Errors
    ///
    /// [`BlobStoreError::TransientlyUnavailable`] during an outage window,
    /// or the underlying store's own errors.
    pub fn put_at(
        &mut self,
        now: SimTime,
        container: &str,
        key: impl Into<String>,
        blob: Blob,
    ) -> Result<Option<Blob>, BlobStoreError> {
        if let Some(retry_after) = self.engine.blob_outage(now, container) {
            return Err(BlobStoreError::TransientlyUnavailable {
                container: container.to_owned(),
                retry_after,
            });
        }
        self.store.put(container, key, blob)
    }
}

/// The cache plane's L2 seam, with faults injected: an outage or a
/// corruption window hits the cache exactly as it would hit any other
/// consumer, and the cache must (and does) degrade to a miss.
impl evop_cache::BlobBackend for ChaosBlobStore {
    fn ensure_container(&mut self, container: &str) {
        self.store.create_container(container);
    }

    fn put(
        &mut self,
        now: SimTime,
        container: &str,
        key: &str,
        blob: Blob,
    ) -> Result<(), BlobStoreError> {
        self.put_at(now, container, key, blob).map(|_| ())
    }

    fn get(&mut self, now: SimTime, container: &str, key: &str) -> Result<Blob, BlobStoreError> {
        self.get_at(now, container, key).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{FaultKind, FaultSchedule};
    use evop_sim::SimDuration;
    use evop_xcloud::{retry_with, RetryPolicy};

    fn store_with(container: &str, key: &str) -> BlobStore {
        let mut store = BlobStore::new();
        store.create_container(container);
        store.put(container, key, Blob::from("payload")).unwrap();
        store
    }

    #[test]
    fn outage_refuses_reads_and_writes_with_recovery_hint() {
        let schedule = FaultSchedule::named("outage").window(
            10,
            50,
            FaultKind::BlobOutage { container: "lib".to_owned() },
        );
        let mut chaos = ChaosBlobStore::new(store_with("lib", "k"), ChaosEngine::new(schedule, 1));

        assert!(chaos.get_at(SimTime::from_secs(5), "lib", "k").is_ok());
        match chaos.get_at(SimTime::from_secs(20), "lib", "k") {
            Err(BlobStoreError::TransientlyUnavailable { container, retry_after }) => {
                assert_eq!(container, "lib");
                assert_eq!(retry_after, SimDuration::from_secs(40));
            }
            other => panic!("expected outage, got {other:?}"),
        }
        assert!(matches!(
            chaos.put_at(SimTime::from_secs(20), "lib", "k2", Blob::from("x")),
            Err(BlobStoreError::TransientlyUnavailable { .. })
        ));
        assert!(chaos.get_at(SimTime::from_secs(60), "lib", "k").is_ok());
    }

    #[test]
    fn corruption_fires_per_schedule_probability() {
        let schedule = FaultSchedule::named("bitrot").window(
            0,
            60,
            FaultKind::BlobCorruption { container: "lib".to_owned(), probability: 1.0 },
        );
        let chaos = ChaosBlobStore::new(store_with("lib", "k"), ChaosEngine::new(schedule, 2));
        assert!(matches!(
            chaos.get_at(SimTime::from_secs(1), "lib", "k"),
            Err(BlobStoreError::Corrupted { .. })
        ));
        // Missing keys still report as missing, not corrupt.
        assert!(matches!(
            chaos.get_at(SimTime::from_secs(1), "lib", "ghost"),
            Err(BlobStoreError::NoSuchKey { .. })
        ));
    }

    #[test]
    fn retry_policy_rides_out_an_outage() {
        // A 40 s outage against a policy whose jittered waits pass the
        // window's end: the retried read eventually succeeds, in virtual
        // time, without any real sleeping.
        let schedule = FaultSchedule::named("outage").window(
            0,
            40,
            FaultKind::BlobOutage { container: "lib".to_owned() },
        );
        let chaos = ChaosBlobStore::new(store_with("lib", "k"), ChaosEngine::new(schedule, 3));
        let policy = RetryPolicy::default();
        let outcome = retry_with(&policy, 9, SimTime::ZERO, |at, _| {
            chaos.get_at(at, "lib", "k").map(|b| b.len())
        });
        assert_eq!(outcome.result, Ok(7));
        assert!(outcome.recovered(), "success must have required retries");
        assert!(outcome.waited >= SimDuration::from_secs(40));
    }
}
