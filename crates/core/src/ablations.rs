//! Ablation studies over the reproduction's design choices.
//!
//! DESIGN.md calls out several load-bearing parameters: the Load Balancer's
//! health-check cadence, the warm-pool size, the private-cloud capacity,
//! the topographic-index discretisation and the service replica count.
//! Each ablation sweeps one of them and reports how the headline metric
//! moves; `cargo run -p evop-bench --release --bin ablations` prints the
//! tables, and `tests/ablations.rs` asserts the trends.

use evop_broker::{Broker, BrokerConfig, BrokerEvent, SessionId};
use evop_cloud::FailureMode;
use evop_data::{Catchment, Timestamp};
use evop_models::objectives::nse;
use evop_models::{Forcing, Topmodel, TopmodelParams};
use evop_sim::stats::Percentiles;
use evop_sim::SimDuration;

use crate::experiments::{e2_rest_vs_soap, invariant, ExperimentError};

// ====================================================================
// A1 — health-check cadence vs detection delay and false positives
// ====================================================================

/// One row of the health-check ablation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthCheckRow {
    /// Sampling interval.
    pub check_interval: SimDuration,
    /// Consecutive bad samples required.
    pub consecutive: u32,
    /// Injection → detection delay for a hang.
    pub detection_delay: Option<SimDuration>,
    /// Failures declared on the *healthy but busy* control instance
    /// (false positives; must be zero under the final signature rules).
    pub false_positives: usize,
}

/// Sweeps the health-check cadence. For each `(interval, consecutive)`
/// combination: one instance is saturated with legitimate work (the
/// false-positive control), a second is hung (the detection probe).
///
/// # Errors
///
/// Returns an [`ExperimentError`] when the broker refuses a connect or
/// the probe instance the sweep relies on cannot be established.
pub fn ablate_health_check(
    intervals: &[SimDuration],
    consecutives: &[u32],
    seed: u64,
) -> Result<Vec<HealthCheckRow>, ExperimentError> {
    let mut rows = Vec::new();
    for &check_interval in intervals {
        for &consecutive in consecutives {
            let config = BrokerConfig {
                check_interval,
                consecutive_bad_samples: consecutive,
                private_capacity_vcpus: 8,
                ..BrokerConfig::default()
            };
            let mut broker = Broker::new(config, seed);

            // Control: a busy, healthy instance (all vCPUs saturated).
            let busy = broker.connect("busy-user", "topmodel")?;
            broker.advance(SimDuration::from_secs(200));
            for _ in 0..16 {
                let _ = broker.run_model(busy, SimDuration::from_secs(3600));
            }

            // Probe: a second instance that hangs. Force one into existence
            // by filling the first instance's session slots, then pick any
            // serving instance other than the busy control (the balancer may
            // shuffle individual sessions in between).
            for i in 0..broker.config().slots_per_instance() {
                broker.connect(&format!("probe-{i}"), "topmodel")?;
            }
            broker.advance(SimDuration::from_secs(200));
            let busy_instance = broker
                .session(busy)
                .and_then(|s| s.instance())
                .ok_or_else(|| invariant("control session bound"))?;
            let probe_instance = broker
                .cloud()
                .instances()
                .find(|i| i.is_running() && i.id() != busy_instance)
                .map(|i| i.id())
                .ok_or_else(|| invariant("a second instance must exist"))?;

            let injected_at = broker.now();
            broker
                .inject_failure(probe_instance, FailureMode::Hang)
                .map_err(|_| invariant("probe instance exists"))?;
            broker.advance(check_interval.saturating_mul(u64::from(consecutive) * 4));

            let detection_delay = broker.events().iter().find_map(|e| match e {
                BrokerEvent::FailureDetected { at, instance, .. }
                    if *instance == probe_instance =>
                {
                    Some(at.saturating_since(injected_at))
                }
                _ => None,
            });
            let false_positives = broker
                .events()
                .iter()
                .filter(|e| {
                    matches!(e, BrokerEvent::FailureDetected { instance, .. } if *instance == busy_instance)
                })
                .count();
            rows.push(HealthCheckRow {
                check_interval,
                consecutive,
                detection_delay,
                false_positives,
            });
        }
    }
    Ok(rows)
}

// ====================================================================
// A2 — warm-pool size vs time-to-first-result and cost
// ====================================================================

/// One row of the warm-pool ablation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WarmPoolRow {
    /// Warm instances held.
    pub warm_pool: u32,
    /// Median connect → first model result.
    pub median_first_result: SimDuration,
    /// 95th percentile of the same.
    pub p95_first_result: SimDuration,
    /// Total run cost.
    pub cost: f64,
}

/// Sweeps the warm-pool size against a fixed flash crowd.
///
/// # Errors
///
/// Returns an [`ExperimentError`] when the broker refuses a connect.
pub fn ablate_warm_pool(
    crowd: usize,
    sizes: &[u32],
    seed: u64,
) -> Result<Vec<WarmPoolRow>, ExperimentError> {
    sizes
        .iter()
        .map(|&pool| {
            let config = BrokerConfig {
                private_capacity_vcpus: 16,
                warm_pool_size: pool,
                ..BrokerConfig::default()
            };
            let mut broker = Broker::new(config, seed);
            broker.advance(SimDuration::from_secs(300));
            let arrival = broker.now();

            let mut jobs = Vec::new();
            let mut pending: Vec<SessionId> = Vec::new();
            for i in 0..crowd {
                let s = broker.connect(&format!("flash-{i}"), "topmodel")?;
                match broker.run_model(s, SimDuration::from_secs(60)) {
                    Ok(job) => jobs.push((s, job)),
                    Err(_) => pending.push(s),
                }
            }
            for _ in 0..240 {
                broker.advance(SimDuration::from_secs(15));
                pending.retain(|&s| match broker.run_model(s, SimDuration::from_secs(60)) {
                    Ok(job) => {
                        jobs.push((s, job));
                        false
                    }
                    Err(_) => true,
                });
            }

            let mut first_results = Percentiles::new();
            for &(s, job) in &jobs {
                let Some(instance) = broker.session(s).and_then(|x| x.instance()) else { continue };
                if let Some(latency) = broker
                    .cloud()
                    .instance(instance)
                    .and_then(|i| i.job(job))
                    .and_then(|j| j.latency())
                {
                    let submitted = broker
                        .cloud()
                        .instance(instance)
                        .and_then(|i| i.job(job))
                        .map(|j| j.submitted_at())
                        .unwrap_or(arrival);
                    let finished = submitted + latency;
                    first_results.record(finished.saturating_since(arrival).as_secs_f64());
                }
            }
            Ok(WarmPoolRow {
                warm_pool: pool,
                median_first_result: SimDuration::from_secs_f64(
                    first_results.median().unwrap_or(f64::INFINITY.min(1e9)),
                ),
                p95_first_result: SimDuration::from_secs_f64(
                    first_results.p95().unwrap_or(f64::INFINITY.min(1e9)),
                ),
                cost: broker.total_cost(),
            })
        })
        .collect()
}

// ====================================================================
// A3 — private capacity vs burst depth and cost
// ====================================================================

/// One row of the private-capacity ablation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapacityRow {
    /// Private cloud size in vCPUs.
    pub private_vcpus: u32,
    /// Peak concurrent public instances during the run.
    pub peak_public_instances: usize,
    /// Total hybrid cost.
    pub cost: f64,
}

/// Sweeps the private-cloud size under a fixed 80-user ramp: smaller
/// private clouds burst deeper and pay more.
///
/// # Errors
///
/// Returns an [`ExperimentError`] when the broker refuses a connect.
pub fn ablate_private_capacity(
    capacities: &[u32],
    seed: u64,
) -> Result<Vec<CapacityRow>, ExperimentError> {
    capacities
        .iter()
        .map(|&private_vcpus| {
            let config = BrokerConfig {
                private_capacity_vcpus: private_vcpus,
                scale_down_surplus_slots: 12,
                ..BrokerConfig::default()
            };
            let mut broker = Broker::new(config, seed);
            let mut sessions = Vec::new();
            let mut peak_public = 0usize;
            for minute in 0..60u64 {
                let target = (80 * (minute as usize + 1)) / 60;
                while sessions.len() < target {
                    sessions.push(broker.connect(&format!("u{}", sessions.len()), "topmodel")?);
                }
                broker.advance(SimDuration::from_secs(60));
                peak_public = peak_public.max(broker.provider_mix().public_instances);
            }
            Ok(CapacityRow {
                private_vcpus,
                peak_public_instances: peak_public,
                cost: broker.total_cost(),
            })
        })
        .collect()
}

// ====================================================================
// A4 — topographic-index discretisation
// ====================================================================

/// One row of the TI-discretisation ablation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TiBinsRow {
    /// Number of TI classes.
    pub bins: usize,
    /// Peak discharge under default parameters, m³/s.
    pub peak_m3s: f64,
    /// NSE against the 64-class reference run.
    pub nse_vs_reference: f64,
}

/// Sweeps the number of topographic-index classes: the coarse-grained
/// model must converge to the fine-grained reference.
///
/// # Errors
///
/// Returns an [`ExperimentError`] when the reference Topmodel run rejects
/// its parameters.
pub fn ablate_ti_bins(bins: &[usize], seed: u64) -> Result<Vec<TiBinsRow>, ExperimentError> {
    use rand::SeedableRng;
    let catchment = Catchment::morland();
    let generator = evop_data::synthetic::WeatherGenerator::for_catchment(&catchment, seed);
    let start = Timestamp::from_ymd(2012, 1, 1);
    let n = 30 * 24;
    let rain = generator.rainfall(start, 3600, n);
    let temp = generator.temperature(start, 3600, n);
    let pet = evop_models::pet::hamon_series(&temp, catchment.outlet().lat());
    let forcing = Forcing::new(rain, pet);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let dem = catchment.generate_dem(&mut rng);

    let run = |classes: usize| {
        Topmodel::new(dem.ti_distribution(classes), catchment.area_km2())
            .run(&TopmodelParams::default(), &forcing)
            .map(|out| out.discharge_m3s)
            .map_err(ExperimentError::Model)
    };
    let reference = run(64)?;

    bins.iter()
        .map(|&classes| {
            let q = run(classes)?;
            Ok(TiBinsRow {
                bins: classes,
                peak_m3s: q.peak().map(|(_, v)| v).unwrap_or(f64::NAN),
                nse_vs_reference: nse(&q, &reference),
            })
        })
        .collect()
}

// ====================================================================
// A5 — replica count vs stateful session loss
// ====================================================================

/// One row of the replica-count ablation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplicaRow {
    /// Service replicas.
    pub replicas: usize,
    /// Fraction of SOAP sessions lost to one replica kill.
    pub soap_loss_rate: f64,
    /// Fraction of REST workflows lost (always zero).
    pub rest_loss_rate: f64,
}

/// Sweeps the replica count in the E2 failover workload: more replicas
/// dilute — but never remove — the stateful loss; statelessness is flat at
/// zero.
///
/// # Errors
///
/// Returns an [`ExperimentError`] when the underlying E2 run fails.
pub fn ablate_replicas(
    replica_counts: &[usize],
    workflows: usize,
    seed: u64,
) -> Result<Vec<ReplicaRow>, ExperimentError> {
    replica_counts
        .iter()
        .map(|&replicas| {
            let r = e2_rest_vs_soap(workflows, replicas, seed)?;
            Ok(ReplicaRow {
                replicas,
                soap_loss_rate: r.soap_lost_sessions as f64 / r.workflows as f64,
                rest_loss_rate: (r.workflows - r.rest_completed) as f64 / r.workflows as f64,
            })
        })
        .collect()
}

/// Convenience: the detection-delay model the A1 sweep should follow
/// (`interval × consecutive`, rounded up to the next check tick).
pub fn expected_detection_delay(interval: SimDuration, consecutive: u32) -> SimDuration {
    SimDuration::from_millis(interval.as_millis() * u64::from(consecutive))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a1_detection_scales_with_cadence() {
        let rows = ablate_health_check(
            &[SimDuration::from_secs(10), SimDuration::from_secs(30)],
            &[2, 4],
            7,
        )
        .expect("a1 runs");
        assert_eq!(rows.len(), 4);
        for row in &rows {
            let delay = row.detection_delay.expect("hang must be detected");
            let expected = expected_detection_delay(row.check_interval, row.consecutive);
            assert!(
                delay >= expected && delay <= expected + row.check_interval * 2,
                "delay {delay} vs expected {expected}"
            );
            assert_eq!(row.false_positives, 0, "busy-but-healthy must never be axed");
        }
        // Fastest cadence detects fastest.
        let fastest = rows.iter().min_by_key(|r| r.detection_delay).unwrap();
        assert_eq!(fastest.check_interval, SimDuration::from_secs(10));
        assert_eq!(fastest.consecutive, 2);
    }

    #[test]
    fn a4_coarse_ti_converges_to_reference() {
        let rows = ablate_ti_bins(&[2, 8, 32], 42).expect("a4 runs");
        assert!(rows[0].nse_vs_reference < rows[2].nse_vs_reference + 1e-9);
        assert!(rows[2].nse_vs_reference > 0.99, "32 classes ≈ 64 classes");
        assert!(rows.iter().all(|r| r.peak_m3s.is_finite()));
    }

    #[test]
    fn a5_loss_dilutes_with_replicas_but_never_reaches_zero() {
        let rows = ablate_replicas(&[2, 4, 8], 400, 11).expect("a5 runs");
        assert!(rows[0].soap_loss_rate > rows[2].soap_loss_rate);
        assert!(rows[2].soap_loss_rate > 0.0);
        assert!(rows.iter().all(|r| r.rest_loss_rate == 0.0));
    }
}
