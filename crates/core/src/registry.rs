//! The XaaS asset registry: everything is a uniformly addressable resource.
//!
//! "A pillar of cloud architectures is the concept of 'everything as a
//! service' (XaaS) … where all resources are identifiable via a uniform
//! view" (paper §III-B). The registry assigns every asset — dataset,
//! sensor, model, VM image, service endpoint, workflow — an `evop://` URI
//! and uniform metadata, so management and discovery code never needs to
//! know what kind of thing it is handling.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// What kind of resource an asset is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AssetKind {
    /// A dataset (soft asset).
    Dataset,
    /// An in-situ sensor feed (soft asset).
    Sensor,
    /// A predictive model (soft asset).
    Model,
    /// A machine image in the Model Library.
    Image,
    /// A running service endpoint (WPS, SOS, …).
    Service,
    /// A composed workflow.
    Workflow,
    /// A cloud instance (hard asset).
    Instance,
}

impl AssetKind {
    /// The URI scheme segment for the kind, e.g. `"dataset"`.
    pub fn segment(self) -> &'static str {
        match self {
            AssetKind::Dataset => "dataset",
            AssetKind::Sensor => "sensor",
            AssetKind::Model => "model",
            AssetKind::Image => "image",
            AssetKind::Service => "service",
            AssetKind::Workflow => "workflow",
            AssetKind::Instance => "instance",
        }
    }
}

impl fmt::Display for AssetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.segment())
    }
}

/// A registered asset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AssetRecord {
    kind: AssetKind,
    name: String,
    title: String,
    tags: Vec<String>,
}

impl AssetRecord {
    /// The asset kind.
    pub fn kind(&self) -> AssetKind {
        self.kind
    }

    /// The asset's unique name within its kind.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Display title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Free-form tags.
    pub fn tags(&self) -> &[String] {
        &self.tags
    }

    /// The asset's uniform address, e.g. `evop://sensor/morland-rain-1`.
    pub fn uri(&self) -> String {
        format!("evop://{}/{}", self.kind.segment(), self.name)
    }
}

/// Errors from the registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// An asset of this kind and name already exists.
    Duplicate {
        /// The conflicting kind.
        kind: AssetKind,
        /// The conflicting name.
        name: String,
    },
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::Duplicate { kind, name } => {
                write!(f, "asset already registered: evop://{kind}/{name}")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

/// The registry itself.
///
/// # Examples
///
/// ```
/// use evop_core::{AssetKind, AssetRegistry};
///
/// let mut registry = AssetRegistry::new();
/// registry
///     .register(AssetKind::Model, "topmodel", "TOPMODEL", ["hydrology"])
///     .unwrap();
/// let asset = registry.resolve("evop://model/topmodel").unwrap();
/// assert_eq!(asset.title(), "TOPMODEL");
/// ```
#[derive(Debug, Clone, Default)]
pub struct AssetRegistry {
    assets: BTreeMap<(AssetKind, String), AssetRecord>,
}

impl AssetRegistry {
    /// Creates an empty registry.
    pub fn new() -> AssetRegistry {
        AssetRegistry::default()
    }

    /// Registers an asset.
    ///
    /// # Errors
    ///
    /// Returns [`RegistryError::Duplicate`] when (kind, name) is taken.
    pub fn register<I, S>(
        &mut self,
        kind: AssetKind,
        name: impl Into<String>,
        title: impl Into<String>,
        tags: I,
    ) -> Result<String, RegistryError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let name = name.into();
        let key = (kind, name.clone());
        if self.assets.contains_key(&key) {
            return Err(RegistryError::Duplicate { kind, name });
        }
        let record = AssetRecord {
            kind,
            name,
            title: title.into(),
            tags: tags.into_iter().map(Into::into).collect(),
        };
        let uri = record.uri();
        self.assets.insert(key, record);
        Ok(uri)
    }

    /// Resolves an `evop://kind/name` URI.
    pub fn resolve(&self, uri: &str) -> Option<&AssetRecord> {
        let rest = uri.strip_prefix("evop://")?;
        let (kind_str, name) = rest.split_once('/')?;
        let kind = [
            AssetKind::Dataset,
            AssetKind::Sensor,
            AssetKind::Model,
            AssetKind::Image,
            AssetKind::Service,
            AssetKind::Workflow,
            AssetKind::Instance,
        ]
        .into_iter()
        .find(|k| k.segment() == kind_str)?;
        self.assets.get(&(kind, name.to_owned()))
    }

    /// All assets of a kind, sorted by name.
    pub fn of_kind(&self, kind: AssetKind) -> Vec<&AssetRecord> {
        self.assets.iter().filter(|((k, _), _)| *k == kind).map(|(_, record)| record).collect()
    }

    /// Assets whose title or tags contain `needle` (case-insensitive).
    pub fn search(&self, needle: &str) -> Vec<&AssetRecord> {
        let needle = needle.to_lowercase();
        self.assets
            .values()
            .filter(|a| {
                a.title.to_lowercase().contains(&needle)
                    || a.tags.iter().any(|t| t.to_lowercase().contains(&needle))
            })
            .collect()
    }

    /// Total registered assets.
    pub fn len(&self) -> usize {
        self.assets.len()
    }

    /// `true` when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.assets.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_tags() -> [&'static str; 0] {
        []
    }

    #[test]
    fn uri_round_trip() {
        let mut r = AssetRegistry::new();
        let uri = r.register(AssetKind::Sensor, "morland-rain-1", "Rain gauge", no_tags()).unwrap();
        assert_eq!(uri, "evop://sensor/morland-rain-1");
        assert_eq!(r.resolve(&uri).unwrap().name(), "morland-rain-1");
    }

    #[test]
    fn duplicates_rejected_per_kind() {
        let mut r = AssetRegistry::new();
        r.register(AssetKind::Model, "topmodel", "TOPMODEL", no_tags()).unwrap();
        assert!(matches!(
            r.register(AssetKind::Model, "topmodel", "again", no_tags()),
            Err(RegistryError::Duplicate { .. })
        ));
        // The same name under a different kind is fine.
        assert!(r.register(AssetKind::Image, "topmodel", "image", no_tags()).is_ok());
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn resolve_rejects_malformed_uris() {
        let r = AssetRegistry::new();
        assert!(r.resolve("http://model/x").is_none());
        assert!(r.resolve("evop://nonsense/x").is_none());
        assert!(r.resolve("evop://model").is_none());
    }

    #[test]
    fn kind_and_text_queries() {
        let mut r = AssetRegistry::new();
        r.register(AssetKind::Dataset, "rain", "Morland rainfall", ["hydrology"]).unwrap();
        r.register(AssetKind::Dataset, "stage", "Morland stage", ["hydrology", "flooding"])
            .unwrap();
        r.register(AssetKind::Model, "fuse", "FUSE ensemble", ["hydrology"]).unwrap();
        assert_eq!(r.of_kind(AssetKind::Dataset).len(), 2);
        assert_eq!(r.search("flooding").len(), 1);
        assert_eq!(r.search("HYDROLOGY").len(), 3);
        assert!(r.search("volcano").is_empty());
    }
}
