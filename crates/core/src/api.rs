//! The portal's REST API: the observatory over the stateless router.
//!
//! "The services are universally accessible by all target groups using a
//! modern web browser" (paper §IV-C). This module exposes the assembled
//! observatory over the in-process HTTP substrate as a JSON API — the
//! surface the Javascript widgets call. Because the [`Router`] is
//! stateless and the observatory is shared behind an [`Arc`], any number
//! of replicas serve identically (the property experiments E2/E4 rely on).
//!
//! # Routes
//!
//! | method | path | description |
//! |---|---|---|
//! | GET | `/catchments` | catchment summaries |
//! | GET | `/catchments/{id}` | one catchment |
//! | GET | `/catchments/{id}/sensors` | its sensor network |
//! | GET | `/sensors/{id}/observations?from=&to=&limit=` | SOS window query |
//! | GET | `/sensors/{id}/latest` | live value |
//! | GET | `/map/markers?south=&west=&north=&east=` | viewport markers |
//! | GET | `/datasets?text=` | catalogue search |
//! | GET | `/catchments/{id}/processes` | WPS offerings |
//! | POST | `/catchments/{id}/processes/{process}/execute` | run a model synchronously |
//! | POST | `/catchments/{id}/processes/{process}/execute-async` | enqueue a run, returns a job id |
//! | GET | `/catchments/{id}/jobs/{job}` | poll an async execution |
//! | GET | `/registry/{kind}` | XaaS asset listing |

use std::sync::Arc;

use evop_data::catalog::Query;
use evop_data::catchment::CatchmentId;
use evop_data::geo::{BoundingBox, LatLon};
use evop_data::{SensorId, Timestamp};
use evop_services::rest::{PathParams, Router};
use evop_services::sos::GetObservation;
use evop_services::wps::WpsError;
#[cfg(test)]
use evop_services::Request;
use evop_services::Response;
use serde_json::{json, Value};

use crate::observatory::Evop;
use crate::registry::AssetKind;

/// Builds the portal's JSON API over a shared observatory.
///
/// The returned router is cheaply cloneable; every clone is a full
/// replica.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use evop_core::{api, Evop};
/// use evop_services::Request;
///
/// let evop = Arc::new(Evop::builder().seed(1).days(5).build());
/// let router = api::portal_api(evop);
/// let resp = router.dispatch(&Request::get("/catchments"));
/// assert!(resp.status().is_success());
/// ```
pub fn portal_api(evop: Arc<Evop>) -> Router {
    let mut router = Router::new();
    // Every dispatch opens (or joins) a trace in the observatory-wide
    // tracer and counts into `router_requests_total{method,route,status}`.
    router.set_tracer(evop.tracer().clone());
    router.set_metrics(evop.metrics().clone());

    // --- Catchments ----------------------------------------------------
    let shared = Arc::clone(&evop);
    router.route(evop_services::Method::Get, "/catchments", move |_, _| {
        let list: Vec<Value> = shared.catchments().iter().map(catchment_json).collect();
        Response::ok().json(&list)
    });

    let shared = Arc::clone(&evop);
    router.route(evop_services::Method::Get, "/catchments/{id}", move |_, params| {
        match lookup_catchment(&shared, params) {
            Ok(catchment) => Response::ok().json(&catchment_json(catchment)),
            Err(resp) => resp,
        }
    });

    let shared = Arc::clone(&evop);
    router.route(evop_services::Method::Get, "/catchments/{id}/sensors", move |_, params| {
        match lookup_catchment(&shared, params) {
            Ok(catchment) => {
                let sensors: Vec<Value> = catchment
                    .default_sensors()
                    .iter()
                    .map(|s| {
                        json!({
                            "id": s.id().as_str(),
                            "kind": s.kind().to_string(),
                            "name": s.name(),
                            "unit": s.kind().unit(),
                            "lat": s.location().lat(),
                            "lon": s.location().lon(),
                            "sample_interval_secs": s.sample_interval_secs(),
                        })
                    })
                    .collect();
                Response::ok().json(&sensors)
            }
            Err(resp) => resp,
        }
    });

    // --- Observations (SOS) ---------------------------------------------
    let shared = Arc::clone(&evop);
    router.route(evop_services::Method::Get, "/sensors/{id}/observations", move |req, params| {
        let Some(id) = params.get("id") else {
            return Response::internal_error("route is missing its {id} parameter");
        };
        let sensor = SensorId::new(id);
        let parse_time = |key: &str| -> Option<Timestamp> {
            req.query_param(key).and_then(|v| v.parse::<i64>().ok()).map(Timestamp::from_unix)
        };
        let (Some(from), Some(to)) = (parse_time("from"), parse_time("to")) else {
            return Response::bad_request("from/to unix-second query parameters are required");
        };
        let limit = req.query_param("limit").and_then(|v| v.parse::<usize>().ok());
        match shared.sos().get_observation(&GetObservation {
            procedure: sensor,
            begin: from,
            end: to,
            max_results: limit,
        }) {
            Ok(observations) => {
                let body: Vec<Value> = observations
                    .iter()
                    .map(|o| {
                        json!({
                            "time": o.time().as_unix(),
                            "value": o.value(),
                            "quality": o.quality().to_string(),
                        })
                    })
                    .collect();
                Response::ok().json(&body)
            }
            Err(e) => Response::not_found(e.to_string()),
        }
    });

    let shared = Arc::clone(&evop);
    router.route(evop_services::Method::Get, "/sensors/{id}/latest", move |_, params| {
        let Some(id) = params.get("id") else {
            return Response::internal_error("route is missing its {id} parameter");
        };
        let sensor = SensorId::new(id);
        match shared.sos().latest(&sensor) {
            Some(o) => Response::ok().json(&json!({
                "time": o.time().as_unix(),
                "value": o.value(),
                "quality": o.quality().to_string(),
            })),
            None => Response::not_found(format!("no observations for {sensor}")),
        }
    });

    // --- Map ------------------------------------------------------------
    let shared = Arc::clone(&evop);
    router.route(evop_services::Method::Get, "/map/markers", move |req, _| {
        let corner = |key: &str| req.query_param(key).and_then(|v| v.parse::<f64>().ok());
        let (Some(south), Some(west), Some(north), Some(east)) =
            (corner("south"), corner("west"), corner("north"), corner("east"))
        else {
            return Response::bad_request("south/west/north/east query parameters are required");
        };
        if !(0.0..=90.0).contains(&north.abs()) || south > north || west > east {
            return Response::bad_request("malformed viewport");
        }
        let bbox = BoundingBox::new(LatLon::new(south, west), LatLon::new(north, east));
        let markers: Vec<Value> = shared
            .map()
            .markers_in(bbox)
            .iter()
            .map(|m| {
                json!({
                    "id": m.id(),
                    "kind": m.kind().to_string(),
                    "name": m.name(),
                    "lat": m.location().lat(),
                    "lon": m.location().lon(),
                    "catchment": m.catchment().as_str(),
                })
            })
            .collect();
        Response::ok().json(&markers)
    });

    // --- Catalogue --------------------------------------------------------
    let shared = Arc::clone(&evop);
    router.route(evop_services::Method::Get, "/datasets", move |req, _| {
        let mut query = Query::new();
        if let Some(text) = req.query_param("text") {
            query = query.text(text);
        }
        if let Some(theme) = req.query_param("theme") {
            query = query.theme(theme);
        }
        if req.query_param("live") == Some("true") {
            query = query.live_only();
        }
        let hits: Vec<Value> = shared
            .catalog()
            .search(&query)
            .iter()
            .map(|d| {
                json!({
                    "id": d.id(),
                    "title": d.title(),
                    "description": d.description(),
                    "source": d.source().to_string(),
                    "access": d.access().to_string(),
                    "themes": d.themes(),
                })
            })
            .collect();
        Response::ok().json(&hits)
    });

    // --- Dataset download (access-policy enforced) ------------------------
    let shared = Arc::clone(&evop);
    router.route(evop_services::Method::Get, "/datasets/{id}/download", move |req, params| {
        let Some(dataset) = params.get("id") else {
            return Response::internal_error("route is missing its {id} parameter");
        };
        let registered = req.query_param("registered") == Some("true");
        match shared.download_dataset(dataset, registered) {
            Ok(csv) => Response::ok().header("content-type", "text/csv").text(csv),
            Err(e @ crate::observatory::DownloadError::UnknownDataset(_)) => {
                Response::not_found(e.to_string())
            }
            Err(e) => Response::new(evop_services::StatusCode::FORBIDDEN).text(e.to_string()),
        }
    });

    // --- Model execution (WPS) -------------------------------------------
    let shared = Arc::clone(&evop);
    router.route(evop_services::Method::Get, "/catchments/{id}/processes", move |_, params| {
        let Some(id) = params.get("id") else {
            return Response::internal_error("route is missing its {id} parameter");
        };
        let id = CatchmentId::new(id);
        match shared.wps(&id) {
            Some(wps) => Response::ok().json(&wps.process_ids()),
            None => Response::not_found(format!("no WPS endpoint for {id}")),
        }
    });

    let shared = Arc::clone(&evop);
    router.route(
        evop_services::Method::Post,
        "/catchments/{id}/processes/{process}/execute",
        move |req, params| {
            let Some(id) = params.get("id") else {
                return Response::internal_error("route is missing its {id} parameter");
            };
            let id = CatchmentId::new(id);
            let Some(process) = params.get("process") else {
                return Response::internal_error("route is missing its {process} parameter");
            };
            let Some(wps) = shared.wps(&id) else {
                return Response::not_found(format!("no WPS endpoint for {id}"));
            };
            let inputs: Value = if req.body_bytes().is_empty() {
                json!({})
            } else {
                match req.json_body() {
                    Ok(v) => v,
                    Err(e) => return Response::bad_request(format!("bad JSON body: {e}")),
                }
            };
            // The router stamped its span context onto the request; the
            // WPS execution parents under it, keeping the whole request
            // on one trace.
            match wps.execute_traced(process, inputs, req.trace_context().as_ref()) {
                Ok(outputs) => Response::ok().json(&outputs),
                Err(WpsError::UnknownProcess(p)) => {
                    Response::not_found(format!("unknown process: {p}"))
                }
                Err(e @ WpsError::InvalidParameter { .. }) => Response::bad_request(e.to_string()),
                Err(e) => Response::internal_error(e.to_string()),
            }
        },
    );

    // Asynchronous execution: accept (202) now, poll later. The WPS job
    // store is interior-mutable, so the shared observatory can take jobs
    // from any replica.
    let shared = Arc::clone(&evop);
    router.route(
        evop_services::Method::Post,
        "/catchments/{id}/processes/{process}/execute-async",
        move |req, params| {
            let Some(id) = params.get("id") else {
                return Response::internal_error("route is missing its {id} parameter");
            };
            let id = CatchmentId::new(id);
            let Some(process) = params.get("process") else {
                return Response::internal_error("route is missing its {process} parameter");
            };
            let Some(wps) = shared.wps(&id) else {
                return Response::not_found(format!("no WPS endpoint for {id}"));
            };
            let inputs: Value = if req.body_bytes().is_empty() {
                json!({})
            } else {
                match req.json_body() {
                    Ok(v) => v,
                    Err(e) => return Response::bad_request(format!("bad JSON body: {e}")),
                }
            };
            match wps.execute_async(process, inputs) {
                Ok(job) => Response::new(evop_services::StatusCode::ACCEPTED).json(&json!({
                    "job": job,
                    "status_location": format!("/catchments/{id}/jobs/{job}"),
                })),
                Err(WpsError::UnknownProcess(p)) => {
                    Response::not_found(format!("unknown process: {p}"))
                }
                Err(e @ WpsError::InvalidParameter { .. }) => Response::bad_request(e.to_string()),
                Err(e) => Response::internal_error(e.to_string()),
            }
        },
    );

    let shared = Arc::clone(&evop);
    router.route(evop_services::Method::Get, "/catchments/{id}/jobs/{job}", move |_, params| {
        let Some(id) = params.get("id") else {
            return Response::internal_error("route is missing its {id} parameter");
        };
        let id = CatchmentId::new(id);
        let Some(wps) = shared.wps(&id) else {
            return Response::not_found(format!("no WPS endpoint for {id}"));
        };
        let Some(job) = params.get("job").and_then(|j| j.parse::<u64>().ok()) else {
            return Response::bad_request("job id must be an integer");
        };
        // Polling drives pending work (the in-process analogue of the
        // WPS status document updating behind a statusLocation URL).
        wps.process_pending();
        match wps.status(job) {
            Ok(evop_services::wps::ExecStatus::Accepted) => {
                Response::ok().json(&json!({"state": "accepted"}))
            }
            Ok(evop_services::wps::ExecStatus::Succeeded(outputs)) => {
                Response::ok().json(&json!({"state": "succeeded", "outputs": outputs}))
            }
            Ok(evop_services::wps::ExecStatus::Failed(reason)) => {
                Response::ok().json(&json!({"state": "failed", "reason": reason}))
            }
            Err(e) => Response::not_found(e.to_string()),
        }
    });

    // --- XaaS registry ----------------------------------------------------
    let shared = Arc::clone(&evop);
    router.route(evop_services::Method::Get, "/registry/{kind}", move |_, params| {
        let Some(kind_str) = params.get("kind") else {
            return Response::internal_error("route is missing its {kind} parameter");
        };
        let Some(kind) = [
            AssetKind::Dataset,
            AssetKind::Sensor,
            AssetKind::Model,
            AssetKind::Image,
            AssetKind::Service,
            AssetKind::Workflow,
            AssetKind::Instance,
        ]
        .into_iter()
        .find(|k| k.segment() == kind_str) else {
            return Response::not_found(format!("unknown asset kind: {kind_str}"));
        };
        let assets: Vec<Value> = shared
            .registry()
            .of_kind(kind)
            .iter()
            .map(|a| json!({ "uri": a.uri(), "title": a.title(), "tags": a.tags() }))
            .collect();
        Response::ok().json(&assets)
    });

    router
}

fn catchment_json(catchment: &evop_data::Catchment) -> Value {
    json!({
        "id": catchment.id().as_str(),
        "name": catchment.name(),
        "region": catchment.region(),
        "area_km2": catchment.area_km2(),
        "outlet": { "lat": catchment.outlet().lat(), "lon": catchment.outlet().lon() },
        "flood_stage_m": catchment.flood_stage_m(),
        "mean_annual_rainfall_mm": catchment.mean_annual_rainfall_mm(),
    })
}

fn lookup_catchment<'a>(
    evop: &'a Evop,
    params: &PathParams,
) -> Result<&'a evop_data::Catchment, Response> {
    let id = params
        .get("id")
        .map(CatchmentId::new)
        .ok_or_else(|| Response::internal_error("route is missing its {id} parameter"))?;
    evop.catchment(&id).ok_or_else(|| Response::not_found(format!("unknown catchment: {id}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use evop_services::StatusCode;

    fn api() -> Router {
        portal_api(Arc::new(Evop::builder().seed(5).days(5).build()))
    }

    #[test]
    fn lists_and_fetches_catchments() {
        let router = api();
        let list: Vec<Value> = router.dispatch(&Request::get("/catchments")).json_body().unwrap();
        assert_eq!(list.len(), 1);
        assert_eq!(list[0]["id"], "morland");

        let one = router.dispatch(&Request::get("/catchments/morland"));
        assert!(one.status().is_success());
        assert_eq!(
            router.dispatch(&Request::get("/catchments/amazon")).status(),
            StatusCode::NOT_FOUND
        );
    }

    #[test]
    fn sensors_and_latest_value() {
        let router = api();
        let sensors: Vec<Value> =
            router.dispatch(&Request::get("/catchments/morland/sensors")).json_body().unwrap();
        assert_eq!(sensors.len(), 5);

        let latest: Value = router
            .dispatch(&Request::get("/sensors/morland-stage-outlet/latest"))
            .json_body()
            .unwrap();
        assert!(latest["value"].as_f64().unwrap() > 0.0);
        assert_eq!(
            router.dispatch(&Request::get("/sensors/ghost/latest")).status(),
            StatusCode::NOT_FOUND
        );
    }

    #[test]
    fn observation_window_query() {
        let router = api();
        let from = Timestamp::from_ymd(2012, 1, 2).as_unix();
        let to = Timestamp::from_ymd(2012, 1, 3).as_unix();
        let resp = router.dispatch(
            &Request::get("/sensors/morland-rain-1/observations")
                .query("from", from.to_string())
                .query("to", to.to_string()),
        );
        let body: Vec<Value> = resp.json_body().unwrap();
        assert_eq!(body.len(), 24);

        // Missing parameters are a client error, not a panic.
        let bad = router.dispatch(&Request::get("/sensors/morland-rain-1/observations"));
        assert_eq!(bad.status(), StatusCode::BAD_REQUEST);
    }

    #[test]
    fn viewport_marker_query() {
        let router = api();
        let resp = router.dispatch(
            &Request::get("/map/markers")
                .query("south", "54.5")
                .query("west", "-2.8")
                .query("north", "54.7")
                .query("east", "-2.5"),
        );
        let markers: Vec<Value> = resp.json_body().unwrap();
        assert_eq!(markers.len(), 6, "all Morland assets in view");

        let inverted = router.dispatch(
            &Request::get("/map/markers")
                .query("south", "55.0")
                .query("west", "-2.8")
                .query("north", "54.0")
                .query("east", "-2.5"),
        );
        assert_eq!(inverted.status(), StatusCode::BAD_REQUEST);
    }

    #[test]
    fn catalogue_search() {
        let router = api();
        let hits: Vec<Value> =
            router.dispatch(&Request::get("/datasets").query("text", "stage")).json_body().unwrap();
        assert_eq!(hits.len(), 1);
        let all: Vec<Value> = router.dispatch(&Request::get("/datasets")).json_body().unwrap();
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn model_execution_over_the_api() {
        let router = api();
        let processes: Vec<String> =
            router.dispatch(&Request::get("/catchments/morland/processes")).json_body().unwrap();
        assert!(processes.contains(&"topmodel".to_owned()));

        let resp = router.dispatch(
            &Request::post("/catchments/morland/processes/topmodel/execute")
                .json(&json!({"scenario": "compacted-soils"})),
        );
        assert!(resp.status().is_success());
        let body: Value = resp.json_body().unwrap();
        assert_eq!(body["scenario"], "compacted-soils");
        assert!(body["hydrograph"]["peak_m3s"].as_f64().unwrap() > 0.0);

        // Validation errors surface as 400s, unknown processes as 404s.
        let bad = router.dispatch(
            &Request::post("/catchments/morland/processes/topmodel/execute")
                .json(&json!({"m": 99.0})),
        );
        assert_eq!(bad.status(), StatusCode::BAD_REQUEST);
        let missing = router.dispatch(
            &Request::post("/catchments/morland/processes/swat/execute").json(&json!({})),
        );
        assert_eq!(missing.status(), StatusCode::NOT_FOUND);
    }

    #[test]
    fn dataset_download_enforces_access_policy() {
        let router = api();
        // Open data downloads anonymously.
        let open = router.dispatch(&Request::get("/datasets/morland-rainfall/download"));
        assert!(open.status().is_success());
        let csv = open.body_text().unwrap();
        assert!(csv.starts_with("time,value\n"));
        assert_eq!(csv.lines().count(), 1 + 5 * 24, "header + hourly archive");

        // Registered-only data refuses anonymous users…
        let anon = router.dispatch(&Request::get("/datasets/morland-turbidity/download"));
        assert_eq!(anon.status(), StatusCode::FORBIDDEN);
        // …but serves registered ones.
        let reg = router.dispatch(
            &Request::get("/datasets/morland-turbidity/download").query("registered", "true"),
        );
        assert!(reg.status().is_success());

        // Unknown datasets are 404.
        let missing = router.dispatch(&Request::get("/datasets/ghost/download"));
        assert_eq!(missing.status(), StatusCode::NOT_FOUND);
    }

    #[test]
    fn downloaded_csv_round_trips_through_the_importer() {
        let router = api();
        let resp = router.dispatch(&Request::get("/datasets/morland-stage/download"));
        let series = evop_data::export::from_csv(resp.body_text().unwrap()).unwrap();
        assert_eq!(series.step_secs(), 3600);
        assert!(series.peak().unwrap().1 > 0.0);
    }

    #[test]
    fn async_execution_over_the_api() {
        let router = api();
        let accepted = router.dispatch(
            &Request::post("/catchments/morland/processes/topmodel/execute-async")
                .json(&json!({"scenario": "baseline"})),
        );
        assert_eq!(accepted.status(), StatusCode::ACCEPTED);
        let body: Value = accepted.json_body().unwrap();
        let location = body["status_location"].as_str().unwrap().to_owned();

        let polled = router.dispatch(&Request::get(&location));
        let status: Value = polled.json_body().unwrap();
        assert_eq!(status["state"], "succeeded");
        assert!(status["outputs"]["hydrograph"]["peak_m3s"].as_f64().unwrap() > 0.0);

        // Unknown jobs 404; bad job ids 400.
        let missing = router.dispatch(&Request::get("/catchments/morland/jobs/999"));
        assert_eq!(missing.status(), StatusCode::NOT_FOUND);
        let garbage = router.dispatch(&Request::get("/catchments/morland/jobs/xyz"));
        assert_eq!(garbage.status(), StatusCode::BAD_REQUEST);
    }

    #[test]
    fn registry_listing() {
        let router = api();
        let models: Vec<Value> =
            router.dispatch(&Request::get("/registry/model")).json_body().unwrap();
        assert_eq!(models.len(), 2);
        assert!(models.iter().any(|m| m["uri"] == "evop://model/topmodel"));
        assert_eq!(
            router.dispatch(&Request::get("/registry/starship")).status(),
            StatusCode::NOT_FOUND
        );
    }

    #[test]
    fn portal_execute_is_one_connected_trace() {
        let evop = Arc::new(Evop::builder().seed(5).days(5).build());
        let router = portal_api(Arc::clone(&evop));
        let resp = router.dispatch(
            &Request::post("/catchments/morland/processes/topmodel/execute").json(&json!({})),
        );
        assert!(resp.status().is_success());

        let spans = evop.tracer().finished();
        let http = spans
            .iter()
            .find(|s| s.name == "http POST /catchments/{id}/processes/{process}/execute")
            .expect("router span recorded");
        let wps =
            spans.iter().find(|s| s.name == "wps.execute topmodel").expect("wps span recorded");
        assert_eq!(wps.trace_id, http.trace_id, "one request, one trace");
        assert_eq!(wps.parent, Some(http.span_id), "wps parents under the router");
        assert_eq!(
            evop.metrics().counter(
                "router_requests_total",
                &[
                    ("method", "POST"),
                    ("route", "/catchments/{id}/processes/{process}/execute"),
                    ("status", "200"),
                ],
            ),
            1
        );
    }

    #[test]
    fn replicas_serve_identically() {
        let router = api();
        let replica = router.clone();
        let req = Request::get("/catchments/morland/sensors");
        assert_eq!(router.dispatch(&req).body_bytes(), replica.dispatch(&req).body_bytes());
    }
}
