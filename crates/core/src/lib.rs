//! EVOp — the Environmental Virtual Observatory pilot, reproduced in Rust.
//!
//! This crate is the top of the workspace: it wires the substrates
//! (`evop-data`, `evop-cloud`, `evop-xcloud`, `evop-services`,
//! `evop-models`, `evop-broker`, `evop-workflow`, `evop-portal`) into the
//! observatory the paper describes — "a cloud-enabled virtual research
//! space for different users interested in environmental science, ranging
//! from domain specialists to the general public".
//!
//! * [`Evop`] — the facade: study catchments with synthetic archives, SOS
//!   and WPS services, the asset map, the dataset catalogue, modelling
//!   widgets and the hybrid-cloud broker, all from one seeded builder;
//! * [`registry`] — the XaaS asset registry giving every resource a
//!   uniform address;
//! * [`experiments`] — the harnesses behind every experiment in
//!   EXPERIMENTS.md (E1–E15), shared by the Criterion benches and the
//!   integration tests.
//!
//! # Examples
//!
//! ```
//! use evop_core::Evop;
//!
//! let mut evop = Evop::builder().seed(42).days(10).build();
//! let morland = evop.catchments()[0].id().clone();
//!
//! // Explore assets on the map…
//! let markers = evop.map().in_catchment(&morland);
//! assert!(markers.len() >= 6);
//!
//! // …and run the flood model through the WPS service.
//! let out = evop
//!     .wps(&morland)
//!     .unwrap()
//!     .execute("topmodel", serde_json::json!({"scenario": "baseline"}))
//!     .unwrap();
//! assert!(out["hydrograph"]["peak_m3s"].as_f64().unwrap() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod api;
pub mod compose;
pub mod experiments;
pub mod registry;

mod observatory;

pub use observatory::{BuildError, DownloadError, Evop, EvopBuilder};
pub use registry::{AssetKind, AssetRecord, AssetRegistry};
