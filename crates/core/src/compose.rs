//! Workflows over web services: the paper's composition vision, wired.
//!
//! §VIII defines a workflow as "a directed acyclic graph of basic
//! execution units (e.g. executables, scripts, **web services**, etc.)".
//! The `evop-workflow` engine runs arbitrary tasks; this module supplies
//! the web-service execution unit — a workflow task that calls a WPS
//! process — plus a ready-made scenario-comparison workflow built entirely
//! from WPS nodes.

use std::sync::Arc;

use evop_models::scenarios::Scenario;
use evop_services::wps::WpsServer;
use evop_workflow::{Workflow, WorkflowError};
use serde_json::{json, Map, Value};

/// Builds a workflow task that executes `process` on a shared WPS server.
///
/// Inputs are assembled by merging, in order: `base_inputs`, then every
/// upstream output that is a JSON object (later keys win). Non-object
/// upstream outputs are ignored — connect a shaping task in between when
/// a scalar needs to become a named input.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use evop_core::compose::wps_execute_task;
/// use evop_data::{Catchment, Timestamp};
/// use evop_data::synthetic::WeatherGenerator;
/// use evop_models::pet::hamon_series;
/// use evop_models::Forcing;
/// use evop_portal::processes::register_standard_processes;
/// use evop_services::wps::WpsServer;
/// use evop_workflow::Workflow;
/// use serde_json::json;
///
/// let catchment = Catchment::morland();
/// let g = WeatherGenerator::for_catchment(&catchment, 1);
/// let start = Timestamp::from_ymd(2012, 1, 1);
/// let rain = g.rainfall(start, 3600, 240);
/// let temp = g.temperature(start, 3600, 240);
/// let forcing = Forcing::new(rain, hamon_series(&temp, catchment.outlet().lat()));
/// let mut server = WpsServer::new();
/// register_standard_processes(&mut server, &catchment, &forcing, 1);
/// let server = Arc::new(server);
///
/// let wf = Workflow::builder("one-node")
///     .task("run", [] as [&str; 0], wps_execute_task(server, "topmodel", json!({})))
///     .build()?;
/// let record = wf.execute()?;
/// assert!(record.output("run").unwrap()["hydrograph"]["peak_m3s"].as_f64().unwrap() > 0.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn wps_execute_task(
    server: Arc<WpsServer>,
    process: impl Into<String>,
    base_inputs: Value,
) -> impl Fn(&[Value]) -> Result<Value, String> + Send + Sync + 'static {
    let process = process.into();
    move |upstream: &[Value]| {
        let mut inputs: Map<String, Value> = match &base_inputs {
            Value::Object(map) => map.clone(),
            Value::Null => Map::new(),
            other => return Err(format!("base inputs must be an object, got {other}")),
        };
        for value in upstream {
            if let Value::Object(map) = value {
                for (k, v) in map {
                    inputs.insert(k.clone(), v.clone());
                }
            }
        }
        server.execute(&process, Value::Object(inputs)).map_err(|e| e.to_string())
    }
}

/// Builds the scenario-comparison workflow: one WPS execution unit per
/// scenario, joined by a comparison node that ranks flood peaks — a
/// "complex experiment that can be easily tweaked and replayed" built
/// purely from web services.
///
/// # Errors
///
/// Propagates graph-construction errors (impossible for this fixed shape,
/// but surfaced rather than unwrapped).
pub fn scenario_comparison_workflow(
    server: Arc<WpsServer>,
    process: &str,
    scenarios: &[Scenario],
) -> Result<Workflow, WorkflowError> {
    let mut builder = Workflow::builder(format!("{process}-scenario-comparison"));
    let mut node_names = Vec::new();
    for scenario in scenarios {
        let name = format!("run-{}", scenario.id());
        builder = builder.task(
            &name,
            [] as [&str; 0],
            wps_execute_task(Arc::clone(&server), process, json!({"scenario": scenario.id()})),
        );
        node_names.push(name);
    }
    let labels: Vec<String> = scenarios.iter().map(|s| s.id().to_owned()).collect();
    builder = builder.task("compare", node_names, move |upstream| {
        let mut rows: Vec<Value> = Vec::new();
        for (label, output) in labels.iter().zip(upstream) {
            let peak = output
                .pointer("/hydrograph/peak_m3s")
                .or_else(|| output.pointer("/mean/peak_m3s"))
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("{label}: no peak in WPS output"))?;
            rows.push(json!({ "scenario": label, "peak_m3s": peak }));
        }
        rows.sort_by(|a, b| {
            let peak = |row: &Value| row["peak_m3s"].as_f64().unwrap_or(f64::NEG_INFINITY);
            peak(b).total_cmp(&peak(a))
        });
        Ok(json!({ "ranked_by_peak": rows }))
    });
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use evop_data::synthetic::WeatherGenerator;
    use evop_data::{Catchment, Timestamp};
    use evop_models::pet::hamon_series;
    use evop_models::Forcing;
    use evop_portal::processes::register_standard_processes;

    fn shared_server() -> Arc<WpsServer> {
        let catchment = Catchment::morland();
        let generator = WeatherGenerator::for_catchment(&catchment, 9);
        let start = Timestamp::from_ymd(2012, 1, 1);
        let n = 20 * 24;
        let rain = generator.rainfall(start, 3600, n);
        let temp = generator.temperature(start, 3600, n);
        let forcing = Forcing::new(rain, hamon_series(&temp, catchment.outlet().lat()));
        let mut server = WpsServer::new();
        register_standard_processes(&mut server, &catchment, &forcing, 9);
        Arc::new(server)
    }

    #[test]
    fn upstream_objects_override_base_inputs() {
        let server = shared_server();
        let task = wps_execute_task(server, "topmodel", json!({"scenario": "baseline"}));
        let out = task(&[json!({"scenario": "compacted-soils"})]).unwrap();
        assert_eq!(out["scenario"], "compacted-soils");
    }

    #[test]
    fn wps_errors_become_node_failures() {
        let server = shared_server();
        let task = wps_execute_task(server, "topmodel", json!({"m": 99.0}));
        let err = task(&[]).unwrap_err();
        assert!(err.contains("invalid parameter"), "{err}");
    }

    #[test]
    fn scenario_comparison_workflow_ranks_peaks() {
        let server = shared_server();
        let wf = scenario_comparison_workflow(
            server,
            "topmodel",
            &[Scenario::Baseline, Scenario::CompactedSoils, Scenario::RestoredWetland],
        )
        .unwrap();
        assert_eq!(wf.len(), 4);
        let record = wf.execute().unwrap();
        let ranked =
            record.output("compare").unwrap()["ranked_by_peak"].as_array().unwrap().clone();
        assert_eq!(ranked.len(), 3);
        assert_eq!(ranked[0]["scenario"], "compacted-soils", "highest peak first");
        assert_eq!(ranked[2]["scenario"], "restored-wetland", "lowest peak last");

        // The whole web-service composition replays deterministically.
        assert!(wf.replay(&record).unwrap().matches());
    }

    #[test]
    fn works_over_the_fuse_ensemble_too() {
        let server = shared_server();
        let wf = scenario_comparison_workflow(server, "fuse", &[Scenario::Baseline]).unwrap();
        let record = wf.execute().unwrap();
        let ranked = &record.output("compare").unwrap()["ranked_by_peak"];
        assert!(ranked[0]["peak_m3s"].as_f64().unwrap() > 0.0);
    }
}
