//! Experiment harnesses: one function per experiment in EXPERIMENTS.md.
//!
//! The paper is an experience paper with no quantitative tables; each of
//! its figures and evaluation-section claims maps to a measurable system
//! behaviour (see DESIGN.md). These harnesses produce those measurements.
//! The Criterion benches in `evop-bench` time them; the integration tests
//! in the workspace root assert the *shape* of each result (who wins, in
//! which direction, where the crossover falls).

use std::collections::BTreeMap;
use std::sync::Arc;

use evop_broker::{Broker, BrokerConfig, BrokerError, BrokerEvent, SessionId, SessionState};
use evop_cloud::{CloudError, CloudSim, FailureMode, JobState, MachineImage, Provider};
use evop_data::geo::BoundingBox;
use evop_data::{Catchment, SensorId};
use evop_models::objectives::FloodMetrics;
use evop_models::scenarios::Scenario;
use evop_obs::{MetricsRegistry, Profiler, SpanRecord, TimelineReport, TraceId, Tracer};
use evop_portal::journey::{simulate_cohort, workshop_cohort, CohortStats, JourneyConfig};
use evop_portal::map::{AssetMap, Marker, MarkerKind};
use evop_portal::storyboard::{CoverageReport, Storyboard, StoryboardError};
use evop_portal::widgets::{ModelChoice, MultimodalWidget};
use evop_services::push::{simulate_polling, simulate_push, TrafficReport};
use evop_services::rest::Router;
use evop_services::soap::SoapEndpoint;
use evop_services::wps::WpsError;
use evop_services::{Method, Request, Response};
use evop_sim::stats::{Percentiles, Running};
use evop_sim::{SimDuration, SimRng, SimTime};
use evop_workflow::Workflow;
use evop_xcloud::{ComputeService, NodeTemplate, PrivateFirst, PrivateOnly, SplitByImageKind};
use serde_json::{json, Value};

use crate::api;
use crate::observatory::Evop;

// ====================================================================
// Typed harness failures
// ====================================================================

/// A typed failure from an experiment or ablation harness.
///
/// The harnesses used to `.expect()` their way along the happy path;
/// every one of those panic sites is now a variant here, so callers
/// (integration tests, bench bins, the REST API) decide how a failed
/// run surfaces. [`ExperimentError::Invariant`] covers reads of state
/// the harness itself just established — a `None` there is a harness
/// bug, not bad input, but it still must not abort a library caller.
#[derive(Debug, Clone, PartialEq)]
pub enum ExperimentError {
    /// The resource broker refused a session operation.
    Broker(BrokerError),
    /// The cloud simulator refused a launch or job submission.
    Cloud(CloudError),
    /// A WPS process execution failed.
    Wps(WpsError),
    /// Workflow composition, execution or replay failed.
    Workflow(evop_workflow::WorkflowError),
    /// A storyboard requirement id was unknown.
    Storyboard(StoryboardError),
    /// A hydrological model rejected its parameters.
    Model(String),
    /// The modelling widget rejected a run.
    Widget(String),
    /// State the harness established was missing when read back.
    Invariant(&'static str),
}

impl std::fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExperimentError::Broker(e) => write!(f, "broker: {e}"),
            ExperimentError::Cloud(e) => write!(f, "cloud: {e}"),
            ExperimentError::Wps(e) => write!(f, "wps: {e}"),
            ExperimentError::Workflow(e) => write!(f, "workflow: {e}"),
            ExperimentError::Storyboard(e) => write!(f, "storyboard: {e}"),
            ExperimentError::Model(e) => write!(f, "model: {e}"),
            ExperimentError::Widget(e) => write!(f, "widget: {e}"),
            ExperimentError::Invariant(what) => {
                write!(f, "harness invariant violated: {what}")
            }
        }
    }
}

impl std::error::Error for ExperimentError {}

impl From<BrokerError> for ExperimentError {
    fn from(e: BrokerError) -> ExperimentError {
        ExperimentError::Broker(e)
    }
}

impl From<CloudError> for ExperimentError {
    fn from(e: CloudError) -> ExperimentError {
        ExperimentError::Cloud(e)
    }
}

impl From<WpsError> for ExperimentError {
    fn from(e: WpsError) -> ExperimentError {
        ExperimentError::Wps(e)
    }
}

impl From<evop_workflow::WorkflowError> for ExperimentError {
    fn from(e: evop_workflow::WorkflowError) -> ExperimentError {
        ExperimentError::Workflow(e)
    }
}

impl From<StoryboardError> for ExperimentError {
    fn from(e: StoryboardError) -> ExperimentError {
        ExperimentError::Storyboard(e)
    }
}

/// Shorthand for the `Option -> Result` conversions the harnesses do.
pub(crate) fn invariant(what: &'static str) -> ExperimentError {
    ExperimentError::Invariant(what)
}

// ====================================================================
// Trace capture: the observability side-car of an experiment run
// ====================================================================

/// The trace and metrics captured alongside a `*_traced` experiment run.
///
/// Everything in here is *observation*: attaching it never changes the
/// measured result (the `e1_traced_matches_untraced` test pins that).
#[derive(Debug, Clone)]
pub struct TraceCapture {
    /// The run's primary trace.
    pub trace_id: TraceId,
    /// Spans on that trace, sorted by (start, span id).
    pub spans: Vec<SpanRecord>,
    /// Deterministic JSON rendering of the trace tree — byte-identical
    /// across same-seed runs.
    pub trace_json: String,
    /// Metrics snapshot (counters, gauges, histograms) at the end of the
    /// run.
    pub metrics: Value,
}

impl TraceCapture {
    fn of(tracer: &Tracer, metrics: &MetricsRegistry, trace: TraceId) -> TraceCapture {
        let report = TimelineReport::for_trace(tracer, trace);
        TraceCapture {
            trace_id: trace,
            spans: report.spans().to_vec(),
            trace_json: report.json().to_string(),
            metrics: metrics.snapshot(),
        }
    }

    /// Renders the captured trace as an ASCII timeline.
    pub fn ascii(&self) -> String {
        TimelineReport::from_spans(self.spans.clone()).ascii()
    }
}

// ====================================================================
// E1 — Fig. 1: end-to-end data flow
// ====================================================================

/// E1 outcome: one user's full journey through the Fig. 1 pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct E1Result {
    /// Connect → instance assignment wait.
    pub activation_wait: SimDuration,
    /// Model-run submit → completion.
    pub job_latency: SimDuration,
    /// Session updates pushed to the browser.
    pub push_updates: usize,
    /// Peak discharge of the produced hydrograph, m³/s.
    pub peak_m3s: f64,
}

/// Runs experiment E1: portal → Resource Broker → cloud instance → model →
/// hydrograph, with push updates on the session channel.
///
/// # Errors
///
/// Returns an [`ExperimentError`] when any pipeline stage refuses — the
/// broker cannot serve the model, the WPS rejects the run, or the job
/// state the harness just created cannot be read back.
pub fn e1_dataflow(seed: u64) -> Result<E1Result, ExperimentError> {
    e1_dataflow_profiled(seed, &Profiler::disabled())
}

/// [`e1_dataflow`] with wall-clock profiling: each pipeline stage runs
/// inside a [`Profiler`] span so `perf_report` can attribute real CPU
/// time to build, broker, WPS and collection phases. Profiling is
/// observation only — the measured result is identical to the
/// unprofiled run (`tests/observability.rs` pins that).
pub fn e1_dataflow_profiled(seed: u64, prof: &Profiler) -> Result<E1Result, ExperimentError> {
    let _span = prof.enter("e1.request");
    let mut evop = {
        let _build = prof.enter("e1.build_observatory");
        Evop::builder().seed(seed).days(10).build()
    };
    let id = evop.catchments()[0].id().clone();

    // 1. The user opens the modelling widget: the broker binds a session.
    let session = {
        let _connect = prof.enter("e1.broker_connect");
        evop.broker_mut().connect("stakeholder", "topmodel")?
    };
    {
        let _boot = prof.enter("e1.instance_boot");
        evop.broker_mut().advance(SimDuration::from_secs(180));
    }

    // 2. The widget submits a model run to the session's instance.
    let job = {
        let _run = prof.enter("e1.run_model");
        let job = evop.broker_mut().run_model(session, SimDuration::from_secs(45))?;
        evop.broker_mut().advance(SimDuration::from_secs(300));
        job
    };

    // 3. Meanwhile the actual model produces the hydrograph via WPS.
    let out = {
        let _wps = prof.enter("e1.wps_execute");
        evop.wps(&id)
            .ok_or_else(|| invariant("every built catchment has a WPS endpoint"))?
            .execute("topmodel", json!({}))?
    };

    let _collect = prof.enter("e1.collect");
    let broker = evop.broker();
    let session_ref = broker.session(session).ok_or_else(|| invariant("session exists"))?;
    let instance = session_ref.instance().ok_or_else(|| invariant("active session"))?;
    let job_latency = broker
        .cloud()
        .instance(instance)
        .and_then(|i| i.job(job))
        .and_then(|j| j.latency())
        .ok_or_else(|| invariant("job completed"))?;

    Ok(E1Result {
        activation_wait: session_ref
            .activation_wait()
            .ok_or_else(|| invariant("session activated"))?,
        job_latency,
        push_updates: session_ref.client_channel().drain().len(),
        peak_m3s: out["hydrograph"]["peak_m3s"]
            .as_f64()
            .ok_or_else(|| invariant("hydrograph carries a peak"))?,
    })
}

/// Runs E1 with the full request on one trace: a root `e1.request` span
/// covers the broker connect, instance boot, model run and the WPS
/// execution dispatched through the portal's REST router (the Fig. 1
/// pipeline as a single causal timeline).
pub fn e1_dataflow_traced(seed: u64) -> Result<(E1Result, TraceCapture), ExperimentError> {
    let mut evop = Evop::builder().seed(seed).days(10).build();
    let id = evop.catchments()[0].id().clone();

    let root = evop.tracer().start_trace("e1.request");
    root.attr("user", "stakeholder");
    let ctx = root.context();

    // 1. The user opens the modelling widget: the broker binds a session.
    let session = evop.broker_mut().connect_with_context("stakeholder", "topmodel", Some(&ctx))?;
    evop.broker_mut().advance(SimDuration::from_secs(180));

    // 2. The widget submits a model run to the session's instance.
    let job = evop.broker_mut().run_model_with_context(
        session,
        SimDuration::from_secs(45),
        Some(&ctx),
    )?;
    evop.broker_mut().advance(SimDuration::from_secs(300));

    // 3. The hydrograph request goes through the portal API with the
    //    root's context in its headers, so router and WPS spans join the
    //    same trace.
    let evop = Arc::new(evop);
    let router = api::portal_api(Arc::clone(&evop));
    let resp = router.dispatch(
        &Request::post(format!("/catchments/{id}/processes/topmodel/execute"))
            .json(&json!({}))
            .traced(&ctx),
    );
    if !resp.status().is_success() {
        return Err(invariant("traced execute request must succeed"));
    }
    let out: Value = resp.json_body().map_err(|_| invariant("execute response is JSON"))?;
    root.finish();

    let broker = evop.broker();
    let session_ref = broker.session(session).ok_or_else(|| invariant("session exists"))?;
    let instance = session_ref.instance().ok_or_else(|| invariant("active session"))?;
    let job_latency = broker
        .cloud()
        .instance(instance)
        .and_then(|i| i.job(job))
        .and_then(|j| j.latency())
        .ok_or_else(|| invariant("job completed"))?;

    let result = E1Result {
        activation_wait: session_ref
            .activation_wait()
            .ok_or_else(|| invariant("session activated"))?,
        job_latency,
        push_updates: session_ref.client_channel().drain().len(),
        peak_m3s: out["hydrograph"]["peak_m3s"]
            .as_f64()
            .ok_or_else(|| invariant("hydrograph carries a peak"))?,
    };
    let capture = TraceCapture::of(evop.tracer(), evop.metrics(), ctx.trace_id);
    Ok((result, capture))
}

// ====================================================================
// E2 — §IV-B: stateless REST vs stateful SOAP under failover
// ====================================================================

/// E2 outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct E2Result {
    /// Multi-step workflows attempted per style.
    pub workflows: usize,
    /// REST workflows that completed despite the replica kill.
    pub rest_completed: usize,
    /// REST steps that had to be re-sent (none — statelessness).
    pub rest_lost_steps: usize,
    /// SOAP workflows that completed.
    pub soap_completed: usize,
    /// SOAP sessions killed with their replica.
    pub soap_lost_sessions: usize,
}

/// Runs experiment E2: `workflows` four-step experiments against
/// `replicas` service replicas; one replica is killed halfway through
/// every workflow.
///
/// # Errors
///
/// Returns [`ExperimentError::Invariant`] if `replicas < 2` (failover
/// needs a survivor) or a replica's response violates the protocol the
/// harness itself set up.
pub fn e2_rest_vs_soap(
    workflows: usize,
    replicas: usize,
    seed: u64,
) -> Result<E2Result, ExperimentError> {
    if replicas < 2 {
        return Err(invariant("failover needs at least two replicas"));
    }
    let mut rng = SimRng::new(seed).fork("e2");
    const STEPS: usize = 4;

    // --- REST: stateless router, replicas are clones. -----------------
    let mut router = Router::new();
    router.route(Method::Post, "/experiment/step", |req, _| {
        // All state arrives in the request; any replica can serve it.
        let body: Value = match req.json_body() {
            Ok(v) => v,
            Err(e) => return Response::bad_request(e.to_string()),
        };
        let step = body["step"].as_u64().unwrap_or(0);
        Response::ok().json(&json!({ "acc": body["acc"].as_u64().unwrap_or(0) + step }))
    });
    let mut rest_replicas: Vec<Option<Router>> =
        (0..replicas).map(|_| Some(router.clone())).collect();

    let mut rest_completed = 0;
    let mut rest_lost_steps = 0;
    for w in 0..workflows {
        let mut acc = 0u64;
        let mut done = true;
        for step in 0..STEPS {
            if step == STEPS / 2 {
                // The replica serving us dies mid-workflow…
                let victim = w % replicas;
                rest_replicas[victim] = None;
                // …and the platform immediately replaces it with a clone.
                rest_replicas[victim] = Some(router.clone());
            }
            // Round-robin over live replicas.
            let replica = rest_replicas[(w + step) % replicas]
                .as_ref()
                .ok_or_else(|| invariant("replica replaced synchronously"))?;
            let resp = replica.dispatch(
                &Request::post("/experiment/step")
                    .json(&json!({ "acc": acc, "step": step as u64 + 1 })),
            );
            if resp.status().is_success() {
                let body: Value =
                    resp.json_body().map_err(|_| invariant("step response is JSON"))?;
                acc = body["acc"].as_u64().ok_or_else(|| invariant("step response has acc"))?;
            } else {
                rest_lost_steps += 1;
                done = false;
                break;
            }
        }
        if done && acc == (1..=STEPS as u64).sum::<u64>() {
            rest_completed += 1;
        }
    }

    // --- SOAP: per-replica endpoints with sticky sessions. -------------
    let mut soap_replicas: Vec<SoapEndpoint> = (0..replicas).map(|_| SoapEndpoint::new()).collect();
    let mut soap_completed = 0;
    let mut soap_lost = 0;
    for w in 0..workflows {
        let home = rng.index(replicas);
        let token = soap_replicas[home].begin();
        let mut alive = true;
        for step in 0..STEPS {
            if step == STEPS / 2 && w % replicas == home {
                // Our home replica dies: the replacement is a *fresh*
                // endpoint with no session state.
                soap_replicas[home] = SoapEndpoint::new();
            }
            if soap_replicas[home].invoke(token, json!(step)).is_err() {
                soap_lost += 1;
                alive = false;
                break;
            }
        }
        if alive && soap_replicas[home].commit(token).is_ok() {
            soap_completed += 1;
        }
    }

    Ok(E2Result {
        workflows,
        rest_completed,
        rest_lost_steps,
        soap_completed,
        soap_lost_sessions: soap_lost,
    })
}

// ====================================================================
// E3 — §IV-D/§VI: cloudbursting and retreat
// ====================================================================

/// One sample of the E3 timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixSample {
    /// Sample time.
    pub at: SimTime,
    /// Active sessions.
    pub sessions: usize,
    /// Private instances holding capacity.
    pub private_instances: usize,
    /// Public instances holding capacity.
    pub public_instances: usize,
}

/// E3 outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct E3Result {
    /// Provider mix over the load ramp.
    pub timeline: Vec<MixSample>,
    /// When the first public instance appeared, if ever.
    pub burst_at: Option<SimTime>,
    /// When the last public instance was drained, if it happened.
    pub retreat_at: Option<SimTime>,
    /// Total cost of the hybrid run.
    pub hybrid_cost: f64,
    /// What the same instance-hours would have cost all-public.
    pub all_public_equivalent_cost: f64,
}

/// Runs experiment E3: ramps `peak_users` up over an hour, holds, then
/// ramps down, sampling the provider mix each minute.
///
/// # Errors
///
/// Returns an [`ExperimentError`] when the broker refuses a connect or
/// disconnect during the ramp.
pub fn e3_cloudburst(peak_users: usize, seed: u64) -> Result<E3Result, ExperimentError> {
    let mut broker = e3_broker(seed);
    run_e3(&mut broker, peak_users)
}

/// Runs E3 and captures the first user's session trace — connect, bind,
/// cloudburst placements and eventual scale-down migration all on one
/// timeline — plus the broker/cloud metrics for the whole ramp.
///
/// # Errors
///
/// As [`e3_cloudburst`], plus when no trace was recorded at all.
pub fn e3_cloudburst_traced(
    peak_users: usize,
    seed: u64,
) -> Result<(E3Result, TraceCapture), ExperimentError> {
    let mut broker = e3_broker(seed);
    let result = run_e3(&mut broker, peak_users)?;
    let trace = broker
        .tracer()
        .trace_ids()
        .first()
        .copied()
        .ok_or_else(|| invariant("connects recorded a trace"))?;
    let capture = TraceCapture::of(broker.tracer(), broker.metrics(), trace);
    Ok((result, capture))
}

fn e3_broker(seed: u64) -> Broker {
    let config = BrokerConfig {
        private_capacity_vcpus: 8, // 4 m1.medium instances → 32 session slots
        scale_down_surplus_slots: 12,
        ..BrokerConfig::default()
    };
    Broker::new(config, seed)
}

fn run_e3(broker: &mut Broker, peak_users: usize) -> Result<E3Result, ExperimentError> {
    let mut timeline = Vec::new();
    let mut sessions: Vec<SessionId> = Vec::new();
    let minute = SimDuration::from_secs(60);

    let sample = |broker: &Broker, sessions: &[SessionId]| MixSample {
        at: broker.now(),
        sessions: sessions
            .iter()
            .filter(|&&s| broker.session(s).map(|x| x.state()) == Some(SessionState::Active))
            .count(),
        private_instances: broker.provider_mix().private_instances,
        public_instances: broker.provider_mix().public_instances,
    };

    // Ramp up: peak_users arrive over 60 minutes.
    for minute_idx in 0..60 {
        let target = peak_users * (minute_idx + 1) / 60;
        while sessions.len() < target {
            let user = format!("user-{}", sessions.len());
            sessions.push(broker.connect(&user, "topmodel")?);
        }
        broker.advance(minute);
        timeline.push(sample(broker, &sessions));
    }
    // Hold for 20 minutes.
    for _ in 0..20 {
        broker.advance(minute);
        timeline.push(sample(broker, &sessions));
    }
    // Ramp down: everyone leaves over 30 minutes.
    let leaving_per_minute = sessions.len().div_ceil(30);
    let mut remaining = sessions.clone();
    for _ in 0..30 {
        for _ in 0..leaving_per_minute {
            if let Some(s) = remaining.pop() {
                broker.disconnect(s)?;
            }
        }
        broker.advance(minute);
        timeline.push(sample(broker, &remaining));
    }
    // Cool-down so scale-down completes.
    for _ in 0..30 {
        broker.advance(minute);
        timeline.push(sample(broker, &remaining));
    }

    let burst_at = timeline.iter().find(|s| s.public_instances > 0).map(|s| s.at);
    let retreat_at = burst_at.and_then(|_| {
        timeline.iter().rev().take_while(|s| s.public_instances == 0).last().map(|s| s.at)
    });

    let by_provider = broker.cost_by_provider();
    let private_cost = by_provider.get(evop_broker::PRIVATE_PROVIDER).copied().unwrap_or(0.0);
    let public_cost = by_provider.get(evop_broker::PUBLIC_PROVIDER).copied().unwrap_or(0.0);
    // Private hours are billed at 20 % of list price; all-public would pay
    // full list for the same hours.
    let all_public_equivalent_cost = private_cost / 0.2 + public_cost;

    Ok(E3Result {
        timeline,
        burst_at,
        retreat_at,
        hybrid_cost: private_cost + public_cost,
        all_public_equivalent_cost,
    })
}

// ====================================================================
// E4 — §IV-D: failure detection and session migration
// ====================================================================

/// E4 outcome for one failure mode.
#[derive(Debug, Clone, PartialEq)]
pub struct E4Result {
    /// The injected mode.
    pub mode: FailureMode,
    /// Injection → detection delay, if detected.
    pub detection_delay: Option<SimDuration>,
    /// The signature the Load Balancer reported.
    pub signature: Option<String>,
    /// Sessions on the instance when it failed.
    pub sessions_at_failure: usize,
    /// Sessions migrated to a replacement.
    pub sessions_migrated: usize,
    /// Sessions left unserved at the end (must be zero).
    pub sessions_lost: usize,
}

/// Runs experiment E4 for one failure mode: binds `users` sessions to one
/// instance, injects the failure, and watches the Load Balancer recover.
///
/// # Errors
///
/// Returns an [`ExperimentError`] when the broker refuses a connect or
/// the victim instance cannot be identified after binding.
pub fn e4_failure_recovery(
    mode: FailureMode,
    users: usize,
    seed: u64,
) -> Result<E4Result, ExperimentError> {
    let mut broker = Broker::new(BrokerConfig::default(), seed);
    run_e4(&mut broker, mode, users)
}

/// Runs E4 and captures the first victim session's trace: connect, bind,
/// boot, the doomed model run and the `session.migrate` recovery span,
/// plus `broker_failures_detected_total` and friends in the metrics.
pub fn e4_failure_recovery_traced(
    mode: FailureMode,
    users: usize,
    seed: u64,
) -> Result<(E4Result, TraceCapture), ExperimentError> {
    let mut broker = Broker::new(BrokerConfig::default(), seed);
    let result = run_e4(&mut broker, mode, users)?;
    let trace = broker
        .tracer()
        .trace_ids()
        .first()
        .copied()
        .ok_or_else(|| invariant("connects recorded a trace"))?;
    let capture = TraceCapture::of(broker.tracer(), broker.metrics(), trace);
    Ok((result, capture))
}

fn run_e4(
    broker: &mut Broker,
    mode: FailureMode,
    users: usize,
) -> Result<E4Result, ExperimentError> {
    let mut sessions = Vec::new();
    for i in 0..users {
        sessions.push(broker.connect(&format!("user-{i}"), "topmodel")?);
    }
    broker.advance(SimDuration::from_secs(200)); // boot

    let victim = broker
        .session(*sessions.first().ok_or_else(|| invariant("at least one session"))?)
        .and_then(|s| s.instance())
        .ok_or_else(|| invariant("first session bound"))?;
    // Give the instance observable traffic so blackholes are detectable.
    for &s in &sessions {
        let _ = broker.run_model(s, SimDuration::from_secs(1800));
    }

    let injected_at = broker.now();
    broker.inject_failure(victim, mode).map_err(|_| invariant("victim instance exists"))?;
    broker.advance(SimDuration::from_secs(600));

    let detection = broker.events().iter().find_map(|e| match e {
        BrokerEvent::FailureDetected { at, instance, signature } if *instance == victim => {
            Some((*at, signature.clone()))
        }
        _ => None,
    });
    let migrated = broker
        .events()
        .iter()
        .filter(|e| matches!(e, BrokerEvent::SessionMigrated { from, .. } if *from == victim))
        .count();
    let lost = sessions
        .iter()
        .filter(|&&s| {
            // A vanished session counts as lost, as does one stuck on the
            // dead instance or out of the Active state.
            broker.session(s).is_none_or(|session| {
                session.state() != SessionState::Active || session.instance() == Some(victim)
            })
        })
        .count();

    Ok(E4Result {
        mode,
        detection_delay: detection.as_ref().map(|(at, _)| at.saturating_since(injected_at)),
        signature: detection.map(|(_, sig)| sig),
        sessions_at_failure: users,
        sessions_migrated: migrated,
        sessions_lost: lost,
    })
}

// ====================================================================
// E5 — §VI: elastic Monte Carlo vs quota-bound cluster
// ====================================================================

/// E5 outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct E5Result {
    /// Independent model runs in the analysis.
    pub runs: usize,
    /// Makespan with elastic (burst-to-public) provisioning.
    pub elastic_makespan: SimDuration,
    /// Makespan under the fixed private quota.
    pub quota_makespan: SimDuration,
    /// Instances the elastic run used.
    pub elastic_instances: usize,
    /// quota_makespan / elastic_makespan.
    pub speedup: f64,
}

/// Runs experiment E5: `runs` independent Monte Carlo model executions of
/// `work` each, elastically vs under a `quota_vcpus` private-only quota.
///
/// # Errors
///
/// Returns an [`ExperimentError`] when provisioning yields no nodes, a
/// job submission is refused, or a job never completes.
pub fn e5_elastic_monte_carlo(
    runs: usize,
    work: SimDuration,
    quota_vcpus: u32,
    seed: u64,
) -> Result<E5Result, ExperimentError> {
    let run_fleet = |elastic: bool| -> Result<(SimDuration, usize), ExperimentError> {
        let mut sim = CloudSim::new(seed);
        sim.register_provider(Provider::private_openstack("campus", quota_vcpus));
        sim.register_provider(Provider::public_aws("aws"));
        let image = MachineImage::streamlined("mc", ["montecarlo"]);
        let image_id = image.id().clone();
        sim.register_image(image);

        let mut compute = if elastic {
            ComputeService::new(PrivateFirst)
        } else {
            ComputeService::new(PrivateOnly)
        };
        compute.register_provider("campus");
        compute.register_provider("aws");

        // One m1.small per concurrent run, capped sensibly.
        let wanted = runs.min(64);
        let template = NodeTemplate::new("m1.small", image_id);
        let nodes = compute.provision_group(&mut sim, &template, wanted);
        if nodes.is_empty() {
            return Err(invariant("at least the quota must provision"));
        }

        let mut jobs = Vec::with_capacity(runs);
        for i in 0..runs {
            let node = nodes[i % nodes.len()];
            jobs.push((node, sim.run_model(node, "montecarlo", work)?));
        }
        // Drive to completion.
        while let Some(t) = sim.next_event_time() {
            sim.advance_to(t);
        }
        let makespan = jobs
            .iter()
            .filter_map(|&(node, job)| {
                sim.instance(node).and_then(|i| i.job(job)).and_then(|j| match j.state() {
                    JobState::Completed { finished } => Some(finished),
                    _ => None,
                })
            })
            .max()
            .map(|t| t.saturating_since(SimTime::ZERO))
            .ok_or_else(|| invariant("all jobs complete"))?;
        Ok((makespan, nodes.len()))
    };

    let (elastic_makespan, elastic_instances) = run_fleet(true)?;
    let (quota_makespan, _) = run_fleet(false)?;
    Ok(E5Result {
        runs,
        elastic_makespan,
        quota_makespan,
        elastic_instances,
        speedup: quota_makespan.as_secs_f64() / elastic_makespan.as_secs_f64().max(1e-9),
    })
}

// ====================================================================
// E6 — §VI: flash crowds, prefetching and pre-bootstrapping
// ====================================================================

/// E6 outcome for one configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct E6Config {
    /// Warm-pool size used.
    pub warm_pool: u32,
    /// Median time from connect to first model result.
    pub median_first_result: SimDuration,
    /// 95th percentile of the same.
    pub p95_first_result: SimDuration,
    /// Total cost of the run.
    pub cost: f64,
}

/// E6 outcome: cold vs pre-bootstrapped.
#[derive(Debug, Clone, PartialEq)]
pub struct E6Result {
    /// Users in the flash crowd.
    pub crowd: usize,
    /// Without pre-bootstrapping.
    pub cold: E6Config,
    /// With a warm pool.
    pub warm: E6Config,
}

/// Runs experiment E6: `crowd` users arrive in one burst; each immediately
/// requests a model run; measured with and without a warm pool.
///
/// # Errors
///
/// Returns an [`ExperimentError`] when the broker refuses a connect.
pub fn e6_flash_crowd(
    crowd: usize,
    warm_pool: u32,
    seed: u64,
) -> Result<E6Result, ExperimentError> {
    e6_flash_crowd_profiled(crowd, warm_pool, seed, &Profiler::disabled())
}

/// [`e6_flash_crowd`] with wall-clock profiling: the cold and warm
/// configurations and their submit/drain phases each run inside a
/// [`Profiler`] span. Observation only — measured results are identical
/// to the unprofiled run.
pub fn e6_flash_crowd_profiled(
    crowd: usize,
    warm_pool: u32,
    seed: u64,
    prof: &Profiler,
) -> Result<E6Result, ExperimentError> {
    let run = |label: &str, pool: u32| -> Result<E6Config, ExperimentError> {
        let _config_span = prof.enter(label);
        let config = BrokerConfig {
            private_capacity_vcpus: 16,
            warm_pool_size: pool,
            ..BrokerConfig::default()
        };
        let mut broker = Broker::new(config, seed);
        // Let the warm pool (if any) boot before the crowd hits.
        broker.advance(SimDuration::from_secs(300));
        let crowd_arrival = broker.now();

        let mut jobs = Vec::new();
        let mut pending: Vec<SessionId> = Vec::new();
        {
            let _submit = prof.enter("e6.submit_wave");
            for i in 0..crowd {
                let s = broker.connect(&format!("flash-{i}"), "topmodel")?;
                match broker.run_model(s, SimDuration::from_secs(60)) {
                    Ok(job) => jobs.push((s, job)),
                    Err(_) => pending.push(s),
                }
            }
        }
        // Waiting sessions submit as soon as they are bound.
        {
            let _drain = prof.enter("e6.drain");
            for _ in 0..240 {
                broker.advance(SimDuration::from_secs(15));
                pending.retain(|&s| match broker.run_model(s, SimDuration::from_secs(60)) {
                    Ok(job) => {
                        jobs.push((s, job));
                        false
                    }
                    Err(_) => true,
                });
            }
        }

        let _collect = prof.enter("e6.collect");
        let mut first_results = Percentiles::new();
        for &(s, job) in &jobs {
            let Some(instance) = broker.session(s).and_then(|x| x.instance()) else { continue };
            if let Some(finished) =
                broker.cloud().instance(instance).and_then(|i| i.job(job)).and_then(|j| {
                    match j.state() {
                        JobState::Completed { finished } => Some(finished),
                        _ => None,
                    }
                })
            {
                first_results.record(finished.saturating_since(crowd_arrival).as_secs_f64());
            }
        }
        Ok(E6Config {
            warm_pool: pool,
            median_first_result: SimDuration::from_secs_f64(
                first_results.median().unwrap_or(f64::MAX.min(1e9)),
            ),
            p95_first_result: SimDuration::from_secs_f64(
                first_results.p95().unwrap_or(f64::MAX.min(1e9)),
            ),
            cost: broker.total_cost(),
        })
    };

    Ok(E6Result { crowd, cold: run("e6.cold", 0)?, warm: run("e6.warm", warm_pool)? })
}

// ====================================================================
// E7 — §IV-D: streamlined vs incubator images
// ====================================================================

/// E7 outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct E7Result {
    /// Launch → first model result, streamlined bundle.
    pub streamlined_first_result: SimDuration,
    /// Launch → first model result, incubator.
    pub incubator_first_result: SimDuration,
    /// Total time for `runs` sequential executions, streamlined.
    pub streamlined_total: SimDuration,
    /// Total time for `runs` sequential executions, incubator.
    pub incubator_total: SimDuration,
}

/// Runs experiment E7: boots one instance from each image kind and runs
/// `runs` sequential model executions of `work` each.
///
/// # Errors
///
/// Returns an [`ExperimentError`] when the launch or a job submission is
/// refused, or a job never completes.
pub fn e7_image_kinds(
    runs: usize,
    work: SimDuration,
    seed: u64,
) -> Result<E7Result, ExperimentError> {
    let measure = |streamlined: bool| -> Result<(SimDuration, SimDuration), ExperimentError> {
        let mut sim = CloudSim::new(seed);
        sim.register_provider(Provider::private_openstack("campus", 8));
        let image = if streamlined {
            MachineImage::streamlined("baked", ["topmodel"])
        } else {
            MachineImage::incubator("incubator")
        };
        let image_id = image.id().clone();
        sim.register_image(image);
        let node = sim.launch("campus", "m1.small", &image_id)?;
        let mut jobs = Vec::new();
        for _ in 0..runs {
            jobs.push(sim.run_model(node, "topmodel", work)?);
        }
        while let Some(t) = sim.next_event_time() {
            sim.advance_to(t);
        }
        let finish = |job| {
            sim.instance(node)
                .and_then(|i| i.job(job))
                .and_then(|j| match j.state() {
                    JobState::Completed { finished } => Some(finished),
                    _ => None,
                })
                .ok_or_else(|| invariant("job completed"))
        };
        let first = finish(*jobs.first().ok_or_else(|| invariant("at least one run"))?)?
            .saturating_since(SimTime::ZERO);
        let mut total = SimTime::ZERO;
        for &j in &jobs {
            total = total.max(finish(j)?);
        }
        Ok((first, total.saturating_since(SimTime::ZERO)))
    };

    let (streamlined_first_result, streamlined_total) = measure(true)?;
    let (incubator_first_result, incubator_total) = measure(false)?;
    Ok(E7Result {
        streamlined_first_result,
        incubator_first_result,
        streamlined_total,
        incubator_total,
    })
}

// ====================================================================
// E8 — §VI: placement-policy swap through the cross-cloud API
// ====================================================================

/// Placement counts per provider for one image kind.
pub type PlacementCounts = BTreeMap<String, usize>;

/// E8 outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct E8Result {
    /// Placements of streamlined nodes under `private-first`.
    pub before_streamlined: PlacementCounts,
    /// Placements of incubator nodes under `private-first`.
    pub before_incubator: PlacementCounts,
    /// Placements of streamlined nodes under `split-by-image-kind`.
    pub after_streamlined: PlacementCounts,
    /// Placements of incubator nodes under `split-by-image-kind`.
    pub after_incubator: PlacementCounts,
}

/// Runs experiment E8: provisions node groups under the default policy,
/// hot-swaps to the paper's alternative, and provisions again — no caller
/// changes.
///
/// # Errors
///
/// Returns [`ExperimentError::Invariant`] when a provisioned node
/// cannot be read back from the simulator.
pub fn e8_policy_swap(nodes_per_kind: usize, seed: u64) -> Result<E8Result, ExperimentError> {
    let build = || {
        let mut sim = CloudSim::new(seed);
        sim.register_provider(Provider::private_openstack("campus", 64));
        sim.register_provider(Provider::public_aws("aws"));
        let baked = MachineImage::streamlined("baked", ["topmodel"]);
        let baked_id = baked.id().clone();
        sim.register_image(baked);
        let inc = MachineImage::incubator("inc");
        let inc_id = inc.id().clone();
        sim.register_image(inc);
        let mut compute = ComputeService::new(PrivateFirst);
        compute.register_provider("campus");
        compute.register_provider("aws");
        (sim, compute, baked_id, inc_id)
    };
    let place = |sim: &mut CloudSim,
                 compute: &mut ComputeService,
                 image: &evop_cloud::ImageId,
                 n: usize|
     -> Result<PlacementCounts, ExperimentError> {
        let template = NodeTemplate::new("m1.small", image.clone());
        let mut counts = PlacementCounts::new();
        for node in compute.provision_group(sim, &template, n) {
            let provider = sim
                .instance(node)
                .ok_or_else(|| invariant("provisioned node exists"))?
                .provider()
                .to_owned();
            *counts.entry(provider).or_insert(0) += 1;
        }
        Ok(counts)
    };

    let (mut sim, mut compute, baked, inc) = build();
    let before_streamlined = place(&mut sim, &mut compute, &baked, nodes_per_kind)?;
    let before_incubator = place(&mut sim, &mut compute, &inc, nodes_per_kind)?;

    let (mut sim, mut compute, baked, inc) = build();
    compute.set_policy(SplitByImageKind);
    let after_streamlined = place(&mut sim, &mut compute, &baked, nodes_per_kind)?;
    let after_incubator = place(&mut sim, &mut compute, &inc, nodes_per_kind)?;

    Ok(E8Result { before_streamlined, before_incubator, after_streamlined, after_incubator })
}

// ====================================================================
// E9 — Fig. 6/§V-B: land-use scenario comparison
// ====================================================================

/// One row of the E9 comparison table.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioRow {
    /// The scenario.
    pub scenario: Scenario,
    /// Which model produced the row.
    pub model: ModelChoice,
    /// Flood metrics against the catchment threshold.
    pub metrics: FloodMetrics,
}

/// E9 outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct E9Result {
    /// All scenario × model rows.
    pub rows: Vec<ScenarioRow>,
    /// `true` when every change scenario moved the peak in the
    /// stakeholder-expected direction under **both** models.
    pub ordering_holds: bool,
}

/// Runs experiment E9: all five scenarios under TOPMODEL and the FUSE
/// ensemble on the given catchment.
///
/// # Errors
///
/// Returns [`ExperimentError::Widget`] when the modelling widget rejects
/// a scenario run, or [`ExperimentError::Invariant`] when a produced row
/// goes missing.
pub fn e9_scenarios(
    catchment: &Catchment,
    days: usize,
    seed: u64,
) -> Result<E9Result, ExperimentError> {
    let evop = Evop::builder().seed(seed).days(days).catchments(vec![catchment.clone()]).build();
    let id = catchment.id().clone();
    let mut widget = evop.modelling_widget(&id);

    let mut rows = Vec::new();
    for model in [ModelChoice::Topmodel, ModelChoice::FuseEnsemble] {
        widget.select_model(model);
        for scenario in Scenario::all() {
            widget.select_scenario(scenario);
            widget.run(format!("{scenario}/{model:?}")).map_err(ExperimentError::Widget)?;
        }
    }
    let comparisons = widget.compare();
    let mut idx = 0;
    for model in [ModelChoice::Topmodel, ModelChoice::FuseEnsemble] {
        for scenario in Scenario::all() {
            rows.push(ScenarioRow { scenario, model, metrics: comparisons[idx].1 });
            idx += 1;
        }
    }

    let mut ordering_holds = true;
    for model in [ModelChoice::Topmodel, ModelChoice::FuseEnsemble] {
        let peak_of = |s: Scenario| -> Result<f64, ExperimentError> {
            rows.iter()
                .find(|r| r.scenario == s && r.model == model)
                .map(|r| r.metrics.peak_m3s)
                .ok_or_else(|| invariant("every scenario × model row was produced"))
        };
        let baseline = peak_of(Scenario::Baseline)?;
        for s in Scenario::change_scenarios() {
            let holds = match s.expected_peak_increase() {
                Some(true) => peak_of(s)? > baseline,
                Some(false) => peak_of(s)? < baseline,
                None => true,
            };
            ordering_holds &= holds;
        }
    }

    Ok(E9Result { rows, ordering_holds })
}

// ====================================================================
// E10 — Fig. 5: multimodal alignment
// ====================================================================

/// E10 outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct E10Result {
    /// Hover samples probed.
    pub probes: usize,
    /// Fraction with a webcam frame within tolerance.
    pub frame_hit_rate: f64,
    /// Mean |frame − hover| lag in seconds over hits.
    pub mean_frame_lag_secs: f64,
    /// Pearson correlation between turbidity and frame murkiness.
    pub murk_turbidity_correlation: f64,
}

/// Runs experiment E10: probes the multimodal widget across the archive
/// and checks sensor/webcam alignment.
///
/// # Errors
///
/// Returns [`ExperimentError::Invariant`] when the built observatory has
/// no webcam archive for its first catchment.
pub fn e10_multimodal(seed: u64) -> Result<E10Result, ExperimentError> {
    let evop = Evop::builder().seed(seed).days(20).build();
    let id = evop.catchments()[0].id().clone();
    let frames =
        evop.webcam_frames(&id).ok_or_else(|| invariant("webcam frames generated"))?.to_vec();
    let widget = MultimodalWidget::new(
        SensorId::new(format!("{id}-temp-1")),
        SensorId::new(format!("{id}-turb-1")),
        frames,
    );

    let mut hits = 0usize;
    let mut lag = Running::new();
    let mut pairs: Vec<(f64, f64)> = Vec::new();
    let probes = 200usize;
    let archive_secs = evop.days() as i64 * 86_400;
    for i in 0..probes {
        let t = evop.start().plus_secs(archive_secs * i as i64 / probes as i64 + 1234);
        let view = widget.at(evop.sos(), t);
        if let (Some(frame), Some(frame_lag)) = (&view.frame, view.frame_lag_secs) {
            hits += 1;
            lag.record(frame_lag as f64);
            if let Some(turbidity) = view.turbidity_ntu {
                pairs.push((turbidity, frame.murkiness()));
            }
        }
    }

    Ok(E10Result {
        probes,
        frame_hit_rate: hits as f64 / probes as f64,
        mean_frame_lag_secs: lag.mean(),
        murk_turbidity_correlation: pearson(&pairs),
    })
}

fn pearson(pairs: &[(f64, f64)]) -> f64 {
    if pairs.len() < 2 {
        return f64::NAN;
    }
    let n = pairs.len() as f64;
    let mean_x = pairs.iter().map(|p| p.0).sum::<f64>() / n;
    let mean_y = pairs.iter().map(|p| p.1).sum::<f64>() / n;
    let cov: f64 = pairs.iter().map(|p| (p.0 - mean_x) * (p.1 - mean_y)).sum();
    let var_x: f64 = pairs.iter().map(|p| (p.0 - mean_x).powi(2)).sum();
    let var_y: f64 = pairs.iter().map(|p| (p.1 - mean_y).powi(2)).sum();
    // Constant series have no correlation; the epsilon guard also turns a
    // NaN variance (NaN inputs) into the NaN result rather than ±huge.
    if var_x.abs() < f64::EPSILON || var_y.abs() < f64::EPSILON {
        return f64::NAN;
    }
    cov / (var_x.sqrt() * var_y.sqrt())
}

// ====================================================================
// E11 — §VI: simulated stakeholder cohorts
// ====================================================================

/// E11 outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct E11Result {
    /// With the portal's help/education features on.
    pub with_help: CohortStats,
    /// With them off ("awareness only", Fig. 7).
    pub without_help: CohortStats,
}

/// Runs experiment E11 on the LEFT storyboard with the paper's workshop
/// composition.
pub fn e11_journeys(cohort_scale: usize, seed: u64) -> E11Result {
    let storyboard = Storyboard::left();
    let cohort = workshop_cohort(cohort_scale);
    E11Result {
        with_help: simulate_cohort(&storyboard, &cohort, &JourneyConfig::default(), seed),
        without_help: simulate_cohort(
            &storyboard,
            &cohort,
            &JourneyConfig { help_enabled: false, max_retries: 2 },
            seed,
        ),
    }
}

// ====================================================================
// E12 — Fig. 4: asset discovery at scale
// ====================================================================

/// Builds a large asset map (`extra_markers` synthetic markers beyond the
/// study catchments' assets) and a set of query viewports.
pub fn e12_setup(extra_markers: usize, seed: u64) -> (AssetMap, Vec<BoundingBox>) {
    let mut map = AssetMap::new();
    let catchments = Catchment::study_catchments();
    for catchment in &catchments {
        map.add_catchment_assets(catchment);
    }
    let mut rng = SimRng::new(seed).fork("e12");
    for i in 0..extra_markers {
        let catchment = &catchments[i % catchments.len()];
        let bbox = catchment.bounding_box();
        let lat = rng.uniform_in(bbox.south_west().lat(), bbox.north_east().lat());
        let lon = rng.uniform_in(bbox.south_west().lon(), bbox.north_east().lon());
        map.add(Marker::new(
            format!("extra-{i}"),
            MarkerKind::PointOfInterest,
            format!("Community report {i}"),
            evop_data::geo::LatLon::new(lat, lon),
            catchment.id().clone(),
        ));
    }
    let queries = catchments.iter().map(Catchment::bounding_box).collect();
    (map, queries)
}

/// Runs the E12 query workload, returning the total hit count (for
/// correctness assertions and to keep the optimiser honest in benches).
pub fn e12_run(map: &AssetMap, queries: &[BoundingBox]) -> usize {
    queries.iter().map(|&q| map.markers_in(q).len()).sum()
}

// ====================================================================
// E13 — §VIII: workflow composition, replay, provenance
// ====================================================================

/// E13 outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct E13Result {
    /// Nodes in the composed workflow.
    pub nodes: usize,
    /// The flood-risk verdict produced by the sink node.
    pub verdict: Value,
    /// Whether replaying reproduced every node's output.
    pub replay_matches: bool,
}

/// Runs experiment E13: composes the paper's example shape — data →
/// model → statistics → report — over real model code, executes it, and
/// replays it for reproducibility.
///
/// # Errors
///
/// Returns [`ExperimentError::Workflow`] when composition, execution or
/// replay fails, and [`ExperimentError::Invariant`] when the observatory
/// is missing the catchment data the workflow was built from.
pub fn e13_workflow(seed: u64) -> Result<E13Result, ExperimentError> {
    let evop = Evop::builder().seed(seed).days(10).build();
    let id = evop.catchments()[0].id().clone();
    let catchment = evop.catchment(&id).ok_or_else(|| invariant("catchment loaded"))?.clone();
    let forcing = evop.forcing(&id).ok_or_else(|| invariant("forcing loaded"))?.clone();
    let threshold = 0.5 * catchment.area_km2();

    let rain_total = forcing.rainfall().sum();
    let widget_forcing = forcing.clone();
    let workflow = Workflow::builder("flood-risk-screen")
        .constant("rainfall_total_mm", json!(rain_total))
        .task("topmodel-run", [] as [&str; 0], move |_| {
            use rand::SeedableRng;
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let dem = catchment.generate_dem(&mut rng);
            let model = evop_models::Topmodel::new(dem.ti_distribution(16), catchment.area_km2());
            let out = model
                .run(&evop_models::TopmodelParams::default(), &widget_forcing)
                .map_err(|e| e.to_string())?;
            Ok(json!(out.discharge_m3s.values()))
        })
        .task("flood-stats", ["topmodel-run"], move |inputs| {
            let series: Vec<f64> = inputs[0]
                .as_array()
                .ok_or("expected hydrograph array")?
                .iter()
                .filter_map(Value::as_f64)
                .collect();
            let peak = series.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let over = series.iter().filter(|&&q| q >= threshold).count();
            Ok(json!({ "peak_m3s": peak, "hours_over_threshold": over }))
        })
        .task("report", ["rainfall_total_mm", "flood-stats"], move |inputs| {
            let at_risk = inputs[1]["hours_over_threshold"].as_u64().unwrap_or(0) > 0;
            Ok(json!({
                "rainfall_mm": inputs[0],
                "peak_m3s": inputs[1]["peak_m3s"],
                "flood_risk": if at_risk { "threshold exceeded" } else { "below threshold" },
            }))
        })
        .build()?;

    let run = workflow.execute()?;
    let replay = workflow.replay(&run)?;
    Ok(E13Result {
        nodes: workflow.len(),
        verdict: run.output("report").ok_or_else(|| invariant("report sink executed"))?.clone(),
        replay_matches: replay.matches(),
    })
}

// ====================================================================
// E14 — Figs. 2–3: storyboard-driven verification
// ====================================================================

/// Runs experiment E14: exercises every LEFT requirement against the live
/// observatory, marking each verified only when its feature actually
/// works, then reports storyboard coverage.
///
/// # Errors
///
/// Returns [`ExperimentError::Storyboard`] when a requirement id the
/// harness verifies is unknown to the LEFT storyboard, and
/// [`ExperimentError::Invariant`] when the webcam archive is missing.
pub fn e14_verify_left(seed: u64) -> Result<(Storyboard, CoverageReport), ExperimentError> {
    let evop = Evop::builder().seed(seed).days(10).build();
    let id = evop.catchments()[0].id().clone();
    let mut storyboard = Storyboard::left();

    // R1: map markers for the catchment.
    if !evop.map().in_catchment(&id).is_empty() {
        storyboard.verify("R1")?;
    }
    // R2: live data present.
    if evop.sos().latest(&SensorId::new(format!("{id}-stage-outlet"))).is_some() {
        storyboard.verify("R2")?;
    }
    // R3: historical window query.
    let window = evop.sos().get_observation(&evop_services::sos::GetObservation {
        procedure: SensorId::new(format!("{id}-rain-1")),
        begin: evop.start().plus_days(2),
        end: evop.start().plus_days(4),
        max_results: None,
    });
    if window.map(|w| w.len()).unwrap_or(0) > 0 {
        storyboard.verify("R3")?;
    }
    // R4: multimodal alignment.
    let widget = MultimodalWidget::new(
        SensorId::new(format!("{id}-temp-1")),
        SensorId::new(format!("{id}-turb-1")),
        evop.webcam_frames(&id).ok_or_else(|| invariant("webcam frames generated"))?.to_vec(),
    );
    let view = widget.at(evop.sos(), evop.start().plus_days(5));
    if view.frame.is_some() && view.turbidity_ntu.is_some() {
        storyboard.verify("R4")?;
    }
    // R5–R9: the modelling widget.
    let mut modelling = evop.modelling_widget(&id);
    if modelling.run("baseline").is_ok() {
        storyboard.verify("R5")?;
    }
    modelling.select_scenario(Scenario::Afforestation);
    if modelling.scenario() == Scenario::Afforestation {
        storyboard.verify("R6")?;
    }
    if modelling.set_slider("m", 0.03).is_ok() && modelling.set_slider("m", 99.0).is_err() {
        storyboard.verify("R7")?;
    }
    if modelling.run("afforestation").is_ok() && modelling.compare().len() == 2 {
        storyboard.verify("R8")?;
    }
    if modelling.help_text().contains("Afforestation") {
        storyboard.verify("R9")?;
    }

    let coverage = storyboard.coverage();
    Ok((storyboard, coverage))
}

// ====================================================================
// E15 — §IV-D: push vs polling
// ====================================================================

/// E15 outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct E15Result {
    /// Session updates delivered.
    pub updates: usize,
    /// Duplex push traffic.
    pub push: TrafficReport,
    /// 10-second polling traffic.
    pub poll_10s: TrafficReport,
    /// 60-second polling traffic.
    pub poll_60s: TrafficReport,
}

/// Runs experiment E15: replays a session's update stream (as a broker
/// would generate over an hour) through push and polling transports.
pub fn e15_push_vs_poll(updates: usize, seed: u64) -> E15Result {
    let mut rng = SimRng::new(seed).fork("e15");
    let horizon = 3600u64;
    let mut events: Vec<(u64, Value)> = (0..updates)
        .map(|i| {
            let at = rng.index(horizon as usize) as u64;
            (
                at,
                json!({
                    "session": format!("session-{i}"),
                    "instance": format!("i-{:08x}", i),
                    "migration": i % 3 == 0,
                }),
            )
        })
        .collect();
    events.sort_by_key(|&(t, _)| t);

    E15Result {
        updates,
        push: simulate_push(&events, horizon),
        poll_10s: simulate_polling(&events, horizon, 10),
        poll_60s: simulate_polling(&events, horizon, 60),
    }
}

// ====================================================================

#[cfg(test)]
mod tests {
    use super::*;

    // Each experiment also has an integration test at the workspace root;
    // these unit tests only pin the harness mechanics.

    #[test]
    fn e2_shapes() {
        let r = e2_rest_vs_soap(60, 4, 1).expect("e2 runs");
        assert_eq!(r.workflows, 60);
        assert_eq!(r.rest_completed, 60, "statelessness must lose nothing");
        assert_eq!(r.rest_lost_steps, 0);
        assert!(r.soap_lost_sessions > 0, "sticky sessions must die with replicas");
        assert_eq!(r.soap_completed + r.soap_lost_sessions, 60);
    }

    #[test]
    fn e1_traced_matches_untraced() {
        let plain = e1_dataflow(11).expect("e1 runs");
        let (traced, capture) = e1_dataflow_traced(11).expect("traced e1 runs");
        assert_eq!(traced, plain, "observation must not perturb the experiment");

        // One trace, one connected tree: no span dangles off an unknown
        // parent.
        assert_eq!(capture.trace_id, TraceId(0), "root opened first");
        assert!(capture.spans.iter().all(|s| s.trace_id == capture.trace_id));
        for span in &capture.spans {
            if let Some(parent) = span.parent {
                assert!(
                    capture.spans.iter().any(|s| s.span_id == parent),
                    "dangling parent in:\n{}",
                    capture.ascii()
                );
            }
        }
        let names: Vec<&str> = capture.spans.iter().map(|s| s.name.as_str()).collect();
        for expected in [
            "e1.request",
            "broker.connect",
            "session.bind",
            "model.run topmodel",
            "wps.execute topmodel",
        ] {
            assert!(names.contains(&expected), "missing {expected} in {names:?}");
        }
        assert!(names.iter().any(|n| n.starts_with("instance.boot")), "{names:?}");
        assert!(names.iter().any(|n| n.starts_with("http POST")), "{names:?}");
    }

    #[test]
    fn e3_and_e4_traced_capture_session_timelines() {
        let (_, c3) = e3_cloudburst_traced(8, 7).expect("e3 runs");
        assert!(c3.spans.iter().any(|s| s.name == "broker.connect"), "{}", c3.ascii());
        let binds: u64 = ["existing", "provisioned", "warm-pool"]
            .iter()
            .map(|how| {
                c3.metrics["counters"][format!("broker_binds_total{{how={how}}}").as_str()]
                    .as_u64()
                    .unwrap_or(0)
            })
            .sum();
        assert!(binds > 0, "ramp must bind sessions: {}", c3.metrics);

        let (r4, c4) = e4_failure_recovery_traced(FailureMode::Crash, 4, 9).expect("e4 runs");
        assert_eq!(r4.sessions_lost, 0);
        assert!(
            c4.spans.iter().any(|s| s.name == "session.migrate"),
            "victim session's recovery must appear on its timeline:\n{}",
            c4.ascii()
        );
    }

    #[test]
    fn e5_speedup_grows_with_runs() {
        let small = e5_elastic_monte_carlo(8, SimDuration::from_secs(120), 4, 1).expect("runs");
        let large = e5_elastic_monte_carlo(48, SimDuration::from_secs(120), 4, 1).expect("runs");
        assert!(large.speedup > small.speedup, "{} vs {}", large.speedup, small.speedup);
        assert!(large.speedup > 2.0);
    }

    #[test]
    fn e7_streamlined_wins_first_result() {
        let r = e7_image_kinds(3, SimDuration::from_secs(60), 2).expect("e7 runs");
        assert!(r.incubator_first_result > r.streamlined_first_result);
        assert!(r.incubator_total > r.streamlined_total);
    }

    #[test]
    fn e8_policy_actually_flips_placement() {
        let r = e8_policy_swap(4, 3).expect("e8 runs");
        // Default: both kinds fill the private cloud first.
        assert_eq!(r.before_streamlined.get("campus"), Some(&4));
        // After the swap: streamlined to AWS, incubator to campus.
        assert_eq!(r.after_streamlined.get("aws"), Some(&4));
        assert_eq!(r.after_incubator.get("campus"), Some(&4));
    }

    #[test]
    fn e12_queries_hit_all_markers() {
        let (map, queries) = e12_setup(500, 1);
        assert_eq!(map.len(), 524);
        let hits = e12_run(&map, &queries);
        assert!(hits >= 524, "every marker sits in some catchment viewport, got {hits}");
    }

    #[test]
    fn e15_push_dominates() {
        let r = e15_push_vs_poll(20, 4);
        assert_eq!(r.push.messages, 20);
        assert!(r.poll_10s.messages > r.push.messages * 10);
        assert!(r.poll_60s.bytes < r.poll_10s.bytes);
        assert!(r.poll_60s.mean_staleness_secs > r.push.mean_staleness_secs);
    }
}
