//! The observatory facade: one builder that assembles the entire EVOp
//! stack.

use std::collections::BTreeMap;
use std::sync::Arc;

use evop_broker::{Broker, BrokerConfig};
use evop_cache::{
    CacheConfig, CachePolicy, DataVersion, ResultCache, VirtualClock, WpsResultCache,
};
use evop_data::catalog::CatalogError;
use evop_data::catalog::{AccessPolicy, Catalog, DataSource, DatasetMeta};
use evop_data::catchment::CatchmentId;
use evop_data::sensors::{SensorKind, WebcamFrame};
use evop_data::synthetic::{RatingCurve, TruthModel, WeatherGenerator};
use evop_data::{Catchment, SensorId, TimeSeries, Timestamp};
use evop_models::pet::hamon_series;
use evop_models::Forcing;
use evop_portal::processes::register_standard_processes;
use evop_portal::widgets::ModellingWidget;
use evop_portal::AssetMap;
use evop_services::sos::{SosError, SosServer};
use evop_services::wps::WpsServer;
use evop_xcloud::BlobStore;
use parking_lot::Mutex;

use crate::registry::{AssetKind, AssetRegistry, RegistryError};

/// Builder for [`Evop`].
///
/// Everything is seeded: two observatories built with the same settings are
/// identical, which is what makes the experiment suite reproducible.
#[derive(Debug, Clone)]
pub struct EvopBuilder {
    seed: u64,
    start: Timestamp,
    days: usize,
    catchments: Vec<Catchment>,
    broker_config: BrokerConfig,
    cache_config: CacheConfig,
}

impl Default for EvopBuilder {
    fn default() -> EvopBuilder {
        EvopBuilder {
            seed: 42,
            start: Timestamp::from_ymd(2012, 1, 1),
            days: 30,
            catchments: vec![Catchment::morland()],
            broker_config: BrokerConfig::default(),
            // Caching is opt-in: existing callers see identical behaviour
            // until they ask for a policy.
            cache_config: CacheConfig { policy: CachePolicy::Off, ..CacheConfig::default() },
        }
    }
}

impl EvopBuilder {
    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> EvopBuilder {
        self.seed = seed;
        self
    }

    /// Sets the archive start date.
    pub fn start(mut self, start: Timestamp) -> EvopBuilder {
        self.start = start;
        self
    }

    /// Sets the archive length in days.
    ///
    /// # Panics
    ///
    /// Panics if `days` is zero.
    pub fn days(mut self, days: usize) -> EvopBuilder {
        assert!(days > 0, "archive must cover at least one day");
        self.days = days;
        self
    }

    /// Replaces the catchment set.
    ///
    /// # Panics
    ///
    /// Panics if `catchments` is empty.
    pub fn catchments(mut self, catchments: Vec<Catchment>) -> EvopBuilder {
        assert!(!catchments.is_empty(), "at least one catchment is required");
        self.catchments = catchments;
        self
    }

    /// Uses all four study catchments.
    pub fn all_study_catchments(self) -> EvopBuilder {
        self.catchments(Catchment::study_catchments())
    }

    /// Overrides the broker configuration.
    pub fn broker_config(mut self, config: BrokerConfig) -> EvopBuilder {
        self.broker_config = config;
        self
    }

    /// Turns result caching on (or off) for every WPS endpoint.
    pub fn cache_policy(mut self, policy: CachePolicy) -> EvopBuilder {
        self.cache_config.policy = policy;
        self
    }

    /// Overrides the full cache configuration (policy, capacity, TTL,
    /// spill threshold).
    pub fn cache_config(mut self, config: CacheConfig) -> EvopBuilder {
        self.cache_config = config;
        self
    }

    /// Builds the observatory: generates every catchment's synthetic
    /// archive, loads the SOS and WPS services, the asset map, the dataset
    /// catalogue, the XaaS registry and the cloud broker.
    ///
    /// # Panics
    ///
    /// Panics if assembly fails — duplicate asset/dataset ids or an
    /// incomplete default sensor network, which only happens with
    /// conflicting builder input. Use [`EvopBuilder::try_build`] for the
    /// typed-error path.
    pub fn build(self) -> Evop {
        match self.try_build() {
            Ok(evop) => evop,
            // evop-lint: allow(rob-panic) -- documented panicking wrapper; try_build is the typed-error path
            Err(err) => panic!("observatory assembly failed: {err}"),
        }
    }

    /// Fallible [`EvopBuilder::build`]: returns a [`BuildError`] instead
    /// of panicking when the catalogue, registry or sensor network reject
    /// the builder's input.
    ///
    /// # Errors
    ///
    /// [`BuildError::DuplicateAsset`] / [`BuildError::DuplicateDataset`]
    /// on id collisions, [`BuildError::MissingSensorKind`] when a
    /// catchment's default network lacks a kind the archives need, and
    /// [`BuildError::Ingest`] when a generated archive is rejected by the
    /// SOS QC pipeline.
    pub fn try_build(self) -> Result<Evop, BuildError> {
        let n_steps = self.days * 24;
        // The broker owns the stack's shared observability handles; every
        // WPS endpoint (and, via `portal_api`, the REST router) reports
        // into the same tracer and metrics registry, which is what lets
        // one portal request become one connected trace.
        let broker = Broker::new(self.broker_config.clone(), self.seed);
        // The shared result-cache plane (one per observatory, keyed per
        // catchment): under `Off` no plane exists and executes are
        // untouched; under `L1L2` large results spill to a blob tier.
        let cache = if self.cache_config.policy == CachePolicy::Off {
            None
        } else {
            let mut plane = ResultCache::new(self.cache_config.clone());
            if self.cache_config.policy == CachePolicy::L1L2 {
                plane = plane.with_l2(Box::new(BlobStore::new()));
            }
            plane.set_metrics(broker.metrics().clone());
            Some(Arc::new(Mutex::new(plane)))
        };
        let cache_clock = VirtualClock::new();
        let cache_version = DataVersion::new();
        let mut sos = SosServer::new();
        let mut map = AssetMap::new();
        let mut catalog = Catalog::new();
        let mut registry = AssetRegistry::new();
        let mut wps = BTreeMap::new();
        let mut forcings = BTreeMap::new();
        let mut observed = BTreeMap::new();
        let mut stages = BTreeMap::new();
        let mut frames = BTreeMap::new();

        for catchment in &self.catchments {
            let id = catchment.id().clone();
            let generator = WeatherGenerator::for_catchment(catchment, self.seed);
            let truth = TruthModel::for_catchment(catchment, self.seed);

            let rain = generator.rainfall(self.start, 3600, n_steps);
            let air_temp = generator.temperature(self.start, 3600, n_steps);
            let pet = hamon_series(&air_temp, catchment.outlet().lat());
            let discharge = truth.discharge(&rain, &air_temp);
            let stage = truth.stage(&discharge);
            let turbidity = truth.turbidity(&discharge);
            let water_temp = truth.water_temperature(&air_temp);

            // Sensors, archives and webcam frames.
            let sensors = catchment.default_sensors();
            for sensor in &sensors {
                sos.register_sensor(sensor.clone());
                registry.register(
                    AssetKind::Sensor,
                    sensor.id().as_str(),
                    sensor.name(),
                    ["in-situ"],
                )?;
            }
            let by_kind =
                |kind: SensorKind| -> Result<SensorId, BuildError> {
                    sensors.iter().find(|s| s.kind() == kind).map(|s| s.id().clone()).ok_or_else(
                        || BuildError::MissingSensorKind { catchment: id.clone(), kind },
                    )
                };
            // Live feeds pass through the standard QC pipeline on ingestion
            // (suspect samples are archived flagged, not dropped).
            sos.ingest_series_with_qc(&by_kind(SensorKind::RainGauge)?, &rain)?;
            sos.ingest_series_with_qc(&by_kind(SensorKind::RiverLevel)?, &stage)?;
            sos.ingest_series_with_qc(&by_kind(SensorKind::Temperature)?, &water_temp)?;
            sos.ingest_series_with_qc(&by_kind(SensorKind::Turbidity)?, &turbidity)?;
            let camera = by_kind(SensorKind::Webcam)?;
            frames.insert(id.clone(), truth.webcam_frames(&camera, &turbidity, 1800));

            // Map and catalogue.
            map.add_catchment_assets(catchment);
            let end = self.start.plus_days(self.days as i64);
            // Rainfall and stage are open data; turbidity (a commercial
            // water-quality product in the real project) is registered-only
            // — the delegation-over-download policy of paper SIII-B.
            for (suffix, title, kind, access) in [
                ("rainfall", "rainfall", SensorKind::RainGauge, AccessPolicy::Open),
                ("stage", "river stage", SensorKind::RiverLevel, AccessPolicy::Open),
                ("turbidity", "turbidity", SensorKind::Turbidity, AccessPolicy::Registered),
            ] {
                catalog.add(
                    DatasetMeta::builder(
                        format!("{id}-{suffix}"),
                        format!("{} {title}", catchment.name()),
                    )
                    .description(format!(
                        "Hourly {title} archive for {} ({})",
                        catchment.name(),
                        catchment.region()
                    ))
                    .source(DataSource::InSitu)
                    .access(access)
                    .kind(kind)
                    .theme("hydrology")
                    .extent(catchment.bounding_box())
                    .time_range(self.start, end)
                    .build(),
                )?;
            }

            // Model services.
            let forcing = Forcing::new(rain, pet);
            let mut server = WpsServer::new();
            server.set_tracer(broker.tracer().clone());
            server.set_metrics(broker.metrics().clone());
            register_standard_processes(&mut server, catchment, &forcing, self.seed);
            if let Some(plane) = &cache {
                server.set_cache(Arc::new(WpsResultCache::new(
                    plane.clone(),
                    cache_clock.clone(),
                    cache_version.clone(),
                    id.to_string(),
                )));
            }
            registry.register(
                AssetKind::Service,
                format!("wps-{id}"),
                format!("{} WPS endpoint", catchment.name()),
                ["ogc", "wps"],
            )?;
            wps.insert(id.clone(), server);

            forcings.insert(id.clone(), forcing);
            observed.insert(id.clone(), discharge);
            stages.insert(id, stage);
        }

        for model in ["topmodel", "fuse"] {
            registry.register(AssetKind::Model, model, model.to_uppercase(), ["hydrology"])?;
        }

        // Start the cache generation at the freshly-built catalogue's
        // version, so build-time registrations don't read as "updates".
        cache_version.set(catalog.data_version());

        Ok(Evop {
            seed: self.seed,
            start: self.start,
            days: self.days,
            catchments: self.catchments,
            forcings,
            observed,
            stages,
            frames,
            sos,
            wps,
            map,
            catalog,
            registry,
            broker,
            cache,
            cache_clock,
            cache_version,
        })
    }
}

/// Errors assembling an observatory — conflicting builder input, never
/// model behaviour.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// The XaaS registry rejected a duplicate asset registration.
    DuplicateAsset(String),
    /// The dataset catalogue rejected a duplicate dataset id.
    DuplicateDataset(String),
    /// A catchment's default sensor network is missing a kind the
    /// generated archives need.
    MissingSensorKind {
        /// The catchment whose network is incomplete.
        catchment: CatchmentId,
        /// The absent sensor kind.
        kind: SensorKind,
    },
    /// A generated archive was rejected by the SOS QC ingestion pipeline.
    Ingest(String),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::DuplicateAsset(what) => write!(f, "duplicate asset: {what}"),
            BuildError::DuplicateDataset(id) => write!(f, "duplicate dataset id: {id}"),
            BuildError::MissingSensorKind { catchment, kind } => {
                write!(f, "catchment {catchment} has no {kind:?} sensor in its default network")
            }
            BuildError::Ingest(reason) => write!(f, "archive ingestion failed: {reason}"),
        }
    }
}

impl std::error::Error for BuildError {}

impl From<RegistryError> for BuildError {
    fn from(err: RegistryError) -> BuildError {
        BuildError::DuplicateAsset(err.to_string())
    }
}

impl From<CatalogError> for BuildError {
    fn from(err: CatalogError) -> BuildError {
        match err {
            CatalogError::DuplicateId(id) => BuildError::DuplicateDataset(id),
        }
    }
}

impl From<SosError> for BuildError {
    fn from(err: SosError) -> BuildError {
        BuildError::Ingest(err.to_string())
    }
}

/// Errors from dataset downloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DownloadError {
    /// No catalogued dataset with this id.
    UnknownDataset(String),
    /// The dataset requires a registered portal account.
    RegistrationRequired(String),
    /// The dataset may only feed models, never be downloaded raw.
    ComputeOnly(String),
    /// The dataset has no catalogued time range to export.
    Unbounded(String),
}

impl std::fmt::Display for DownloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DownloadError::UnknownDataset(d) => write!(f, "unknown dataset: {d}"),
            DownloadError::RegistrationRequired(d) => {
                write!(f, "dataset {d} requires a registered account")
            }
            DownloadError::ComputeOnly(d) => {
                write!(f, "dataset {d} is compute-only and cannot be downloaded")
            }
            DownloadError::Unbounded(d) => {
                write!(f, "dataset {d} has no catalogued time range")
            }
        }
    }
}

impl std::error::Error for DownloadError {}

/// The assembled observatory.
///
/// See the crate-level example for a typical session.
#[derive(Debug)]
pub struct Evop {
    seed: u64,
    start: Timestamp,
    days: usize,
    catchments: Vec<Catchment>,
    forcings: BTreeMap<CatchmentId, Forcing>,
    observed: BTreeMap<CatchmentId, TimeSeries>,
    stages: BTreeMap<CatchmentId, TimeSeries>,
    frames: BTreeMap<CatchmentId, Vec<WebcamFrame>>,
    sos: SosServer,
    wps: BTreeMap<CatchmentId, WpsServer>,
    map: AssetMap,
    catalog: Catalog,
    registry: AssetRegistry,
    broker: Broker,
    cache: Option<Arc<Mutex<ResultCache>>>,
    cache_clock: VirtualClock,
    cache_version: DataVersion,
}

impl Evop {
    /// Starts building an observatory.
    pub fn builder() -> EvopBuilder {
        EvopBuilder::default()
    }

    /// The master seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Archive start.
    pub fn start(&self) -> Timestamp {
        self.start
    }

    /// Archive length in days.
    pub fn days(&self) -> usize {
        self.days
    }

    /// The loaded catchments.
    pub fn catchments(&self) -> &[Catchment] {
        &self.catchments
    }

    /// A catchment by id.
    pub fn catchment(&self, id: &CatchmentId) -> Option<&Catchment> {
        self.catchments.iter().find(|c| c.id() == id)
    }

    /// The Sensor Observation Service holding every archive.
    pub fn sos(&self) -> &SosServer {
        &self.sos
    }

    /// A catchment's WPS endpoint.
    pub fn wps(&self, id: &CatchmentId) -> Option<&WpsServer> {
        self.wps.get(id)
    }

    /// A catchment's WPS endpoint, mutably (for async executions).
    pub fn wps_mut(&mut self, id: &CatchmentId) -> Option<&mut WpsServer> {
        self.wps.get_mut(id)
    }

    /// The portal asset map.
    pub fn map(&self) -> &AssetMap {
        &self.map
    }

    /// The dataset catalogue.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The XaaS asset registry.
    pub fn registry(&self) -> &AssetRegistry {
        &self.registry
    }

    /// The infrastructure manager.
    pub fn broker(&self) -> &Broker {
        &self.broker
    }

    /// The infrastructure manager, mutably (connect users, advance time).
    pub fn broker_mut(&mut self) -> &mut Broker {
        &mut self.broker
    }

    /// The dataset catalogue, mutably (register datasets, record updates).
    /// Call [`Evop::sync_cache`] afterwards so cached results keyed to the
    /// old data version stop being served.
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// The shared result-cache plane, when a policy other than `Off` was
    /// configured. All catchments' WPS endpoints consult this one plane.
    pub fn cache_plane(&self) -> Option<&Arc<Mutex<ResultCache>>> {
        self.cache.as_ref()
    }

    /// A snapshot of the cache plane's running totals.
    pub fn cache_stats(&self) -> Option<evop_cache::CacheStats> {
        self.cache.as_ref().map(|plane| plane.lock().stats())
    }

    /// Reconciles the cache plane with the rest of the stack: advances the
    /// cache's virtual clock to the broker's `now` (so TTLs expire in step
    /// with simulated time) and, when the catalogue's data version has
    /// moved, bumps the cache generation and sweeps entries keyed to older
    /// versions. Call after advancing the broker or mutating the
    /// catalogue. A no-op when caching is off.
    pub fn sync_cache(&mut self) {
        self.cache_clock.advance_to(self.broker.now());
        let catalog_version = self.catalog.data_version();
        if let Some(plane) = &self.cache {
            if catalog_version > self.cache_version.current() {
                self.cache_version.set(catalog_version);
                plane.lock().invalidate_stale_versions(catalog_version);
            }
            plane.lock().purge_expired(self.cache_clock.now());
        }
    }

    /// The observatory-wide span tracer (shared by router, WPS, broker
    /// and cloud).
    pub fn tracer(&self) -> &evop_obs::Tracer {
        self.broker.tracer()
    }

    /// The observatory-wide metrics registry.
    pub fn metrics(&self) -> &evop_obs::MetricsRegistry {
        self.broker.metrics()
    }

    /// A catchment's meteorological forcing.
    pub fn forcing(&self, id: &CatchmentId) -> Option<&Forcing> {
        self.forcings.get(id)
    }

    /// A catchment's "observed" (truth-model) discharge, m³/s.
    pub fn observed_discharge(&self, id: &CatchmentId) -> Option<&TimeSeries> {
        self.observed.get(id)
    }

    /// A catchment's observed stage, m.
    pub fn observed_stage(&self, id: &CatchmentId) -> Option<&TimeSeries> {
        self.stages.get(id)
    }

    /// A catchment's webcam frame archive.
    pub fn webcam_frames(&self, id: &CatchmentId) -> Option<&[WebcamFrame]> {
        self.frames.get(id).map(Vec::as_slice)
    }

    /// A catchment's rating curve.
    pub fn rating(&self, id: &CatchmentId) -> Option<RatingCurve> {
        self.catchment(id).map(RatingCurve::for_catchment)
    }

    /// Downloads a catalogued dataset as CSV, enforcing its access policy
    /// (the paper's delegation model: compute-only data "can be used in
    /// models and simulations without necessarily giving it away").
    ///
    /// # Errors
    ///
    /// Returns [`DownloadError::UnknownDataset`] for an uncatalogued id,
    /// [`DownloadError::RegistrationRequired`] when an anonymous user asks
    /// for registered data, and [`DownloadError::ComputeOnly`] when the
    /// policy forbids raw download entirely.
    pub fn download_dataset(
        &self,
        dataset: &str,
        registered: bool,
    ) -> Result<String, DownloadError> {
        use evop_data::catalog::AccessPolicy;
        let meta = self
            .catalog
            .get(dataset)
            .ok_or_else(|| DownloadError::UnknownDataset(dataset.to_owned()))?;
        match meta.access() {
            AccessPolicy::Open => {}
            AccessPolicy::Registered if registered => {}
            AccessPolicy::Registered => {
                return Err(DownloadError::RegistrationRequired(dataset.to_owned()));
            }
            AccessPolicy::ComputeOnly => {
                return Err(DownloadError::ComputeOnly(dataset.to_owned()));
            }
        }

        // Dataset ids are "{catchment}-{suffix}"; resolve the backing sensor.
        let (catchment, suffix) = dataset
            .rsplit_once('-')
            .ok_or_else(|| DownloadError::UnknownDataset(dataset.to_owned()))?;
        let sensor_suffix = match suffix {
            "rainfall" => "rain-1",
            "stage" => "stage-outlet",
            "turbidity" => "turb-1",
            _ => return Err(DownloadError::UnknownDataset(dataset.to_owned())),
        };
        let sensor = evop_data::SensorId::new(format!("{catchment}-{sensor_suffix}"));
        let (begin, end) =
            meta.time_range().ok_or_else(|| DownloadError::Unbounded(dataset.to_owned()))?;
        let observations = self
            .sos
            .get_observation(&evop_services::sos::GetObservation {
                procedure: sensor,
                begin,
                end,
                max_results: None,
            })
            .map_err(|_| DownloadError::UnknownDataset(dataset.to_owned()))?;
        let irregular: evop_data::timeseries::IrregularSeries =
            observations.iter().map(|o| (o.time(), o.value())).collect();
        let len = ((end - begin) / 3600) as usize;
        let series =
            irregular.to_regular(begin, 3600, len, evop_data::timeseries::Aggregation::Mean);
        Ok(evop_data::export::to_csv(&series))
    }

    /// Builds the LEFT modelling widget for a catchment.
    ///
    /// # Panics
    ///
    /// Panics if the catchment is not loaded. Use
    /// [`Evop::try_modelling_widget`] for the `Option` path.
    pub fn modelling_widget(&self, id: &CatchmentId) -> ModellingWidget {
        match self.try_modelling_widget(id) {
            Some(widget) => widget,
            // evop-lint: allow(rob-panic) -- documented panicking wrapper; try_modelling_widget is the fallible path
            None => panic!("catchment {id} is not loaded"),
        }
    }

    /// Fallible [`Evop::modelling_widget`]: `None` when the catchment is
    /// not loaded.
    pub fn try_modelling_widget(&self, id: &CatchmentId) -> Option<ModellingWidget> {
        let catchment = self.catchment(id)?.clone();
        let forcing = self.forcings.get(id)?.clone();
        Some(ModellingWidget::new(catchment, forcing, self.seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evop_data::catalog::Query;
    use evop_services::sos::GetObservation;

    fn small() -> Evop {
        Evop::builder().seed(7).days(10).build()
    }

    #[test]
    fn build_loads_archives_into_sos() {
        let evop = small();
        let stage = SensorId::new("morland-stage-outlet");
        assert_eq!(evop.sos().archive_len(&stage), 240, "10 days of hourly stage");
        let latest = evop.sos().latest(&stage).unwrap();
        assert!(latest.value() > 0.0);
    }

    #[test]
    fn catalogue_and_registry_are_populated() {
        let evop = small();
        assert_eq!(evop.catalog().len(), 3);
        assert_eq!(evop.catalog().search(&Query::new().text("rainfall")).len(), 1);
        assert!(evop.registry().len() >= 8);
        assert!(evop.registry().resolve("evop://model/topmodel").is_some());
    }

    #[test]
    fn try_build_returns_the_observatory() {
        let evop = Evop::builder().seed(7).days(10).try_build().expect("default input is valid");
        assert_eq!(evop.catalog().len(), 3);
    }

    #[test]
    fn try_modelling_widget_is_none_for_unknown_catchment() {
        let evop = small();
        assert!(evop.try_modelling_widget(&CatchmentId::new("nowhere")).is_none());
        assert!(evop.try_modelling_widget(&evop.catchments()[0].id().clone()).is_some());
    }

    #[test]
    fn same_seed_same_observatory() {
        let a = small();
        let b = small();
        let id = a.catchments()[0].id().clone();
        assert_eq!(a.observed_discharge(&id), b.observed_discharge(&id));
        assert_eq!(a.webcam_frames(&id), b.webcam_frames(&id));
    }

    #[test]
    fn multi_catchment_build() {
        let evop = Evop::builder().seed(1).days(5).all_study_catchments().build();
        assert_eq!(evop.catchments().len(), 4);
        for catchment in evop.catchments() {
            let id = catchment.id().clone();
            assert!(evop.wps(&id).is_some(), "{id} needs a WPS endpoint");
            assert_eq!(evop.observed_discharge(&id).unwrap().len(), 120);
        }
        // Map has every catchment's assets.
        assert_eq!(evop.map().len(), 24);
    }

    #[test]
    fn wps_runs_against_the_archive_window() {
        let evop = small();
        let id = evop.catchments()[0].id().clone();
        let out = evop.wps(&id).unwrap().execute("topmodel", serde_json::json!({})).unwrap();
        let series = out["hydrograph"]["discharge_m3s"].as_array().unwrap();
        assert_eq!(series.len(), 240);
    }

    #[test]
    fn sos_temporal_queries_work_end_to_end() {
        let evop = small();
        let rain = SensorId::new("morland-rain-1");
        let hits = evop
            .sos()
            .get_observation(&GetObservation {
                procedure: rain,
                begin: evop.start(),
                end: evop.start().plus_days(2),
                max_results: None,
            })
            .unwrap();
        assert_eq!(hits.len(), 48);
    }

    #[test]
    fn wps_broker_and_facade_share_one_observability_plane() {
        let evop = small();
        let id = evop.catchments()[0].id().clone();
        evop.wps(&id).unwrap().execute("topmodel", serde_json::json!({})).unwrap();
        let spans = evop.tracer().finished();
        assert!(
            spans.iter().any(|s| s.name == "wps.execute topmodel"),
            "WPS executions must land in the observatory tracer"
        );
        assert_eq!(
            evop.metrics()
                .counter("wps_executions_total", &[("outcome", "ok"), ("process", "topmodel")]),
            1
        );
    }

    #[test]
    fn cache_policy_serves_repeat_executions_from_l1() {
        let mut evop = Evop::builder().seed(7).days(10).cache_policy(CachePolicy::L1).build();
        let id = evop.catchments()[0].id().clone();
        let first = evop.wps(&id).unwrap().execute("topmodel", serde_json::json!({})).unwrap();
        let second = evop.wps(&id).unwrap().execute("topmodel", serde_json::json!({})).unwrap();
        assert_eq!(first, second);
        let stats = evop.cache_stats().expect("cache is on");
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.l1_hits, 1);
        // The plane reports into the observatory-wide metrics registry.
        assert_eq!(evop.metrics().counter("cache_requests_total", &[("outcome", "hit")]), 1);
        assert_eq!(evop.metrics().counter("cache_requests_total", &[("outcome", "miss")]), 1);
        // New data lands in the catalogue: the cached generation dies.
        evop.catalog_mut().touch_data();
        evop.sync_cache();
        evop.wps(&id).unwrap().execute("topmodel", serde_json::json!({})).unwrap();
        let stats = evop.cache_stats().expect("cache is on");
        assert_eq!(stats.misses, 2, "post-update execute must recompute");
        assert_eq!(stats.stale_invalidated, 1);
    }

    #[test]
    fn cache_off_leaves_the_facade_untouched() {
        let evop = small();
        assert!(evop.cache_plane().is_none());
        assert!(evop.cache_stats().is_none());
    }

    #[test]
    fn widget_is_constructible_from_facade() {
        let evop = small();
        let id = evop.catchments()[0].id().clone();
        let mut widget = evop.modelling_widget(&id);
        let run = widget.run("baseline").unwrap();
        assert_eq!(run.discharge.len(), 240);
    }
}
