//! Golden-output regression for the diurnal tsdb/tail-sampling replay.
//!
//! The committed golden is exactly what `tsdb_report --seed 42 --json`
//! prints: the forecast digest over the two-day diurnal soak, including
//! the FNV hash of the full rollup snapshot and the retained-trace set.
//! If a change shifts any rollup window, governor decision or sampling
//! verdict, this test shows the diff — regenerate with:
//!
//! ```text
//! cargo run -p evop-bench --release --bin tsdb_report -- \
//!     --seed 42 --json > crates/bench/golden/tsdb_diurnal_seed42.json
//! ```

use evop_bench::tsdb::{run_diurnal, DiurnalConfig};

mod common;

const GOLDEN: &str = include_str!("../golden/tsdb_diurnal_seed42.json");

#[test]
fn diurnal_digest_matches_committed_golden() {
    let outcome = run_diurnal(&DiurnalConfig::default());
    let rendered = serde_json::to_string_pretty(&outcome.to_json()).expect("serializable");
    common::assert_matches_golden(
        &rendered,
        GOLDEN,
        "cargo run -p evop-bench --release --bin tsdb_report -- --seed 42 --json \
         > crates/bench/golden/tsdb_diurnal_seed42.json",
    );
}

/// The ISSUE's determinism acceptance: two same-seed runs produce a
/// byte-identical tsdb snapshot and the same retained-trace id set.
#[test]
fn same_seed_runs_are_byte_identical() {
    let config = DiurnalConfig::default();
    let a = run_diurnal(&config);
    let b = run_diurnal(&config);
    assert_eq!(a.tsdb.snapshot_string(), b.tsdb.snapshot_string(), "tsdb snapshots must match");
    assert_eq!(a.sampler.retained_ids(), b.sampler.retained_ids(), "retained traces must match");
    assert_eq!(a.snapshot_fnv(), b.snapshot_fnv());
}

/// The ISSUE's sampling acceptance: in the chaos cell the sampler keeps
/// every errored and every SLO-burning trace while staying under the
/// span budget, and healthy traffic is actually being dropped (the whole
/// point of tail sampling).
#[test]
fn golden_run_retains_all_incident_traces_under_budget() {
    let outcome = run_diurnal(&DiurnalConfig::default());
    let acceptance = outcome.acceptance();
    assert!(acceptance.errored_total > 100, "the burst must produce real errors");
    assert_eq!(
        acceptance.errored_retained, acceptance.errored_total,
        "every errored trace must be retained"
    );
    assert!(acceptance.burning_total > 100, "the availability SLO must burn");
    assert_eq!(
        acceptance.burning_retained, acceptance.burning_total,
        "every SLO-burning trace must be retained"
    );
    assert!(
        outcome.sampler.retained_spans() <= outcome.config.sampler.max_retained_spans,
        "retained spans must stay under the budget"
    );
    let counters = outcome.sampler.counters();
    assert!(
        counters.discarded > counters.decided / 2,
        "most healthy traffic must be dropped ({} of {} decided)",
        counters.discarded,
        counters.decided
    );
    // The governor kept the per-user family bounded despite the crowd.
    assert!(outcome.tsdb.series_dropped() > 0);
}
