//! Golden-output regression for the E6 flash-crowd cache report.
//!
//! The committed golden is exactly what `cache_report --json` prints at
//! the default seed. If a change shifts any TTFR, cost, counter or the
//! coalescing behaviour, this test shows the diff — regenerate with:
//!
//! ```text
//! cargo run -p evop-bench --release --bin cache_report -- --json \
//!     > crates/bench/golden/cache_flash_crowd_seed42.json
//! ```

use evop_bench::cache::flash_crowd_report;

mod common;

const GOLDEN: &str = include_str!("../golden/cache_flash_crowd_seed42.json");

#[test]
fn flash_crowd_report_matches_committed_golden() {
    let report = flash_crowd_report(40, 42);
    common::assert_matches_golden(
        &report.render(),
        GOLDEN,
        "cargo run -p evop-bench --release --bin cache_report -- --json \
         > crates/bench/golden/cache_flash_crowd_seed42.json",
    );
}

#[test]
fn golden_scenario_meets_the_headline_claims() {
    let report = flash_crowd_report(40, 42);
    let co = &report.coalesced;

    // ≥ 90 % of classified requests served without a model run.
    assert!(
        co.served_without_run_ratio() >= 0.9,
        "only {:.1}% of requests avoided a model run",
        100.0 * co.served_without_run_ratio()
    );
    // Exactly one model run led the whole burst.
    assert_eq!(co.misses, 1);
    assert_eq!(co.followers as usize, report.crowd - 1);
    assert_eq!(co.hits as usize, report.crowd, "the repeat wave is all L1 hits");
    assert_eq!(co.coalesced_events, co.followers);

    // Followers beat the warm baseline's median TTFR, strictly.
    let warm_median = report.warm.median_first_result.as_secs_f64();
    assert!(
        co.follower_median_ttfr_secs < warm_median,
        "follower median {}s must beat warm {warm_median}s",
        co.follower_median_ttfr_secs
    );

    // And the run costs less than keeping the warm pool.
    assert!(
        co.cost < report.warm.cost,
        "coalesced cost {} must undercut warm {}",
        co.cost,
        report.warm.cost
    );
}

#[test]
fn same_seed_reruns_are_byte_identical() {
    let a = flash_crowd_report(40, 42);
    let b = flash_crowd_report(40, 42);
    assert_eq!(a.render(), b.render());
}
