//! Integration gate over the *committed* perf baselines: the exact
//! `BENCH_sim.json` / `BENCH_e2e.json` documents at the repo root must
//! pass the regression gate against themselves, and an artificial
//! slowdown beyond the tolerance on any gated metric must fail it.
//! This is the contract the CI `perf` job relies on — the gate's unit
//! tests use synthetic documents, this test uses the real ones.

use serde_json::{json, Value};

use evop_bench::perf::{check_doc, DEFAULT_TOLERANCE};

const BASELINES: [(&str, &str); 2] = [
    ("BENCH_sim.json", include_str!("../../../BENCH_sim.json")),
    ("BENCH_e2e.json", include_str!("../../../BENCH_e2e.json")),
];

fn parse(name: &str, text: &str) -> Value {
    serde_json::from_str(text).unwrap_or_else(|err| panic!("{name} parses as JSON: {err}"))
}

/// Scales every gated metric in the document by `factor` in the
/// *regressing* direction (divides higher-is-better values, multiplies
/// lower-is-better ones) and returns how many metrics were degraded.
fn degrade_gated_metrics(doc: &mut Value, factor: f64) -> usize {
    let mut degraded = 0;
    let benches = doc
        .as_object_mut()
        .and_then(|m| m.get_mut("benchmarks"))
        .and_then(Value::as_object_mut)
        .expect("baseline has a benchmarks object");
    for (_, bench) in benches.iter_mut() {
        let Some(metrics) =
            bench.as_object_mut().and_then(|m| m.get_mut("metrics")).and_then(Value::as_object_mut)
        else {
            continue;
        };
        for (_, metric) in metrics.iter_mut() {
            let Some(map) = metric.as_object_mut() else { continue };
            if map.get("gated").and_then(Value::as_bool) != Some(true) {
                continue;
            }
            let value = map.get("value").and_then(Value::as_f64).expect("gated metric has value");
            let worse = match map.get("direction").and_then(Value::as_str) {
                Some("higher_is_better") => value / factor,
                Some("lower_is_better") => value * factor,
                other => panic!("gated metric has a direction, got {other:?}"),
            };
            map.insert("value".to_owned(), json!(worse));
            degraded += 1;
        }
    }
    degraded
}

#[test]
fn committed_baselines_gate_cleanly_against_themselves() {
    for (name, text) in BASELINES {
        let doc = parse(name, text);
        let report = check_doc(&doc, &doc, DEFAULT_TOLERANCE)
            .unwrap_or_else(|err| panic!("{name} gates: {err}"));
        assert!(report.passed(), "{name} vs itself must pass:\n{}", report.render());
        assert!(report.gated_checked > 0, "{name} must carry at least one gated metric");
        assert!(report.work_checked > 0, "{name} must carry at least one work counter");
    }
}

#[test]
fn artificial_slowdown_beyond_tolerance_fails_the_gate() {
    for (name, text) in BASELINES {
        let baseline = parse(name, text);
        let mut slowed = baseline.clone();
        // 30 % regression on every gated metric, past the 20 % tolerance.
        let degraded = degrade_gated_metrics(&mut slowed, 1.3);
        assert!(degraded > 0, "{name} must have gated metrics to degrade");
        let report = check_doc(&baseline, &slowed, DEFAULT_TOLERANCE)
            .unwrap_or_else(|err| panic!("{name} gates: {err}"));
        assert!(!report.passed(), "{name}: a 30% slowdown must fail the gate");
        assert_eq!(report.failures.len(), degraded, "every degraded metric is reported");
    }
}

#[test]
fn slowdown_within_tolerance_still_passes() {
    for (name, text) in BASELINES {
        let baseline = parse(name, text);
        let mut slowed = baseline.clone();
        // 10 % regression sits inside the 20 % tolerance band.
        let degraded = degrade_gated_metrics(&mut slowed, 1.1);
        assert!(degraded > 0);
        let report = check_doc(&baseline, &slowed, DEFAULT_TOLERANCE)
            .unwrap_or_else(|err| panic!("{name} gates: {err}"));
        assert!(report.passed(), "{name}: a 10% drift must pass:\n{}", report.render());
    }
}
