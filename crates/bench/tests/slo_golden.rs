//! Golden-output regression for the E4 alerting matrix.
//!
//! The committed golden is exactly what
//! `slo_report --cell api-burst --seed 42 --json` prints. If a change
//! shifts any alert transition, burn rate or detection latency, this test
//! shows the diff — regenerate with:
//!
//! ```text
//! cargo run -p evop-bench --release --bin slo_report -- \
//!     --cell api-burst --seed 42 --json \
//!     > crates/bench/golden/slo_api_burst_seed42.json
//! ```

use serde_json::{json, Value};

use evop_bench::slo::{cell_by_name, run_cell, CellOutcome};

mod common;

const GOLDEN: &str = include_str!("../golden/slo_api_burst_seed42.json");

#[test]
fn api_burst_cell_matches_committed_golden() {
    let cell = cell_by_name("api-burst").expect("api-burst cell exists");
    let outcome = run_cell(&cell, 42);
    let cells: Vec<Value> = vec![outcome.to_json()];
    let doc = json!({
        "report": "slo-alerting-matrix",
        "cells": cells,
    });
    let rendered = serde_json::to_string_pretty(&doc).expect("serializable");
    common::assert_matches_golden(
        &rendered,
        GOLDEN,
        "cargo run -p evop-bench --release --bin slo_report -- --cell api-burst --seed 42 --json \
         > crates/bench/golden/slo_api_burst_seed42.json",
    );
}

#[test]
fn golden_cell_detects_every_burst() {
    let cell = cell_by_name("api-burst").expect("api-burst cell exists");
    let outcome = run_cell(&cell, 42);
    assert!(outcome.all_detected(), "bursts: {:?}", outcome.bursts);
    assert!(CellOutcome::mean_detection_secs(&outcome).is_some());
}
