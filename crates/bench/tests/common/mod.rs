//! Shared helpers for the bench crate's golden-output regression tests.

/// Asserts that `rendered` (without its trailing newline) matches the
/// committed golden byte-for-byte, failing with the regeneration command
/// when it drifted.
///
/// Every golden file ends with a newline because it is captured from a
/// binary's stdout; `rendered` is the in-process rendering, so the
/// newline is appended here.
pub fn assert_matches_golden(rendered: &str, golden: &str, regen_command: &str) {
    assert_eq!(
        format!("{rendered}\n"),
        golden,
        "output drifted from the committed golden; if the change is intended, \
         regenerate it with:\n    {regen_command}"
    );
}
