//! Renders causal timelines for the infrastructure experiments — the
//! observability companion to `report`. Each section replays one
//! experiment with tracing joined to the caller's context and prints the
//! resulting span tree plus the headline metrics, without changing any
//! measured result (the harnesses are the same `e{1,3,4}_*` functions).
//!
//! ```sh
//! cargo run -p evop-bench --release --bin trace_report [-- --seed N]
//! ```

use evop_cloud::FailureMode;
use evop_core::experiments::{
    e1_dataflow_traced, e3_cloudburst_traced, e4_failure_recovery_traced, TraceCapture,
};

use evop_bench::cli::CliSpec;

fn main() {
    let spec = CliSpec::new("trace_report", 42);
    let opts = spec.parse_or_exit();
    let seed = opts.seed.unwrap_or_else(|| spec.default_seed());
    println!("======================================================================");
    println!(" EVOp reproduction — trace report (seed {seed})");
    println!("======================================================================");

    let (r1, c1) = e1_dataflow_traced(seed);
    heading("E1 (Fig 1)", "one request, one causal timeline");
    println!("{}", c1.ascii());
    println!(
        "  result: activation {} · job {} · {} push update(s) · peak {:.2} m³/s",
        r1.activation_wait, r1.job_latency, r1.push_updates, r1.peak_m3s
    );
    counters(&c1, &["router_requests_total", "wps_executions_total", "broker_placements_total"]);

    let (r3, c3) = e3_cloudburst_traced(120, seed);
    heading("E3 (§IV-D/§VI)", "first session's timeline across the cloudburst ramp");
    println!("{}", c3.ascii());
    println!(
        "  result: burst at {} · retreat at {} · hybrid cost {:.2}",
        r3.burst_at.map(|t| t.to_string()).unwrap_or_default(),
        r3.retreat_at.map(|t| t.to_string()).unwrap_or_default(),
        r3.hybrid_cost
    );
    counters(
        &c3,
        &[
            "broker_placements_total",
            "broker_cloudbursts_total",
            "broker_scale_downs_total",
            "broker_migrations_total",
        ],
    );

    let (r4, c4) = e4_failure_recovery_traced(FailureMode::Crash, 8, seed);
    heading("E4 (§IV-D)", "victim session's timeline through failure recovery");
    println!("{}", c4.ascii());
    println!(
        "  result: detected as {:?} after {:?} · {} migrated · {} lost",
        r4.signature, r4.detection_delay, r4.sessions_migrated, r4.sessions_lost
    );
    counters(
        &c4,
        &[
            "broker_failures_detected_total",
            "broker_migrations_total",
            "cloud_state_transitions_total",
        ],
    );
}

fn heading(id: &str, claim: &str) {
    println!("\n--- {id}: {claim}");
}

/// Prints every counter series whose name starts with one of `prefixes`.
fn counters(capture: &TraceCapture, prefixes: &[&str]) {
    let Some(counters) = capture.metrics["counters"].as_object() else {
        return;
    };
    for (series, value) in counters {
        if prefixes.iter().any(|p| series.starts_with(p)) {
            println!("  {series} = {value}");
        }
    }
}
