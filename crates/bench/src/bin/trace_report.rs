//! Renders causal timelines for the infrastructure experiments — the
//! observability companion to `report`. Each section replays one
//! experiment with tracing joined to the caller's context and prints the
//! resulting span tree plus the headline metrics, without changing any
//! measured result (the harnesses are the same `e{1,3,4}_*` functions).
//!
//! ```sh
//! cargo run -p evop-bench --release --bin trace_report [-- --seed N]
//! ```
//!
//! `--json` prints one canonical document with every experiment's trace
//! tree, filtered counters and headline results; `--out DIR` also writes
//! each experiment's deterministic trace JSON (`e{1,3,4}.trace.json`).

use std::fs;
use std::path::Path;
use std::process::exit;

use serde_json::{json, Value};

use evop_cloud::FailureMode;
use evop_core::experiments::{
    e1_dataflow_traced, e3_cloudburst_traced, e4_failure_recovery_traced, TraceCapture,
};

use evop_bench::cli::CliSpec;

fn main() {
    let spec = CliSpec::new("trace_report", 42).with_json().with_out();
    let opts = spec.parse_or_exit();
    let seed = opts.seed.unwrap_or_else(|| spec.default_seed());

    let (r1, c1) = e1_dataflow_traced(seed).expect("e1 runs");
    let (r3, c3) = e3_cloudburst_traced(120, seed).expect("e3 runs");
    let (r4, c4) = e4_failure_recovery_traced(FailureMode::Crash, 8, seed).expect("e4 runs");

    const E1_COUNTERS: &[&str] =
        &["router_requests_total", "wps_executions_total", "broker_placements_total"];
    const E3_COUNTERS: &[&str] = &[
        "broker_placements_total",
        "broker_cloudbursts_total",
        "broker_scale_downs_total",
        "broker_migrations_total",
    ];
    const E4_COUNTERS: &[&str] = &[
        "broker_failures_detected_total",
        "broker_migrations_total",
        "cloud_state_transitions_total",
    ];

    if let Some(dir) = &opts.out {
        write_artifacts(Path::new(dir), &[("e1", &c1), ("e3", &c3), ("e4", &c4)]);
    }

    if opts.json {
        let doc = json!({
            "report": "trace-report",
            "seed": seed,
            "experiments": {
                "e1": {
                    "trace": parsed_trace(&c1),
                    "counters": filtered_counters(&c1, E1_COUNTERS),
                    "result": {
                        "activation_wait_secs": r1.activation_wait.as_secs_f64(),
                        "job_latency_secs": r1.job_latency.as_secs_f64(),
                        "push_updates": r1.push_updates,
                        "peak_m3s": r1.peak_m3s,
                    },
                },
                "e3": {
                    "trace": parsed_trace(&c3),
                    "counters": filtered_counters(&c3, E3_COUNTERS),
                    "result": {
                        "burst_at": r3.burst_at.map(|t| t.to_string()),
                        "retreat_at": r3.retreat_at.map(|t| t.to_string()),
                        "hybrid_cost": r3.hybrid_cost,
                    },
                },
                "e4": {
                    "trace": parsed_trace(&c4),
                    "counters": filtered_counters(&c4, E4_COUNTERS),
                    "result": {
                        "signature": r4.signature,
                        "detection_delay_secs": r4.detection_delay.map(|d| d.as_secs_f64()),
                        "sessions_migrated": r4.sessions_migrated,
                        "sessions_lost": r4.sessions_lost,
                    },
                },
            },
        });
        match serde_json::to_string_pretty(&doc) {
            Ok(text) => println!("{text}"),
            Err(err) => {
                eprintln!("serialization failed: {err}");
                exit(1);
            }
        }
        return;
    }

    println!("======================================================================");
    println!(" EVOp reproduction — trace report (seed {seed})");
    println!("======================================================================");

    heading("E1 (Fig 1)", "one request, one causal timeline");
    println!("{}", c1.ascii());
    println!(
        "  result: activation {} · job {} · {} push update(s) · peak {:.2} m³/s",
        r1.activation_wait, r1.job_latency, r1.push_updates, r1.peak_m3s
    );
    counters(&c1, E1_COUNTERS);

    heading("E3 (§IV-D/§VI)", "first session's timeline across the cloudburst ramp");
    println!("{}", c3.ascii());
    println!(
        "  result: burst at {} · retreat at {} · hybrid cost {:.2}",
        r3.burst_at.map(|t| t.to_string()).unwrap_or_default(),
        r3.retreat_at.map(|t| t.to_string()).unwrap_or_default(),
        r3.hybrid_cost
    );
    counters(&c3, E3_COUNTERS);

    heading("E4 (§IV-D)", "victim session's timeline through failure recovery");
    println!("{}", c4.ascii());
    println!(
        "  result: detected as {:?} after {:?} · {} migrated · {} lost",
        r4.signature, r4.detection_delay, r4.sessions_migrated, r4.sessions_lost
    );
    counters(&c4, E4_COUNTERS);
}

fn heading(id: &str, claim: &str) {
    println!("\n--- {id}: {claim}");
}

/// The capture's deterministic trace JSON, parsed for embedding.
fn parsed_trace(capture: &TraceCapture) -> Value {
    serde_json::from_str(&capture.trace_json).unwrap_or(Value::Null)
}

/// The counter series whose names start with one of `prefixes`.
fn filtered_counters(capture: &TraceCapture, prefixes: &[&str]) -> Value {
    let Some(counters) = capture.metrics["counters"].as_object() else {
        return json!({});
    };
    let filtered: serde_json::Map<String, Value> = counters
        .iter()
        .filter(|(series, _)| prefixes.iter().any(|p| series.starts_with(p)))
        .map(|(series, value)| (series.clone(), value.clone()))
        .collect();
    Value::Object(filtered)
}

/// Writes `<name>.trace.json` per experiment — the deterministic trace
/// documents the CI smoke step uploads.
fn write_artifacts(dir: &Path, captures: &[(&str, &TraceCapture)]) {
    if let Err(err) = fs::create_dir_all(dir) {
        eprintln!("cannot create {}: {err}", dir.display());
        exit(1);
    }
    for (name, capture) in captures {
        let path = dir.join(format!("{name}.trace.json"));
        if let Err(err) = fs::write(&path, &capture.trace_json) {
            eprintln!("cannot write {}: {err}", path.display());
            exit(1);
        }
    }
}

/// Prints every counter series whose name starts with one of `prefixes`.
fn counters(capture: &TraceCapture, prefixes: &[&str]) {
    let Some(counters) = capture.metrics["counters"].as_object() else {
        return;
    };
    for (series, value) in counters {
        if prefixes.iter().any(|p| series.starts_with(p)) {
            println!("  {series} = {value}");
        }
    }
}
