//! Regenerates the chaos-plane numbers recorded in EXPERIMENTS.md (the
//! fault-injection halves of E4 and E6): the MTBF soak matrix and the
//! provider-storm scenario, both fully seeded and reproducible.
//!
//! ```sh
//! cargo run -p evop-bench --release --bin chaos_report [-- --seed N]
//! ```
//!
//! `--seed` overrides the storm seed; the soak matrix axes stay fixed so
//! the table remains comparable to the one in EXPERIMENTS.md.

use evop_bench::cli::CliSpec;
use evop_broker::BrokerConfig;
use evop_chaos::{ChaosRunReport, ChaosScenario, FaultSchedule};
use evop_portal::render::table;
use evop_sim::SimDuration;

/// Same axes as `tests/chaos.rs` — this binary prints what the matrix
/// asserts.
const SEEDS: [u64; 8] = [1, 7, 42, 1234, 4242, 9001, 0xDEAD_BEEF, 0xC0FF_EE00];
const MTBFS_SECS: [u64; 3] = [900, 1800, 3600];

fn main() {
    let spec = CliSpec::new("chaos_report", 42);
    let opts = spec.parse_or_exit();
    let storm_seed = opts.seed.unwrap_or_else(|| spec.default_seed());
    println!("======================================================================");
    println!(" EVOp reproduction — chaos report (fault injection, E4/E6)");
    println!("======================================================================");
    matrix();
    storm(storm_seed);
}

fn soak(seed: u64, mtbf_secs: u64) -> ChaosRunReport {
    let config = BrokerConfig {
        private_capacity_vcpus: 16,
        instance_mtbf: Some(SimDuration::from_secs(mtbf_secs)),
        ..BrokerConfig::default()
    };
    ChaosScenario::new(FaultSchedule::named("mtbf-soak"), seed)
        .config(config)
        .sessions(20)
        .duration(SimDuration::from_secs(4 * 3600))
        .run()
}

fn matrix() {
    println!("\n--- E4: MTBF soak matrix (8 seeds × 3 MTBFs, 20 users, 4 h each)");
    let mut rows = Vec::new();
    for mtbf in MTBFS_SECS {
        let reports: Vec<ChaosRunReport> = SEEDS.iter().map(|&s| soak(s, mtbf)).collect();
        let detections: usize = reports.iter().map(|r| r.detections).sum();
        let migrations: usize = reports.iter().map(|r| r.migrations).sum();
        let unserved: usize = reports.iter().map(|r| r.sessions_unserved).sum();
        let lost: usize = reports.iter().map(|r| r.jobs_lost).sum();
        let completed: usize = reports.iter().map(|r| r.jobs_completed).sum();
        let lats: Vec<f64> =
            reports.iter().flat_map(|r| r.detection_latencies_secs.iter().copied()).collect();
        let mean_lat = lats.iter().sum::<f64>() / lats.len().max(1) as f64;
        let max_lat = lats.iter().copied().fold(0.0f64, f64::max);
        let refused: u64 = reports.iter().map(|r| r.submits.transient_refusals).sum();
        let recovered: u64 = reports.iter().map(|r| r.submits.recovered).sum();
        rows.push(vec![
            format!("{} min", mtbf / 60),
            detections.to_string(),
            migrations.to_string(),
            format!("{mean_lat:.0} s / {max_lat:.0} s"),
            format!("{recovered}/{refused}"),
            format!("{completed}/{lost}"),
            unserved.to_string(),
        ]);
    }
    println!(
        "{}",
        table(
            &[
                "MTBF",
                "detections",
                "migrations",
                "detect lat (mean/max)",
                "retry ok/refused",
                "jobs done/lost",
                "unserved",
            ],
            &rows,
        )
    );
}

fn storm(seed: u64) {
    println!("\n--- E6: provider storm (declarative schedule, seed {seed})");
    let config = BrokerConfig {
        private_capacity_vcpus: 4,
        instance_mtbf: Some(SimDuration::from_secs(1800)),
        ..BrokerConfig::default()
    };
    let report = ChaosScenario::new(FaultSchedule::provider_storm(), seed)
        .config(config)
        .sessions(20)
        .duration(SimDuration::from_secs(2 * 3600))
        .run();
    println!("  chaos faults fired        : {}", report.chaos_faults_fired);
    println!("  failures detected         : {}", report.detections);
    println!("  sessions migrated         : {}", report.migrations);
    println!("  sessions requeued         : {}", report.requeues);
    println!("  provisioning faults       : {}", report.provision_faults);
    println!("  backoff skips             : {}", report.backoff_skips);
    println!("  provisioning retries ok   : {}", report.retry_successes);
    println!(
        "  submits ok/transient/hard : {}/{}/{}",
        report.submits.accepted, report.submits.transient_refusals, report.submits.hard_failures
    );
    match report.retry_success_rate() {
        Some(rate) => println!("  user retry success rate   : {:.0} %", rate * 100.0),
        None => println!("  user retry success rate   : n/a (no refusals)"),
    }
    println!("  jobs completed/lost       : {}/{}", report.jobs_completed, report.jobs_lost);
    println!("  sessions unserved at end  : {}", report.sessions_unserved);
    println!("  canonical log             : {} bytes", report.canonical_log().len());
}
