//! Regenerates the chaos-plane numbers recorded in EXPERIMENTS.md (the
//! fault-injection halves of E4 and E6): the MTBF soak matrix and the
//! provider-storm scenario, both fully seeded and reproducible.
//!
//! ```sh
//! cargo run -p evop-bench --release --bin chaos_report [-- --seed N]
//! ```
//!
//! `--seed` overrides the storm seed; the soak matrix axes stay fixed so
//! the table remains comparable to the one in EXPERIMENTS.md. `--json`
//! prints one canonical document with the matrix rows and storm outcome;
//! `--out DIR` also writes the storm's canonical chaos+broker event log
//! (`storm-<seed>.log.json`) and metrics artifacts.

use std::fs;
use std::path::Path;
use std::process::exit;

use serde_json::{json, Value};

use evop_bench::cli::CliSpec;
use evop_broker::BrokerConfig;
use evop_chaos::{ChaosRunReport, ChaosScenario, FaultSchedule};
use evop_portal::render::table;
use evop_sim::SimDuration;

/// Same axes as `tests/chaos.rs` — this binary prints what the matrix
/// asserts.
const SEEDS: [u64; 8] = [1, 7, 42, 1234, 4242, 9001, 0xDEAD_BEEF, 0xC0FF_EE00];
const MTBFS_SECS: [u64; 3] = [900, 1800, 3600];

fn main() {
    let spec = CliSpec::new("chaos_report", 42).with_json().with_out();
    let opts = spec.parse_or_exit();
    let storm_seed = opts.seed.unwrap_or_else(|| spec.default_seed());

    let matrix_rows = matrix_rows();
    let storm_report = storm_run(storm_seed);

    if let Some(dir) = &opts.out {
        write_artifacts(Path::new(dir), storm_seed, &storm_report);
    }

    if opts.json {
        let doc = json!({
            "report": "chaos-report",
            "storm_seed": storm_seed,
            "matrix": matrix_rows.iter().map(MatrixRow::to_json).collect::<Vec<Value>>(),
            "storm": storm_json(&storm_report),
        });
        match serde_json::to_string_pretty(&doc) {
            Ok(text) => println!("{text}"),
            Err(err) => {
                eprintln!("serialization failed: {err}");
                exit(1);
            }
        }
        return;
    }

    println!("======================================================================");
    println!(" EVOp reproduction — chaos report (fault injection, E4/E6)");
    println!("======================================================================");
    print_matrix(&matrix_rows);
    print_storm(storm_seed, &storm_report);
}

/// One aggregated soak-matrix row (all seeds at one MTBF).
struct MatrixRow {
    mtbf_secs: u64,
    detections: usize,
    migrations: usize,
    mean_detect_secs: f64,
    max_detect_secs: f64,
    retries_recovered: u64,
    retries_refused: u64,
    jobs_completed: usize,
    jobs_lost: usize,
    unserved: usize,
}

impl MatrixRow {
    fn to_json(&self) -> Value {
        json!({
            "mtbf_secs": self.mtbf_secs,
            "detections": self.detections,
            "migrations": self.migrations,
            "mean_detect_secs": self.mean_detect_secs,
            "max_detect_secs": self.max_detect_secs,
            "retries_recovered": self.retries_recovered,
            "retries_refused": self.retries_refused,
            "jobs_completed": self.jobs_completed,
            "jobs_lost": self.jobs_lost,
            "unserved": self.unserved,
        })
    }
}

fn soak(seed: u64, mtbf_secs: u64) -> ChaosRunReport {
    let config = BrokerConfig {
        private_capacity_vcpus: 16,
        instance_mtbf: Some(SimDuration::from_secs(mtbf_secs)),
        ..BrokerConfig::default()
    };
    ChaosScenario::new(FaultSchedule::named("mtbf-soak"), seed)
        .config(config)
        .sessions(20)
        .duration(SimDuration::from_secs(4 * 3600))
        .run()
}

fn matrix_rows() -> Vec<MatrixRow> {
    MTBFS_SECS
        .iter()
        .map(|&mtbf| {
            let reports: Vec<ChaosRunReport> = SEEDS.iter().map(|&s| soak(s, mtbf)).collect();
            let lats: Vec<f64> =
                reports.iter().flat_map(|r| r.detection_latencies_secs.iter().copied()).collect();
            MatrixRow {
                mtbf_secs: mtbf,
                detections: reports.iter().map(|r| r.detections).sum(),
                migrations: reports.iter().map(|r| r.migrations).sum(),
                mean_detect_secs: lats.iter().sum::<f64>() / lats.len().max(1) as f64,
                max_detect_secs: lats.iter().copied().fold(0.0f64, f64::max),
                retries_recovered: reports.iter().map(|r| r.submits.recovered).sum(),
                retries_refused: reports.iter().map(|r| r.submits.transient_refusals).sum(),
                jobs_completed: reports.iter().map(|r| r.jobs_completed).sum(),
                jobs_lost: reports.iter().map(|r| r.jobs_lost).sum(),
                unserved: reports.iter().map(|r| r.sessions_unserved).sum(),
            }
        })
        .collect()
}

fn print_matrix(rows: &[MatrixRow]) {
    println!("\n--- E4: MTBF soak matrix (8 seeds × 3 MTBFs, 20 users, 4 h each)");
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            vec![
                format!("{} min", row.mtbf_secs / 60),
                row.detections.to_string(),
                row.migrations.to_string(),
                format!("{:.0} s / {:.0} s", row.mean_detect_secs, row.max_detect_secs),
                format!("{}/{}", row.retries_recovered, row.retries_refused),
                format!("{}/{}", row.jobs_completed, row.jobs_lost),
                row.unserved.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &[
                "MTBF",
                "detections",
                "migrations",
                "detect lat (mean/max)",
                "retry ok/refused",
                "jobs done/lost",
                "unserved",
            ],
            &cells,
        )
    );
}

fn storm_run(seed: u64) -> ChaosRunReport {
    let config = BrokerConfig {
        private_capacity_vcpus: 4,
        instance_mtbf: Some(SimDuration::from_secs(1800)),
        ..BrokerConfig::default()
    };
    ChaosScenario::new(FaultSchedule::provider_storm(), seed)
        .config(config)
        .sessions(20)
        .duration(SimDuration::from_secs(2 * 3600))
        .run()
}

fn storm_json(report: &ChaosRunReport) -> Value {
    json!({
        "chaos_faults_fired": report.chaos_faults_fired,
        "detections": report.detections,
        "migrations": report.migrations,
        "requeues": report.requeues,
        "provision_faults": report.provision_faults,
        "backoff_skips": report.backoff_skips,
        "retry_successes": report.retry_successes,
        "submits": {
            "accepted": report.submits.accepted,
            "transient_refusals": report.submits.transient_refusals,
            "hard_failures": report.submits.hard_failures,
        },
        "retry_success_rate": report.retry_success_rate(),
        "jobs_completed": report.jobs_completed,
        "jobs_lost": report.jobs_lost,
        "sessions_unserved": report.sessions_unserved,
        "canonical_log_bytes": report.canonical_log().len(),
    })
}

fn print_storm(seed: u64, report: &ChaosRunReport) {
    println!("\n--- E6: provider storm (declarative schedule, seed {seed})");
    println!("  chaos faults fired        : {}", report.chaos_faults_fired);
    println!("  failures detected         : {}", report.detections);
    println!("  sessions migrated         : {}", report.migrations);
    println!("  sessions requeued         : {}", report.requeues);
    println!("  provisioning faults       : {}", report.provision_faults);
    println!("  backoff skips             : {}", report.backoff_skips);
    println!("  provisioning retries ok   : {}", report.retry_successes);
    println!(
        "  submits ok/transient/hard : {}/{}/{}",
        report.submits.accepted, report.submits.transient_refusals, report.submits.hard_failures
    );
    match report.retry_success_rate() {
        Some(rate) => println!("  user retry success rate   : {:.0} %", rate * 100.0),
        None => println!("  user retry success rate   : n/a (no refusals)"),
    }
    println!("  jobs completed/lost       : {}/{}", report.jobs_completed, report.jobs_lost);
    println!("  sessions unserved at end  : {}", report.sessions_unserved);
    println!("  canonical log             : {} bytes", report.canonical_log().len());
}

/// Writes the storm's canonical event log and metrics artifacts — the
/// byte string that defines "the same run" for golden-trace regression.
fn write_artifacts(dir: &Path, seed: u64, report: &ChaosRunReport) {
    if let Err(err) = fs::create_dir_all(dir) {
        eprintln!("cannot create {}: {err}", dir.display());
        exit(1);
    }
    let snapshot = serde_json::to_string_pretty(&report.metrics_snapshot)
        .unwrap_or_else(|_| String::from("{}"));
    for (name, body) in [
        (format!("storm-{seed}.log.json"), report.canonical_log().to_owned()),
        (format!("storm-{seed}.snapshot.json"), snapshot),
        (format!("storm-{seed}.prom"), report.prometheus.clone()),
    ] {
        let path = dir.join(name);
        if let Err(err) = fs::write(&path, body) {
            eprintln!("cannot write {}: {err}", path.display());
            exit(1);
        }
    }
}
