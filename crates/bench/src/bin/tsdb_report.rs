//! Diurnal tsdb/tail-sampling report: forecast-ready rollups from a soak.
//!
//! Replays the multi-day diurnal portal load (flash crowd at noon on the
//! final day, API error burst mid-crowd) with every registry tick
//! ingested into the embedded time-series store and every finished trace
//! judged by the tail sampler. `--json` prints the canonical digest the
//! golden test pins; `--out DIR` also writes the full tsdb snapshot, the
//! retained-trace set and the Prometheus rollup expositions. `--days N`
//! shortens or lengthens the soak (the golden runs the default).

use std::fs;
use std::path::Path;
use std::process::exit;

use evop_bench::cli::CliSpec;
use evop_bench::tsdb::{run_diurnal, DiurnalConfig, DiurnalOutcome};
use evop_obs::{prometheus_rollup_text, Resolution};

fn main() {
    let spec = CliSpec::new("tsdb_report", 42).with_json().with_out().with_value(
        "days",
        "N",
        "virtual days to soak (default 2)",
    );
    let opts = spec.parse_or_exit();

    let mut config = DiurnalConfig { seed: opts.seed.unwrap_or(42), ..DiurnalConfig::default() };
    if let Some(days) = opts.value("days") {
        match days.parse::<u64>() {
            Ok(days) if days > 0 => config.days = days,
            _ => {
                eprintln!("--days takes a positive integer, got {days:?}");
                exit(2);
            }
        }
    }

    let outcome = run_diurnal(&config);

    if let Some(dir) = &opts.out {
        write_artifacts(Path::new(dir), &outcome);
    }

    if opts.json {
        match serde_json::to_string_pretty(&outcome.to_json()) {
            Ok(text) => println!("{text}"),
            Err(err) => {
                eprintln!("serialization failed: {err}");
                exit(1);
            }
        }
        return;
    }

    print_tables(&outcome);
}

/// Writes the artifacts the CI job uploads: the full rollup snapshot,
/// the retained-trace set and one Prometheus exposition per resolution.
fn write_artifacts(dir: &Path, outcome: &DiurnalOutcome) {
    if let Err(err) = fs::create_dir_all(dir) {
        eprintln!("cannot create {}: {err}", dir.display());
        exit(1);
    }
    let seed = outcome.config.seed;
    let files = [
        (format!("tsdb-{seed}.snapshot.json"), outcome.tsdb.snapshot_string()),
        (format!("tsdb-{seed}.retained.json"), outcome.sampler.to_json().to_string()),
        (
            format!("tsdb-{seed}.minute.prom"),
            prometheus_rollup_text(&outcome.tsdb, Resolution::Minute),
        ),
        (format!("tsdb-{seed}.hour.prom"), prometheus_rollup_text(&outcome.tsdb, Resolution::Hour)),
    ];
    for (name, contents) in files {
        let path = dir.join(&name);
        if let Err(err) = fs::write(&path, contents) {
            eprintln!("cannot write {}: {err}", path.display());
            exit(1);
        }
    }
}

fn print_tables(outcome: &DiurnalOutcome) {
    let doc = outcome.to_json();
    println!(
        "tsdb_report — seed {} — {} day(s), {} resident + {} crowd sessions",
        outcome.config.seed,
        outcome.config.days,
        outcome.config.sessions,
        outcome.config.crowd_sessions,
    );
    println!(
        "requests: {} attempts ({} ok, {} transient, {} hard), {} faults fired",
        doc["requests"]["attempts"],
        doc["requests"]["ok"],
        doc["requests"]["transient"],
        doc["requests"]["hard"],
        outcome.faults_fired,
    );
    println!(
        "tsdb: {} series ({} label-sets collapsed), snapshot fnv {}",
        outcome.tsdb.series_count(),
        outcome.tsdb.series_dropped(),
        outcome.snapshot_fnv(),
    );
    let counters = outcome.sampler.counters();
    println!(
        "sampler: {} traces decided, {} retained ({} spans), {} discarded",
        counters.decided,
        outcome.sampler.retained_ids().len(),
        outcome.sampler.retained_spans(),
        counters.discarded,
    );
    let acceptance = outcome.acceptance();
    println!(
        "acceptance: errored {}/{} retained, burning {}/{} retained",
        acceptance.errored_retained,
        acceptance.errored_total,
        acceptance.burning_retained,
        acceptance.burning_total,
    );
    println!("\nhourly submissions (sum per hour window):");
    if let Some(points) = doc["forecast"]["submit_hourly"].as_array() {
        for point in points {
            let hour = point["start_ms"].as_u64().unwrap_or(0) / 3_600_000;
            let sum = point["sum"].as_f64().unwrap_or(0.0);
            let bar = "#".repeat((sum / 5.0).min(60.0) as usize);
            println!("  h{hour:>3}  {sum:>7.0}  {bar}");
        }
    }
}
