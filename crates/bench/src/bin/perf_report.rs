//! Runs the fixed perf suite and maintains the machine-readable perf
//! trajectory (`BENCH_sim.json` / `BENCH_e2e.json` at the repo root).
//!
//! ```sh
//! # Measure and print (best-of-N throughput, p50/p99, work counters):
//! cargo run -p evop-bench --release --bin perf_report
//! # Refresh the committed baselines after an intentional perf change:
//! cargo run -p evop-bench --release --bin perf_report -- --update-baseline
//! # CI regression gate (exit 1 on >20% regression of any gated metric):
//! cargo run -p evop-bench --release --bin perf_report -- --check
//! ```
//!
//! The gate tolerance can be widened for noisy runners with
//! `--tolerance 0.35` or the `EVOP_PERF_TOLERANCE` environment variable
//! (the flag wins).

use std::fs;
use std::path::{Path, PathBuf};
use std::process::exit;

use evop_bench::cli::CliSpec;
use evop_bench::perf::{
    check_doc, median, quantile, run_e2e_suite, run_sim_suite, suite_doc, BenchRun, DEFAULT_REPS,
    DEFAULT_TOLERANCE,
};
use serde_json::{json, Value};

/// The committed baseline files, relative to the repo root.
const SUITES: [(&str, &str); 2] = [("sim", "BENCH_sim.json"), ("e2e", "BENCH_e2e.json")];

fn repo_root() -> PathBuf {
    // crates/bench/ → repo root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| Path::new(env!("CARGO_MANIFEST_DIR")).join("../.."))
}

fn run_suite(suite: &str, seed: u64, reps: usize) -> Vec<BenchRun> {
    match suite {
        "sim" => run_sim_suite(seed, reps),
        _ => run_e2e_suite(seed, reps),
    }
}

fn print_tables(suite: &str, runs: &[BenchRun]) {
    println!("── suite {suite} ──────────────────────────────────────────");
    for run in runs {
        let p50 = median(&run.reps_secs) * 1e3;
        let p99 = quantile(&run.reps_secs, 0.99) * 1e3;
        println!(
            "  {}  (reps {}, p50 {:.2} ms, p99 {:.2} ms)",
            run.name,
            run.reps_secs.len(),
            p50,
            p99
        );
        for (name, metric) in &run.metrics {
            let gate = if metric.gated { "gated" } else { "     " };
            println!("    {gate}  {name:<way$} {:>14.2} {}", metric.value, metric.unit, way = 24);
        }
        for (name, value) in &run.work {
            println!("    work   {name:<24} {value:>14}");
        }
    }
}

fn write_artifacts(dir: &str, docs: &[(String, Value)], runs: &[(&str, Vec<BenchRun>)]) {
    let dir = Path::new(dir);
    if let Err(e) = fs::create_dir_all(dir) {
        eprintln!("cannot create {}: {e}", dir.display());
        exit(1);
    }
    for (file, doc) in docs {
        let path = dir.join(file);
        if let Err(e) = fs::write(&path, render_doc(doc)) {
            eprintln!("cannot write {}: {e}", path.display());
            exit(1);
        }
        println!("wrote {}", path.display());
    }
    for (_, suite_runs) in runs {
        for run in suite_runs {
            if let Some(folded) = &run.folded {
                let path = dir.join(format!("{}.folded", run.name));
                if let Err(e) = fs::write(&path, folded) {
                    eprintln!("cannot write {}: {e}", path.display());
                    exit(1);
                }
                println!("wrote {}", path.display());
            }
        }
    }
}

fn render_doc(doc: &Value) -> String {
    let mut text = serde_json::to_string_pretty(doc).expect("suite doc serialises");
    text.push('\n');
    text
}

fn gate_tolerance(flag: Option<&str>) -> f64 {
    let from_env = std::env::var("EVOP_PERF_TOLERANCE").ok();
    let raw = flag.map(str::to_owned).or(from_env);
    match raw {
        None => DEFAULT_TOLERANCE,
        Some(raw) => match raw.parse::<f64>() {
            Ok(t) if t > 0.0 && t < 10.0 => t,
            _ => {
                eprintln!("bad tolerance {raw:?}: expected a fraction like 0.2");
                exit(2);
            }
        },
    }
}

fn main() {
    let spec = CliSpec::new("perf_report", 42)
        .with_json()
        .with_out()
        .with_switch(
            "check",
            "compare a fresh run against the committed baselines (exit 1 on regression)",
        )
        .with_switch("update-baseline", "rewrite BENCH_sim.json / BENCH_e2e.json at the repo root")
        .with_value("reps", "N", "timed repetitions per benchmark (default 5, best-of-N)")
        .with_value(
            "tolerance",
            "T",
            "gate tolerance as a fraction (default 0.20; env EVOP_PERF_TOLERANCE)",
        );
    let opts = spec.parse_or_exit();
    let seed = opts.seed.unwrap_or_else(|| spec.default_seed());
    let reps = match opts.value("reps").map(str::parse::<usize>) {
        None => DEFAULT_REPS,
        Some(Ok(n)) if n > 0 => n,
        Some(_) => {
            eprintln!("bad --reps: expected a positive integer");
            exit(2);
        }
    };
    let tolerance = gate_tolerance(opts.value("tolerance"));
    let root = repo_root();

    let mut docs: Vec<(String, Value)> = Vec::new();
    let mut all_runs: Vec<(&str, Vec<BenchRun>)> = Vec::new();
    for (suite, file) in SUITES {
        let runs = run_suite(suite, seed, reps);
        docs.push((file.to_owned(), suite_doc(suite, seed, reps, &runs)));
        all_runs.push((suite, runs));
    }

    if opts.switch("check") {
        let mut passed = true;
        for (file, fresh) in &docs {
            let path = root.join(file);
            let baseline: Value = match fs::read_to_string(&path) {
                Ok(text) => match serde_json::from_str(&text) {
                    Ok(doc) => doc,
                    Err(e) => {
                        eprintln!("{}: not valid JSON: {e}", path.display());
                        exit(1);
                    }
                },
                Err(e) => {
                    eprintln!("{}: cannot read committed baseline: {e}", path.display());
                    exit(1);
                }
            };
            match check_doc(&baseline, fresh, tolerance) {
                Ok(report) => {
                    print!("{file}: {}", report.render());
                    passed &= report.passed();
                }
                Err(message) => {
                    eprintln!("{file}: {message}");
                    passed = false;
                }
            }
        }
        if let Some(dir) = opts.out.as_deref() {
            write_artifacts(dir, &docs, &all_runs);
        }
        exit(if passed { 0 } else { 1 });
    }

    if opts.switch("update-baseline") {
        for (file, doc) in &docs {
            let path = root.join(file);
            if let Err(e) = fs::write(&path, render_doc(doc)) {
                eprintln!("cannot write {}: {e}", path.display());
                exit(1);
            }
            println!("updated {}", path.display());
        }
    }

    if opts.json {
        let combined: Value = json!({ "sim": docs[0].1, "e2e": docs[1].1 });
        println!("{}", serde_json::to_string_pretty(&combined).expect("doc serialises"));
    } else {
        for (suite, runs) in &all_runs {
            print_tables(suite, runs);
        }
    }

    if let Some(dir) = opts.out.as_deref() {
        write_artifacts(dir, &docs, &all_runs);
    }
}
