//! Regenerates every experiment's headline numbers in one pass — the
//! "harness that prints the same rows/series the paper reports". The
//! output of this binary is what EXPERIMENTS.md records.
//!
//! ```sh
//! cargo run -p evop-bench --release --bin report [-- --seed N]
//! ```

use evop_cloud::FailureMode;
use evop_core::experiments::*;
use evop_data::Catchment;
use evop_portal::render::table;
use evop_sim::SimDuration;

use evop_bench::cli::CliSpec;

fn main() {
    let spec = CliSpec::new("report", 42);
    let opts = spec.parse_or_exit();
    let seed = opts.seed.unwrap_or_else(|| spec.default_seed());
    println!("======================================================================");
    println!(" EVOp reproduction — experiment report (seed {seed})");
    println!("======================================================================");

    e1(seed);
    e2(seed);
    e3(seed);
    e4(seed);
    e5(seed);
    e6(seed);
    e7(seed);
    e8(seed);
    e9(seed);
    e10(seed);
    e11(seed);
    e12(seed);
    e13(seed);
    e14(seed);
    e15(seed);
}

fn heading(id: &str, claim: &str) {
    println!("\n--- {id}: {claim}");
}

fn e1(seed: u64) {
    heading("E1 (Fig 1)", "user request flows portal → broker → cloud → model → hydrograph");
    let r = e1_dataflow(seed).expect("e1 runs");
    println!("  session activation wait : {}", r.activation_wait);
    println!("  model-run latency       : {}", r.job_latency);
    println!("  push updates to browser : {}", r.push_updates);
    println!("  hydrograph peak         : {:.2} m³/s", r.peak_m3s);
}

fn e2(seed: u64) {
    heading("E2 (§IV-B)", "stateless REST survives replica failure; stateful SOAP does not");
    let r = e2_rest_vs_soap(500, 4, seed).expect("e2 runs");
    println!(
        "{}",
        table(
            &["style", "workflows", "completed", "lost"],
            &[
                vec![
                    "REST (stateless)".into(),
                    r.workflows.to_string(),
                    r.rest_completed.to_string(),
                    r.rest_lost_steps.to_string(),
                ],
                vec![
                    "SOAP (stateful)".into(),
                    r.workflows.to_string(),
                    r.soap_completed.to_string(),
                    r.soap_lost_sessions.to_string(),
                ],
            ],
        )
    );
}

fn e3(seed: u64) {
    heading(
        "E3 (§IV-D/§VI)",
        "cloudburst on private saturation, retreat on underuse, cheaper than all-public",
    );
    let r = e3_cloudburst(120, seed).expect("e3 runs");
    println!(
        "  burst at                : {}",
        r.burst_at.map(|t| t.to_string()).unwrap_or_default()
    );
    println!(
        "  retreat complete at     : {}",
        r.retreat_at.map(|t| t.to_string()).unwrap_or_default()
    );
    let peak_public = r.timeline.iter().map(|s| s.public_instances).max().unwrap_or(0);
    println!("  peak public instances   : {peak_public}");
    println!("  hybrid cost             : ${:.2}", r.hybrid_cost);
    println!(
        "  all-public equivalent   : ${:.2}  ({:.1}x)",
        r.all_public_equivalent_cost,
        r.all_public_equivalent_cost / r.hybrid_cost
    );
    println!("  provider-mix timeline (every 20 min):");
    for sample in r.timeline.iter().step_by(20) {
        println!(
            "    {}  sessions {:>3}  private {:>2}  public {:>2}",
            sample.at, sample.sessions, sample.private_instances, sample.public_instances
        );
    }
}

fn e4(seed: u64) {
    heading("E4 (§IV-D)", "failure signatures detected; users migrated; zero sessions lost");
    let rows: Vec<Vec<String>> =
        [FailureMode::Hang, FailureMode::NetworkBlackhole, FailureMode::Crash]
            .into_iter()
            .map(|mode| {
                let r = e4_failure_recovery(mode, 6, seed).expect("e4 runs");
                vec![
                    mode.to_string(),
                    r.signature.clone().unwrap_or_default(),
                    r.detection_delay.map(|d| d.to_string()).unwrap_or_default(),
                    format!("{}/{}", r.sessions_migrated, r.sessions_at_failure),
                    r.sessions_lost.to_string(),
                ]
            })
            .collect();
    println!("{}", table(&["mode", "signature", "detection", "migrated", "lost"], &rows));
}

fn e5(seed: u64) {
    heading("E5 (§VI)", "elastic IaaS vs fixed quota for Monte Carlo uncertainty analysis");
    let rows: Vec<Vec<String>> = [4usize, 16, 64, 200]
        .into_iter()
        .map(|runs| {
            let r = e5_elastic_monte_carlo(runs, SimDuration::from_secs(300), 4, seed)
                .expect("e5 runs");
            vec![
                runs.to_string(),
                r.quota_makespan.to_string(),
                r.elastic_makespan.to_string(),
                r.elastic_instances.to_string(),
                format!("{:.1}x", r.speedup),
            ]
        })
        .collect();
    println!("{}", table(&["runs", "quota (4 vCPU)", "elastic", "instances", "speedup"], &rows));
}

fn e6(seed: u64) {
    heading("E6 (§VI)", "flash crowd: pre-bootstrapping cuts time-to-first-result at bounded cost");
    let r = e6_flash_crowd(40, 4, seed).expect("e6 runs");
    println!(
        "{}",
        table(
            &["config", "median first result", "p95 first result", "cost"],
            &[
                vec![
                    "cold start".into(),
                    r.cold.median_first_result.to_string(),
                    r.cold.p95_first_result.to_string(),
                    format!("${:.2}", r.cold.cost),
                ],
                vec![
                    format!("warm pool = {}", r.warm.warm_pool),
                    r.warm.median_first_result.to_string(),
                    r.warm.p95_first_result.to_string(),
                    format!("${:.2}", r.warm.cost),
                ],
            ],
        )
    );
}

fn e7(seed: u64) {
    heading("E7 (§IV-D)", "streamlined bundles beat incubator images on time-to-serve");
    let r = e7_image_kinds(5, SimDuration::from_secs(120), seed).expect("e7 runs");
    println!(
        "{}",
        table(
            &["image kind", "first result", "5 runs total"],
            &[
                vec![
                    "streamlined".into(),
                    r.streamlined_first_result.to_string(),
                    r.streamlined_total.to_string(),
                ],
                vec![
                    "incubator".into(),
                    r.incubator_first_result.to_string(),
                    r.incubator_total.to_string(),
                ],
            ],
        )
    );
}

fn e8(seed: u64) {
    heading("E8 (§VI)", "placement-policy swap through the cross-cloud API (no caller changes)");
    let r = e8_policy_swap(6, seed).expect("e8 runs");
    let fmt = |c: &PlacementCounts| {
        c.iter().map(|(p, n)| format!("{p}:{n}")).collect::<Vec<_>>().join(" ")
    };
    println!(
        "{}",
        table(
            &["policy", "streamlined nodes", "incubator nodes"],
            &[
                vec!["private-first".into(), fmt(&r.before_streamlined), fmt(&r.before_incubator)],
                vec![
                    "split-by-image-kind".into(),
                    fmt(&r.after_streamlined),
                    fmt(&r.after_incubator),
                ],
            ],
        )
    );
}

fn e9(seed: u64) {
    heading("E9 (Fig 6/§V-B)", "land-use scenarios order flood peaks as stakeholders expect");
    let r = e9_scenarios(&Catchment::morland(), 30, seed).expect("e9 runs");
    let rows: Vec<Vec<String>> = r
        .rows
        .iter()
        .map(|row| {
            vec![
                row.scenario.to_string(),
                format!("{:?}", row.model),
                format!("{:.2}", row.metrics.peak_m3s),
                format!("{:.0}", row.metrics.volume_m3),
                row.metrics.steps_over_threshold.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        table(&["scenario", "model", "peak m³/s", "volume m³", "h over threshold"], &rows)
    );
    println!("  expected ordering holds under both models: {}", r.ordering_holds);
}

fn e10(seed: u64) {
    heading("E10 (Fig 5)", "multimodal widget aligns sensors and webcam frames");
    let r = e10_multimodal(seed).expect("e10 runs");
    println!("  probes                   : {}", r.probes);
    println!("  frame hit rate           : {:.1} %", r.frame_hit_rate * 100.0);
    println!("  mean frame lag           : {:.0} s", r.mean_frame_lag_secs);
    println!("  murk–turbidity correlation: {:.2}", r.murk_turbidity_correlation);
}

fn e11(seed: u64) {
    heading("E11 (§VI)", "simulated workshops reproduce '>75 % found it useful and easy'");
    let r = e11_journeys(50, seed);
    let fmt = |s: &evop_portal::journey::CohortStats| {
        vec![
            format!("{}", s.users),
            format!("{:.0} %", s.completion_rate * 100.0),
            format!("{:.0} %", s.useful_rate * 100.0),
            format!("{:.0} %", s.easy_rate * 100.0),
            format!("{:.0} %", s.useful_and_easy_rate * 100.0),
        ]
    };
    let mut with_help = vec!["education on".to_string()];
    with_help.extend(fmt(&r.with_help));
    let mut without = vec!["awareness only (Fig 7)".to_string()];
    without.extend(fmt(&r.without_help));
    println!(
        "{}",
        table(
            &["condition", "users", "completed", "useful", "easy", "useful & easy"],
            &[with_help, without],
        )
    );
}

fn e12(seed: u64) {
    heading("E12 (Fig 4)", "asset discovery over the map's grid index");
    for extra in [100usize, 1000, 10_000] {
        let (map, queries) = e12_setup(extra, seed);
        // evop-lint: allow(det-wallclock) -- measures real elapsed time of a deterministic workload; the timing is reported, never fed back into results
        let start = std::time::Instant::now();
        let mut hits = 0;
        let reps = 100;
        for _ in 0..reps {
            hits = e12_run(&map, &queries);
        }
        let per_query = start.elapsed().as_secs_f64() / (reps * queries.len()) as f64;
        println!(
            "  {:>6} markers: {} hits over {} viewports, {:.1} µs/viewport query",
            map.len(),
            hits,
            queries.len(),
            per_query * 1e6
        );
    }
}

fn e13(seed: u64) {
    heading("E13 (§VIII)", "workflow composition with provenance and deterministic replay");
    let r = e13_workflow(seed).expect("e13 runs");
    println!("  nodes                : {}", r.nodes);
    println!("  verdict              : {}", r.verdict);
    println!("  replay reproduces all: {}", r.replay_matches);
}

fn e14(seed: u64) {
    heading("E14 (Figs 2-3)", "storyboard steps verified against live features");
    let (storyboard, coverage) = e14_verify_left(seed).expect("e14 runs");
    println!(
        "  {} steps, {} verified ({:.0} %)",
        coverage.steps,
        coverage.steps_verified,
        coverage.verified_fraction() * 100.0
    );
    for req in storyboard.requirements() {
        println!("    [{}] {} — {}", req.status(), req.id(), req.description());
    }
}

fn e15(seed: u64) {
    heading("E15 (§IV-D)", "WebSocket push vs periodic polling for session updates");
    let r = e15_push_vs_poll(30, seed);
    let fmt = |name: &str, t: &evop_services::push::TrafficReport| {
        vec![
            name.to_string(),
            t.messages.to_string(),
            t.bytes.to_string(),
            format!("{:.1} s", t.mean_staleness_secs),
        ]
    };
    println!(
        "{}",
        table(
            &["transport", "messages", "bytes", "mean staleness"],
            &[
                fmt("duplex push", &r.push),
                fmt("poll @ 10 s", &r.poll_10s),
                fmt("poll @ 60 s", &r.poll_60s),
            ],
        )
    );
}
