//! Prints the ablation tables over the reproduction's design choices.
//!
//! ```sh
//! cargo run -p evop-bench --release --bin ablations
//! ```

use evop_core::ablations::*;
use evop_portal::render::table;
use evop_sim::SimDuration;

const SEED: u64 = 42;

fn main() {
    println!("======================================================================");
    println!(" EVOp reproduction — ablation studies (seed {SEED})");
    println!("======================================================================");

    a1();
    a2();
    a3();
    a4();
    a5();
}

fn a1() {
    println!("\n--- A1: Load Balancer health-check cadence");
    println!("(detection = interval × consecutive; false positives must stay 0)");
    let rows = ablate_health_check(
        &[SimDuration::from_secs(5), SimDuration::from_secs(15), SimDuration::from_secs(60)],
        &[2, 3, 5],
        SEED,
    )
    .expect("a1 runs");
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.check_interval.to_string(),
                r.consecutive.to_string(),
                r.detection_delay.map(|d| d.to_string()).unwrap_or_else(|| "—".into()),
                r.false_positives.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        table(&["check interval", "consecutive", "hang detected after", "false positives"], &body)
    );
}

fn a2() {
    println!("\n--- A2: warm-pool size vs time-to-first-result (40-user flash crowd)");
    let rows = ablate_warm_pool(40, &[0, 2, 4, 8], SEED).expect("a2 runs");
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.warm_pool.to_string(),
                r.median_first_result.to_string(),
                r.p95_first_result.to_string(),
                format!("${:.2}", r.cost),
            ]
        })
        .collect();
    println!("{}", table(&["warm pool", "median TTFR", "p95 TTFR", "cost"], &body));
}

fn a3() {
    println!("\n--- A3: private-cloud size vs burst depth (80-user ramp)");
    let rows = ablate_private_capacity(&[4, 8, 16, 32], SEED).expect("a3 runs");
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.private_vcpus.to_string(),
                r.peak_public_instances.to_string(),
                format!("${:.2}", r.cost),
            ]
        })
        .collect();
    println!("{}", table(&["private vCPUs", "peak public instances", "cost"], &body));
}

fn a4() {
    println!("\n--- A4: topographic-index discretisation (vs 64-class reference)");
    let rows = ablate_ti_bins(&[2, 4, 8, 16, 32], SEED).expect("a4 runs");
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.bins.to_string(),
                format!("{:.3}", r.peak_m3s),
                format!("{:.4}", r.nse_vs_reference),
            ]
        })
        .collect();
    println!("{}", table(&["TI classes", "peak m³/s", "NSE vs 64-class"], &body));
}

fn a5() {
    println!("\n--- A5: replica count vs stateful session loss (one replica killed)");
    let rows = ablate_replicas(&[2, 3, 4, 8, 16], 1000, SEED).expect("a5 runs");
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.replicas.to_string(),
                format!("{:.1} %", r.soap_loss_rate * 100.0),
                format!("{:.1} %", r.rest_loss_rate * 100.0),
            ]
        })
        .collect();
    println!("{}", table(&["replicas", "SOAP sessions lost", "REST workflows lost"], &body));
}
