//! E6 flash-crowd cache report: cold vs warm vs coalesced.
//!
//! Runs the 40-user single-burst flash crowd three ways — no warm pool,
//! a warm pool of 4, and a warm pool of 1 behind the `evop-cache`
//! coalescing plane — and reports time-to-first-result and cost for
//! each. `--json` prints the canonical machine-readable document the
//! golden test pins (regenerate with
//! `cargo run -p evop-bench --release --bin cache_report -- --json >
//! crates/bench/golden/cache_flash_crowd_seed42.json`); `--out DIR` also
//! writes the metrics snapshot artifact CI uploads.

use std::fs;
use std::path::Path;
use std::process::exit;

use evop_bench::cache::{flash_crowd_report, CacheReport};
use evop_bench::cli::CliSpec;

/// Crowd size of the pinned scenario.
const CROWD: usize = 40;

fn main() {
    let spec = CliSpec::new("cache_report", 42).with_json().with_out();
    let opts = spec.parse_or_exit();
    let seed = opts.seed.unwrap_or(spec.default_seed());

    let report = flash_crowd_report(CROWD, seed);

    if let Some(dir) = &opts.out {
        write_artifacts(Path::new(dir), &report);
    }

    if opts.json {
        println!("{}", report.render());
        return;
    }

    print_tables(&report);
}

/// Writes `cache-<seed>.report.json` — the artifact the CI job uploads.
fn write_artifacts(dir: &Path, report: &CacheReport) {
    if let Err(err) = fs::create_dir_all(dir) {
        eprintln!("cannot create {}: {err}", dir.display());
        exit(1);
    }
    let path = dir.join(format!("cache-{}.report.json", report.seed));
    if let Err(err) = fs::write(&path, format!("{}\n", report.render())) {
        eprintln!("cannot write {}: {err}", path.display());
        exit(1);
    }
}

fn print_tables(report: &CacheReport) {
    let co = &report.coalesced;
    println!(
        "E6 flash crowd ({} users, seed {}) — cache plane comparison",
        report.crowd, report.seed
    );
    println!();
    println!(
        "{:<12} {:>9} {:>13} {:>11} {:>9}",
        "config", "warm_pool", "median_ttfr_s", "p95_ttfr_s", "cost_usd"
    );
    for (name, pool, median, p95, cost) in [
        (
            "cold",
            report.cold.warm_pool,
            report.cold.median_first_result.as_secs_f64(),
            report.cold.p95_first_result.as_secs_f64(),
            report.cold.cost,
        ),
        (
            "warm",
            report.warm.warm_pool,
            report.warm.median_first_result.as_secs_f64(),
            report.warm.p95_first_result.as_secs_f64(),
            report.warm.cost,
        ),
        (
            "coalesced",
            co.warm_pool,
            co.follower_median_ttfr_secs,
            co.follower_p95_ttfr_secs,
            co.cost,
        ),
    ] {
        println!("{name:<12} {pool:>9} {median:>13.0} {p95:>11.0} {cost:>9.4}");
    }
    println!();
    println!(
        "coalesced: {} requests = {} miss + {} followers + {} L1 hits ({:.1}% served without a model run)",
        co.requests,
        co.misses,
        co.followers,
        co.hits,
        100.0 * co.served_without_run_ratio(),
    );
    println!(
        "leader TTFR {:.0}s; repeat wave served at age {:.0}s; {} coalesce events in the broker log",
        co.leader_ttfr_secs, co.hit_age_secs, co.coalesced_events,
    );
    println!(
        "crossover: follower median beats warm baseline by {:.0}s; cost saving vs warm ${:.4}",
        report.warm.median_first_result.as_secs_f64() - co.follower_median_ttfr_secs,
        report.warm.cost - co.cost,
    );
}
