//! E4 alerting-matrix report: alert detection latency per fault burst.
//!
//! Runs every cell of the SLO alerting matrix (or one cell with `--cell`)
//! across the matrix seeds (or one seed with `--seed`) and reports, for
//! every injected fault burst, which SLO alert detected it and how many
//! virtual seconds after the burst opened. `--json` prints the canonical
//! machine-readable document the golden test pins; `--out DIR` also
//! writes each run's metrics snapshot and Prometheus exposition.

use std::fs;
use std::path::Path;
use std::process::exit;

use serde_json::{json, Value};

use evop_bench::cli::CliSpec;
use evop_bench::slo::{e4_alerting_matrix, run_cell, CellOutcome, MATRIX_SEEDS};

fn main() {
    let spec = CliSpec::new("slo_report", 42).with_json().with_cell().with_out();
    let opts = spec.parse_or_exit();

    let cells = match &opts.cell {
        Some(name) => {
            let all = e4_alerting_matrix();
            let found: Vec<_> = all.into_iter().filter(|c| c.name == *name).collect();
            if found.is_empty() {
                eprintln!("unknown cell {name:?}; cells:");
                for cell in e4_alerting_matrix() {
                    eprintln!("  {}", cell.name);
                }
                exit(2);
            }
            found
        }
        None => e4_alerting_matrix(),
    };
    let seeds: Vec<u64> = match opts.seed {
        Some(seed) => vec![seed],
        None => MATRIX_SEEDS.to_vec(),
    };

    let mut outcomes: Vec<CellOutcome> = Vec::new();
    for cell in &cells {
        for &seed in &seeds {
            outcomes.push(run_cell(cell, seed));
        }
    }

    if let Some(dir) = &opts.out {
        write_artifacts(Path::new(dir), &outcomes);
    }

    if opts.json {
        let doc = json!({
            "report": "slo-alerting-matrix",
            "cells": outcomes.iter().map(CellOutcome::to_json).collect::<Vec<Value>>(),
        });
        match serde_json::to_string_pretty(&doc) {
            Ok(text) => println!("{text}"),
            Err(err) => {
                eprintln!("serialization failed: {err}");
                exit(1);
            }
        }
        return;
    }

    print_tables(&outcomes);
}

/// Writes `<cell>-<seed>.snapshot.json` and `<cell>-<seed>.prom` per run —
/// the artifacts the CI smoke step uploads.
fn write_artifacts(dir: &Path, outcomes: &[CellOutcome]) {
    if let Err(err) = fs::create_dir_all(dir) {
        eprintln!("cannot create {}: {err}", dir.display());
        exit(1);
    }
    for outcome in outcomes {
        let stem = format!("{}-{}", outcome.cell, outcome.seed);
        let snapshot = serde_json::to_string_pretty(&outcome.report.metrics_snapshot)
            .unwrap_or_else(|_| String::from("{}"));
        for (name, body) in [
            (format!("{stem}.snapshot.json"), snapshot),
            (format!("{stem}.prom"), outcome.report.prometheus.clone()),
        ] {
            let path = dir.join(name);
            if let Err(err) = fs::write(&path, body) {
                eprintln!("cannot write {}: {err}", path.display());
                exit(1);
            }
        }
    }
}

fn print_tables(outcomes: &[CellOutcome]) {
    println!("E4 SLO alerting matrix — alert detection latency in virtual time");
    println!();
    println!(
        "{:<14} {:>6} {:<16} {:<8} {:>9} {:>6} {:<26} {:>11}",
        "cell", "seed", "burst", "target", "start_s", "dur_s", "detected by", "latency_s"
    );
    let mut detected = 0usize;
    let mut total = 0usize;
    for outcome in outcomes {
        for burst in &outcome.bursts {
            total += 1;
            let (slo, latency) = match (&burst.slo, burst.detection_latency_secs) {
                (Some(slo), Some(lat)) => {
                    detected += 1;
                    (slo.clone(), format!("{lat:.0}"))
                }
                _ => (String::from("— MISSED —"), String::from("-")),
            };
            println!(
                "{:<14} {:>6} {:<16} {:<8} {:>9} {:>6} {:<26} {:>11}",
                outcome.cell,
                outcome.seed,
                burst.kind,
                burst.target,
                burst.start_secs,
                burst.duration_secs,
                slo,
                latency
            );
        }
    }
    println!();
    for outcome in outcomes {
        let mean =
            outcome.mean_detection_secs().map_or_else(|| String::from("-"), |v| format!("{v:.0}"));
        let max =
            outcome.max_detection_secs().map_or_else(|| String::from("-"), |v| format!("{v:.0}"));
        println!(
            "cell {:<14} seed {:<6} alerts {:>3}  mean detection {mean:>5}s  max {max:>5}s",
            outcome.cell,
            outcome.seed,
            outcome.report.alerts.len(),
        );
    }
    println!();
    println!("bursts detected: {detected}/{total}");
    if detected < total {
        println!("WARNING: some bursts fired no alert — the health plane missed them");
    }
}
