//! The perf plane: a fixed benchmark suite, a machine-readable baseline
//! document, and a pure regression gate.
//!
//! `perf_report` runs two suites: `sim` (the event-loop microbench,
//! ladder-vs-heap queue scaling at 10⁵–10⁷ events, whole-tick batch
//! drain, and Monte Carlo calibration both sequential and seed-split
//! parallel) and `e2e` (the E1 portal request and E6 flash crowd).
//! Each benchmark gets one untimed warmup plus `N`
//! timed repetitions each, and records best-of-N throughput (see
//! [`best`]), p50/p99 wall latencies over the reps, per-stage profile
//! trees, deterministic work counters and an environment stamp into
//! `BENCH_sim.json` / `BENCH_e2e.json` at the repo root.
//!
//! The gate ([`check_doc`]) is a pure function over two such documents:
//! it fails any *gated* metric that regressed by more than `tolerance`
//! (direction-aware, default [`DEFAULT_TOLERANCE`]) and any deterministic
//! work counter that drifted at all — counter drift means the workload
//! itself changed and the baselines must be regenerated, not excused.
//!
//! Wall-clock readings live only here and in `evop_obs::profile`; nothing
//! in this module feeds the golden virtual-time documents.

use std::collections::BTreeMap;

use evop_core::experiments::{e1_dataflow_profiled, e6_flash_crowd_profiled};
use evop_models::calibrate::{monte_carlo, par_monte_carlo, ParamSpace};
use evop_obs::Profiler;
use evop_sim::reference::HeapQueue;
use evop_sim::{EventQueue, SimRng, SimTime};
use serde_json::{json, Map, Value};

/// Default timed repetitions per benchmark (gated metrics use best-of-N).
pub const DEFAULT_REPS: usize = 5;

/// Default relative regression tolerance for gated metrics (20%).
pub const DEFAULT_TOLERANCE: f64 = 0.20;

/// Events scheduled per event-loop rep.
const EVENT_LOOP_EVENTS: usize = 100_000;
/// Monte Carlo draws per calibration rep — sized so one rep takes tens of
/// milliseconds: long enough to average over scheduler contention bursts,
/// short enough that the whole suite stays under a second.
const MONTE_CARLO_SAMPLES: usize = 200_000;
/// Flash-crowd size for the E6 benchmark.
const E6_CROWD: usize = 40;
/// Warm-pool size for the E6 benchmark.
const E6_WARM_POOL: u32 = 4;

/// Times one closure invocation, returning `(elapsed seconds, result)`.
///
/// The perf plane is the one place in the workspace that reads the wall
/// clock on purpose: its whole job is measuring real elapsed time, and
/// its output never enters golden virtual-time documents.
fn time<R>(f: impl FnOnce() -> R) -> (f64, R) {
    // evop-lint: allow(det-wallclock) -- the perf harness measures real elapsed wall time by design; its output never feeds golden virtual-time documents
    let start = std::time::Instant::now();
    let out = f();
    (start.elapsed().as_secs_f64(), out)
}

/// Whether a bigger number is an improvement or a regression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Throughput-style metrics: a drop is a regression.
    HigherIsBetter,
    /// Latency-style metrics: a rise is a regression.
    LowerIsBetter,
}

impl Direction {
    fn as_str(self) -> &'static str {
        match self {
            Direction::HigherIsBetter => "higher_is_better",
            Direction::LowerIsBetter => "lower_is_better",
        }
    }

    fn parse(s: &str) -> Option<Direction> {
        match s {
            "higher_is_better" => Some(Direction::HigherIsBetter),
            "lower_is_better" => Some(Direction::LowerIsBetter),
            _ => None,
        }
    }
}

/// One reported measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// The measured value.
    pub value: f64,
    /// Human unit, e.g. `"events/s"` or `"ms"`.
    pub unit: &'static str,
    /// Which way is better.
    pub direction: Direction,
    /// `true` if the CI gate compares this metric against the baseline.
    pub gated: bool,
}

/// One benchmark's outcome: timings, derived metrics, deterministic work
/// counters, and (for the end-to-end benches) the wall-clock profile.
#[derive(Debug, Clone)]
pub struct BenchRun {
    /// Benchmark name (the key in the suite document).
    pub name: &'static str,
    /// Per-repetition wall seconds, in run order.
    pub reps_secs: Vec<f64>,
    /// Derived metrics keyed by name.
    pub metrics: BTreeMap<&'static str, Metric>,
    /// Deterministic work counters — pure functions of the workload, so
    /// the gate compares them exactly; any drift means the workload
    /// changed and the baselines are stale.
    pub work: BTreeMap<&'static str, u64>,
    /// Wall-clock profile tree (`evop_obs::ProfileReport::to_json`), when
    /// the benchmark runs under a profiler.
    pub profile: Option<Value>,
    /// Folded flamegraph stacks for the same profile (artifact material —
    /// written next to the suite document by `--out`, not embedded in it).
    pub folded: Option<String>,
}

impl BenchRun {
    /// The JSON object stored under `benchmarks.<name>`.
    pub fn to_json(&self) -> Value {
        let mut metrics = Map::new();
        for (name, m) in &self.metrics {
            metrics.insert(
                (*name).to_owned(),
                json!({
                    "value": m.value,
                    "unit": m.unit,
                    "direction": m.direction.as_str(),
                    "gated": m.gated,
                }),
            );
        }
        let work: Map<String, Value> =
            self.work.iter().map(|(k, v)| ((*k).to_owned(), json!(v))).collect();
        let mut doc = Map::new();
        doc.insert("reps_secs".to_owned(), json!(self.reps_secs));
        doc.insert("metrics".to_owned(), Value::Object(metrics));
        doc.insert("work".to_owned(), Value::Object(work));
        if let Some(profile) = &self.profile {
            doc.insert("profile".to_owned(), profile.clone());
        }
        Value::Object(doc)
    }
}

/// Median of a non-empty slice (sorted copy; midpoint average for even N).
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// Fastest rep — the statistic behind every gated throughput metric.
///
/// On a contended machine, scheduler noise only ever *adds* time, so the
/// minimum over N reps is far more stable than the median and is what
/// the regression gate compares (the `timeit` convention).
pub fn best(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Nearest-rank quantile of a non-empty slice.
///
/// # Panics
///
/// Panics if `xs` is empty — the suite always records at least one rep.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty sample");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    if sorted.len().is_multiple_of(2) && (q - 0.5).abs() < 1e-12 {
        let hi = sorted.len() / 2;
        return (sorted[hi - 1] + sorted[hi]) / 2.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn wall_latency_metrics(reps_secs: &[f64], metrics: &mut BTreeMap<&'static str, Metric>) {
    metrics.insert(
        "p50_wall_ms",
        Metric {
            value: median(reps_secs) * 1e3,
            unit: "ms",
            direction: Direction::LowerIsBetter,
            gated: false,
        },
    );
    metrics.insert(
        "p99_wall_ms",
        Metric {
            value: quantile(reps_secs, 0.99) * 1e3,
            unit: "ms",
            direction: Direction::LowerIsBetter,
            gated: false,
        },
    );
}

/// Sim suite: schedule 100k randomly-timed events, cancel a deterministic
/// slice, drain the rest — the kernel's schedule/cancel/deliver hot path.
pub fn bench_event_loop(seed: u64, reps: usize) -> BenchRun {
    let mut reps_secs = Vec::with_capacity(reps);
    let mut counters = evop_sim::KernelCounters::default();
    // One untimed warmup rep, then `reps` timed ones.
    for rep in 0..=reps {
        let (secs, c) = time(|| {
            let mut rng = SimRng::new(seed);
            let mut queue = EventQueue::new();
            for i in 0..EVENT_LOOP_EVENTS as u64 {
                queue.push(SimTime::from_secs_f64(rng.uniform() * 3_600.0), i);
            }
            queue.cancel_where(|&i| i % 16 == 0);
            let mut checksum = 0u64;
            while let Some((_, event)) = queue.pop() {
                checksum = checksum.wrapping_add(event);
            }
            std::hint::black_box(checksum);
            queue.counters()
        });
        if rep > 0 {
            reps_secs.push(secs);
        }
        counters = c;
    }

    let mut metrics = BTreeMap::new();
    metrics.insert(
        "events_per_sec",
        Metric {
            value: EVENT_LOOP_EVENTS as f64 / best(&reps_secs),
            unit: "events/s",
            direction: Direction::HigherIsBetter,
            gated: true,
        },
    );
    wall_latency_metrics(&reps_secs, &mut metrics);

    let mut work = BTreeMap::new();
    work.insert("events_scheduled", counters.scheduled);
    work.insert("events_delivered", counters.delivered);
    work.insert("events_cancelled", counters.cancelled);
    work.insert("queue_depth_high_water", counters.depth_high_water as u64);

    BenchRun { name: "event_loop", reps_secs, metrics, work, profile: None, folded: None }
}

/// The queue-scaling workload at one size on the ladder queue: push `n`
/// uniformly-timed events, cancel every 16th, drain the rest.
fn wheel_workload(seed: u64, n: usize) -> f64 {
    let (secs, checksum) = time(|| {
        let mut rng = SimRng::new(seed);
        let mut queue = EventQueue::new();
        for i in 0..n as u64 {
            queue.push(SimTime::from_secs_f64(rng.uniform() * 3_600.0), i);
        }
        queue.cancel_where(|&i| i % 16 == 0);
        let mut checksum = 0u64;
        while let Some((_, event)) = queue.pop() {
            checksum = checksum.wrapping_add(event);
        }
        checksum
    });
    std::hint::black_box(checksum);
    secs
}

/// The identical workload on the seed's binary heap — the reference both
/// the differential tests and the speedup claim are measured against.
fn heap_workload(seed: u64, n: usize) -> f64 {
    let (secs, checksum) = time(|| {
        let mut rng = SimRng::new(seed);
        let mut queue = HeapQueue::new();
        for i in 0..n as u64 {
            queue.push(SimTime::from_secs_f64(rng.uniform() * 3_600.0), i);
        }
        queue.cancel_where(|&i| i % 16 == 0);
        let mut checksum = 0u64;
        while let Some((_, event)) = queue.pop() {
            checksum = checksum.wrapping_add(event);
        }
        checksum
    });
    std::hint::black_box(checksum);
    secs
}

/// Sim suite: the ladder queue versus the reference heap at 10⁵, 10⁶ and
/// 10⁷ events. The ladder cells are gated; the heap cells are recorded
/// ungated so the speedup is a number in the baseline, not a claim in a
/// doc comment.
pub fn bench_queue_scaling(seed: u64, reps: usize) -> BenchRun {
    const SCALES: [(usize, &str, &str, &str); 3] = [
        (100_000, "wheel_100k_events_per_sec", "heap_100k_events_per_sec", "speedup_100k"),
        (1_000_000, "wheel_1m_events_per_sec", "heap_1m_events_per_sec", "speedup_1m"),
        (10_000_000, "wheel_10m_events_per_sec", "heap_10m_events_per_sec", "speedup_10m"),
    ];
    let mut metrics = BTreeMap::new();
    let mut work = BTreeMap::new();
    let mut reps_secs = Vec::new();
    for (n, wheel_name, heap_name, speedup_name) in SCALES {
        // The 10⁷ cell is capped at two reps: one run already averages over
        // tens of millions of queue ops, and best-of-N needs contrast, not
        // volume.
        let scale_reps = if n >= 10_000_000 { reps.min(2) } else { reps };
        let mut wheel = Vec::with_capacity(scale_reps);
        let mut heap = Vec::with_capacity(scale_reps);
        for rep in 0..=scale_reps {
            let w = wheel_workload(seed, n);
            let h = heap_workload(seed, n);
            if rep > 0 {
                wheel.push(w);
                heap.push(h);
            }
        }
        metrics.insert(
            wheel_name,
            Metric {
                value: n as f64 / best(&wheel),
                unit: "events/s",
                direction: Direction::HigherIsBetter,
                gated: true,
            },
        );
        metrics.insert(
            heap_name,
            Metric {
                value: n as f64 / best(&heap),
                unit: "events/s",
                direction: Direction::HigherIsBetter,
                gated: false,
            },
        );
        metrics.insert(
            speedup_name,
            Metric {
                value: best(&heap) / best(&wheel),
                unit: "x",
                direction: Direction::HigherIsBetter,
                gated: false,
            },
        );
        if n == 1_000_000 {
            reps_secs = wheel.clone();
        }
    }
    wall_latency_metrics(&reps_secs, &mut metrics);
    // One deterministic workload shape for every scale: n scheduled,
    // n/16 cancelled, the rest delivered.
    work.insert("events_per_scale_cancelled_div", 16);
    work.insert("scales", SCALES.len() as u64);

    BenchRun { name: "queue_scaling", reps_secs, metrics, work, profile: None, folded: None }
}

/// Ticks in the batch-drain benchmark.
const BATCH_TICKS: usize = 2_000;
/// Events per tick in the batch-drain benchmark.
const BATCH_PER_TICK: usize = 500;

/// Sim suite: whole-tick batch delivery versus one `pop_due` per event on
/// a workload of 2 000 ticks × 500 same-instant events — the cloud/broker
/// control-loop shape. The batched cell is gated.
pub fn bench_batch_drain(seed: u64, reps: usize) -> BenchRun {
    let fill = |rng: &mut SimRng| {
        let mut queue = EventQueue::new();
        for tick in 0..BATCH_TICKS as u64 {
            let t = SimTime::from_millis(tick * 1_000 + rng.index(3) as u64);
            for i in 0..BATCH_PER_TICK as u64 {
                queue.push(t, tick * BATCH_PER_TICK as u64 + i);
            }
        }
        queue
    };
    let horizon = SimTime::from_millis(BATCH_TICKS as u64 * 1_000 + 10);
    let total = (BATCH_TICKS * BATCH_PER_TICK) as u64;

    let mut batched = Vec::with_capacity(reps);
    let mut single = Vec::with_capacity(reps);
    let mut max_batch = 0u64;
    for rep in 0..=reps {
        let mut rng = SimRng::new(seed);
        let mut queue = fill(&mut rng);
        let (b_secs, checksum) = time(|| {
            let mut buf = Vec::new();
            let mut checksum = 0u64;
            loop {
                buf.clear();
                if queue.pop_batch_due(horizon, &mut buf) == 0 {
                    break;
                }
                for &(_, event) in &buf {
                    checksum = checksum.wrapping_add(event);
                }
            }
            checksum
        });
        std::hint::black_box(checksum);
        max_batch = queue.counters().max_same_tick_batch;

        let mut rng = SimRng::new(seed);
        let mut queue = fill(&mut rng);
        let (s_secs, checksum) = time(|| {
            let mut checksum = 0u64;
            while let Some((_, event)) = queue.pop_due(horizon) {
                checksum = checksum.wrapping_add(event);
            }
            checksum
        });
        std::hint::black_box(checksum);
        if rep > 0 {
            batched.push(b_secs);
            single.push(s_secs);
        }
    }

    let mut metrics = BTreeMap::new();
    metrics.insert(
        "batched_events_per_sec",
        Metric {
            value: total as f64 / best(&batched),
            unit: "events/s",
            direction: Direction::HigherIsBetter,
            gated: true,
        },
    );
    metrics.insert(
        "single_pop_events_per_sec",
        Metric {
            value: total as f64 / best(&single),
            unit: "events/s",
            direction: Direction::HigherIsBetter,
            gated: false,
        },
    );
    metrics.insert(
        "batch_speedup",
        Metric {
            value: best(&single) / best(&batched),
            unit: "x",
            direction: Direction::HigherIsBetter,
            gated: false,
        },
    );
    wall_latency_metrics(&batched, &mut metrics);

    let mut work = BTreeMap::new();
    work.insert("events_delivered", total);
    work.insert("max_same_tick_batch", max_batch);

    BenchRun { name: "batch_drain", reps_secs: batched, metrics, work, profile: None, folded: None }
}

/// Sim suite: 200k-draw Monte Carlo calibration over a cheap 4-dimensional
/// objective — the `evop-models` sampling hot path.
pub fn bench_monte_carlo(seed: u64, reps: usize) -> BenchRun {
    let space = ParamSpace::from_ranges(&[
        ("a", 0.0, 1.0),
        ("b", -1.0, 1.0),
        ("c", 0.5, 2.0),
        ("d", 0.0, 10.0),
    ]);
    let mut reps_secs = Vec::with_capacity(reps);
    let mut evaluations = 0;
    let mut allocations = 0;
    for rep in 0..=reps {
        let (secs, result) = time(|| {
            monte_carlo(&space, MONTE_CARLO_SAMPLES, seed, |p| {
                let sphere: f64 = p.iter().map(|x| x * x).sum();
                (p[0] * 12.0).sin().mul_add(0.1, -sphere)
            })
        });
        if rep > 0 {
            reps_secs.push(secs);
        }
        evaluations = result.evaluations();
        allocations = result.allocations();
        std::hint::black_box(result.best_score());
    }

    let mut metrics = BTreeMap::new();
    metrics.insert(
        "mc_runs_per_sec",
        Metric {
            value: MONTE_CARLO_SAMPLES as f64 / best(&reps_secs),
            unit: "runs/s",
            direction: Direction::HigherIsBetter,
            gated: true,
        },
    );
    wall_latency_metrics(&reps_secs, &mut metrics);

    let mut work = BTreeMap::new();
    work.insert("mc_evaluations", evaluations);
    work.insert("mc_allocations", allocations);

    BenchRun { name: "monte_carlo", reps_secs, metrics, work, profile: None, folded: None }
}

/// Sim suite: the same 200k-draw calibration through the seed-split
/// parallel plane (`par_monte_carlo`, chunked sub-streams, one worker per
/// core). Throughput is recorded **ungated** — it scales with the host's
/// core count, so gating it would make the baseline machine-dependent —
/// but the work counters are exact: the parallel plane must do precisely
/// the same amount of work regardless of scheduling.
pub fn bench_monte_carlo_par(seed: u64, reps: usize) -> BenchRun {
    let space = ParamSpace::from_ranges(&[
        ("a", 0.0, 1.0),
        ("b", -1.0, 1.0),
        ("c", 0.5, 2.0),
        ("d", 0.0, 10.0),
    ]);
    let mut reps_secs = Vec::with_capacity(reps);
    let mut evaluations = 0;
    let mut allocations = 0;
    for rep in 0..=reps {
        let (secs, result) = time(|| {
            par_monte_carlo(&space, MONTE_CARLO_SAMPLES, seed, |p| {
                let sphere: f64 = p.iter().map(|x| x * x).sum();
                (p[0] * 12.0).sin().mul_add(0.1, -sphere)
            })
        });
        if rep > 0 {
            reps_secs.push(secs);
        }
        evaluations = result.evaluations();
        allocations = result.allocations();
        std::hint::black_box(result.best_score());
    }

    let mut metrics = BTreeMap::new();
    metrics.insert(
        "mc_par_runs_per_sec",
        Metric {
            value: MONTE_CARLO_SAMPLES as f64 / best(&reps_secs),
            unit: "runs/s",
            direction: Direction::HigherIsBetter,
            gated: false,
        },
    );
    wall_latency_metrics(&reps_secs, &mut metrics);

    let mut work = BTreeMap::new();
    work.insert("mc_evaluations", evaluations);
    work.insert("mc_allocations", allocations);

    BenchRun { name: "monte_carlo_par", reps_secs, metrics, work, profile: None, folded: None }
}

/// E2E suite: the full E1 portal request (observatory build → broker →
/// instance boot → model run → WPS collect), profiled per stage.
pub fn bench_e1(seed: u64, reps: usize) -> BenchRun {
    let prof = Profiler::new();
    let mut reps_secs = Vec::with_capacity(reps);
    let mut last = None;
    for rep in 0..=reps {
        let (secs, result) = time(|| e1_dataflow_profiled(seed, &prof));
        if rep > 0 {
            reps_secs.push(secs);
        }
        last = Some(result);
    }
    let result = last.expect("at least one rep").expect("e1 runs");
    let report = prof.report();

    let mut metrics = BTreeMap::new();
    metrics.insert(
        "requests_per_sec",
        Metric {
            value: 1.0 / best(&reps_secs),
            unit: "req/s",
            direction: Direction::HigherIsBetter,
            gated: true,
        },
    );
    wall_latency_metrics(&reps_secs, &mut metrics);

    let mut work = BTreeMap::new();
    work.insert("push_updates", result.push_updates as u64);
    work.insert("activation_wait_virtual_ms", duration_ms(result.activation_wait));
    work.insert("job_latency_virtual_ms", duration_ms(result.job_latency));

    BenchRun {
        name: "e1_portal_request",
        reps_secs,
        metrics,
        work,
        profile: Some(report.to_json()),
        folded: Some(report.folded()),
    }
}

/// E2E suite: the E6 flash crowd, cold vs warm pool, profiled per phase.
pub fn bench_e6(seed: u64, reps: usize) -> BenchRun {
    let prof = Profiler::new();
    let mut reps_secs = Vec::with_capacity(reps);
    let mut last = None;
    for rep in 0..=reps {
        let (secs, result) = time(|| e6_flash_crowd_profiled(E6_CROWD, E6_WARM_POOL, seed, &prof));
        if rep > 0 {
            reps_secs.push(secs);
        }
        last = Some(result);
    }
    let result = last.expect("at least one rep").expect("e6 runs");
    let report = prof.report();

    let mut metrics = BTreeMap::new();
    metrics.insert(
        "crowds_per_sec",
        Metric {
            value: 1.0 / best(&reps_secs),
            unit: "crowds/s",
            direction: Direction::HigherIsBetter,
            gated: true,
        },
    );
    wall_latency_metrics(&reps_secs, &mut metrics);

    let mut work = BTreeMap::new();
    work.insert("crowd", result.crowd as u64);
    work.insert(
        "cold_median_first_result_virtual_ms",
        duration_ms(result.cold.median_first_result),
    );
    work.insert(
        "warm_median_first_result_virtual_ms",
        duration_ms(result.warm.median_first_result),
    );

    BenchRun {
        name: "e6_flash_crowd",
        reps_secs,
        metrics,
        work,
        profile: Some(report.to_json()),
        folded: Some(report.folded()),
    }
}

fn duration_ms(d: evop_sim::SimDuration) -> u64 {
    (d.as_secs_f64() * 1e3).round() as u64
}

/// Runs the `sim` suite: event-loop microbench, queue scaling (ladder vs
/// heap), whole-tick batch drain, and Monte Carlo calibration (sequential
/// and seed-split parallel).
pub fn run_sim_suite(seed: u64, reps: usize) -> Vec<BenchRun> {
    vec![
        bench_event_loop(seed, reps),
        bench_queue_scaling(seed, reps),
        bench_batch_drain(seed, reps),
        bench_monte_carlo(seed, reps),
        bench_monte_carlo_par(seed, reps),
    ]
}

/// Runs the `e2e` suite: E1 portal request + E6 flash crowd.
pub fn run_e2e_suite(seed: u64, reps: usize) -> Vec<BenchRun> {
    vec![bench_e1(seed, reps), bench_e6(seed, reps)]
}

/// The environment stamp embedded in every suite document so a baseline
/// is interpretable later ("what machine produced these numbers?").
pub fn env_stamp() -> Value {
    json!({
        "os": std::env::consts::OS,
        "arch": std::env::consts::ARCH,
        "cpus": std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        "debug_assertions": cfg!(debug_assertions),
        "harness_version": env!("CARGO_PKG_VERSION"),
    })
}

/// Assembles the suite document written to `BENCH_<suite>.json`.
pub fn suite_doc(suite: &str, seed: u64, reps: usize, runs: &[BenchRun]) -> Value {
    let mut benchmarks = Map::new();
    for run in runs {
        benchmarks.insert(run.name.to_owned(), run.to_json());
    }
    json!({
        "report": "perf-baseline",
        "suite": suite,
        "seed": seed,
        "reps": reps,
        "env": env_stamp(),
        "benchmarks": Value::Object(benchmarks),
    })
}

/// One gate failure: which metric, by how much.
#[derive(Debug, Clone, PartialEq)]
pub struct GateFinding {
    /// Benchmark name.
    pub benchmark: String,
    /// Metric or work-counter name.
    pub metric: String,
    /// What the finding means, rendered for the CI log.
    pub message: String,
}

/// The gate's verdict over one baseline/fresh document pair.
#[derive(Debug, Clone, Default)]
pub struct GateReport {
    /// Gated metrics compared.
    pub gated_checked: usize,
    /// Deterministic work counters compared.
    pub work_checked: usize,
    /// Everything that failed; empty means the gate passes.
    pub failures: Vec<GateFinding>,
}

impl GateReport {
    /// `true` when no gated metric regressed and no work counter drifted.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// Renders the verdict for the CI log.
    pub fn render(&self) -> String {
        let mut out = format!(
            "perf gate: {} gated metric(s), {} work counter(s) checked — {}\n",
            self.gated_checked,
            self.work_checked,
            if self.passed() { "PASS" } else { "FAIL" }
        );
        for f in &self.failures {
            out.push_str(&format!("  FAIL {}.{}: {}\n", f.benchmark, f.metric, f.message));
        }
        out
    }
}

fn doc_benchmarks(doc: &Value, which: &str) -> Result<Map<String, Value>, String> {
    if doc.get("report").and_then(Value::as_str) != Some("perf-baseline") {
        return Err(format!("{which} document is not a perf-baseline report"));
    }
    doc.get("benchmarks")
        .and_then(Value::as_object)
        .cloned()
        .ok_or_else(|| format!("{which} document has no benchmarks object"))
}

/// The regression gate: compares a fresh suite document against the
/// committed baseline. Pure — no I/O, no clock — so the “slowing a gated
/// metric by >20% fails” behaviour is unit-testable with synthetic docs.
///
/// * Every **gated** metric in the baseline must exist in the fresh run
///   and must not be worse than `tolerance` (relative, direction-aware).
/// * Every **work** counter must match exactly: these are deterministic
///   functions of the workload, so any drift means the workload changed
///   and the baselines must be regenerated with `--update-baseline`.
///
/// # Errors
///
/// Returns `Err` when either document is structurally not a perf-baseline
/// report (wrong `report` tag, missing `benchmarks`).
pub fn check_doc(baseline: &Value, fresh: &Value, tolerance: f64) -> Result<GateReport, String> {
    let base_benches = doc_benchmarks(baseline, "baseline")?;
    let fresh_benches = doc_benchmarks(fresh, "fresh")?;
    let mut report = GateReport::default();

    for (bench_name, base_bench) in &base_benches {
        let Some(fresh_bench) = fresh_benches.get(bench_name) else {
            report.failures.push(GateFinding {
                benchmark: bench_name.clone(),
                metric: "<suite>".to_owned(),
                message: "benchmark present in baseline but missing from fresh run".to_owned(),
            });
            continue;
        };

        let base_metrics =
            base_bench.get("metrics").and_then(Value::as_object).cloned().unwrap_or_default();
        for (metric_name, base_metric) in &base_metrics {
            if base_metric.get("gated").and_then(Value::as_bool) != Some(true) {
                continue;
            }
            report.gated_checked += 1;
            let (Some(base_value), Some(direction)) = (
                base_metric.get("value").and_then(Value::as_f64),
                base_metric.get("direction").and_then(Value::as_str).and_then(Direction::parse),
            ) else {
                report.failures.push(GateFinding {
                    benchmark: bench_name.clone(),
                    metric: metric_name.clone(),
                    message: "baseline metric is malformed (no value/direction)".to_owned(),
                });
                continue;
            };
            let Some(fresh_value) = fresh_bench
                .get("metrics")
                .and_then(|m| m.get(metric_name))
                .and_then(|m| m.get("value"))
                .and_then(Value::as_f64)
            else {
                report.failures.push(GateFinding {
                    benchmark: bench_name.clone(),
                    metric: metric_name.clone(),
                    message: "gated metric missing from fresh run".to_owned(),
                });
                continue;
            };
            let change = (fresh_value - base_value) / base_value;
            let regressed = match direction {
                Direction::HigherIsBetter => change < -tolerance,
                Direction::LowerIsBetter => change > tolerance,
            };
            if regressed {
                report.failures.push(GateFinding {
                    benchmark: bench_name.clone(),
                    metric: metric_name.clone(),
                    message: format!(
                        "regressed {:+.1}% (baseline {base_value:.3}, fresh {fresh_value:.3}, tolerance ±{:.0}%)",
                        change * 100.0,
                        tolerance * 100.0
                    ),
                });
            }
        }

        let base_work =
            base_bench.get("work").and_then(Value::as_object).cloned().unwrap_or_default();
        for (counter, base_value) in &base_work {
            report.work_checked += 1;
            let fresh_value =
                fresh_bench.get("work").and_then(|w| w.get(counter)).and_then(Value::as_u64);
            if fresh_value != base_value.as_u64() {
                report.failures.push(GateFinding {
                    benchmark: bench_name.clone(),
                    metric: counter.clone(),
                    message: format!(
                        "deterministic work counter drifted (baseline {base_value}, fresh {}) — the workload changed; regenerate baselines with --update-baseline",
                        fresh_value.map_or("missing".to_owned(), |v| v.to_string()),
                    ),
                });
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(events_per_sec: f64, p99_ms: f64, scheduled: u64) -> Value {
        json!({
            "report": "perf-baseline",
            "suite": "sim",
            "benchmarks": {
                "event_loop": {
                    "metrics": {
                        "events_per_sec": {
                            "value": events_per_sec,
                            "unit": "events/s",
                            "direction": "higher_is_better",
                            "gated": true,
                        },
                        "p99_wall_ms": {
                            "value": p99_ms,
                            "unit": "ms",
                            "direction": "lower_is_better",
                            "gated": false,
                        },
                    },
                    "work": { "events_scheduled": scheduled },
                }
            }
        })
    }

    #[test]
    fn identical_docs_pass() {
        let base = doc(1_000_000.0, 3.0, 100_000);
        let report = check_doc(&base, &base, DEFAULT_TOLERANCE).unwrap();
        assert!(report.passed(), "{}", report.render());
        assert_eq!(report.gated_checked, 1);
        assert_eq!(report.work_checked, 1);
    }

    #[test]
    fn slowdown_beyond_tolerance_fails() {
        let base = doc(1_000_000.0, 3.0, 100_000);
        // 25% throughput drop on a gated higher-is-better metric.
        let fresh = doc(750_000.0, 3.0, 100_000);
        let report = check_doc(&base, &fresh, DEFAULT_TOLERANCE).unwrap();
        assert!(!report.passed());
        assert_eq!(report.failures.len(), 1);
        assert_eq!(report.failures[0].metric, "events_per_sec");
        assert!(report.failures[0].message.contains("-25.0%"));
    }

    #[test]
    fn slowdown_within_tolerance_passes() {
        let base = doc(1_000_000.0, 3.0, 100_000);
        let fresh = doc(900_000.0, 3.0, 100_000); // only 10% down
        assert!(check_doc(&base, &fresh, DEFAULT_TOLERANCE).unwrap().passed());
    }

    #[test]
    fn improvement_always_passes() {
        let base = doc(1_000_000.0, 3.0, 100_000);
        let fresh = doc(2_000_000.0, 3.0, 100_000);
        assert!(check_doc(&base, &fresh, DEFAULT_TOLERANCE).unwrap().passed());
    }

    #[test]
    fn ungated_metric_regression_is_ignored() {
        let base = doc(1_000_000.0, 3.0, 100_000);
        let fresh = doc(1_000_000.0, 300.0, 100_000); // p99 100× worse, ungated
        assert!(check_doc(&base, &fresh, DEFAULT_TOLERANCE).unwrap().passed());
    }

    #[test]
    fn lower_is_better_metrics_gate_in_the_other_direction() {
        let latency_doc = |ms: f64| {
            json!({
                "report": "perf-baseline",
                "benchmarks": { "b": { "metrics": { "lat_ms": {
                    "value": ms, "unit": "ms", "direction": "lower_is_better", "gated": true,
                }}, "work": {} } }
            })
        };
        let base = latency_doc(10.0);
        // +30% latency regresses; +10% and an improvement both pass.
        assert!(!check_doc(&base, &latency_doc(13.0), DEFAULT_TOLERANCE).unwrap().passed());
        assert!(check_doc(&base, &latency_doc(11.0), DEFAULT_TOLERANCE).unwrap().passed());
        assert!(check_doc(&base, &latency_doc(5.0), DEFAULT_TOLERANCE).unwrap().passed());
    }

    #[test]
    fn tolerance_override_is_honoured() {
        let base = doc(1_000_000.0, 3.0, 100_000);
        let fresh = doc(650_000.0, 3.0, 100_000); // 35% down
        assert!(!check_doc(&base, &fresh, DEFAULT_TOLERANCE).unwrap().passed());
        assert!(check_doc(&base, &fresh, 0.5).unwrap().passed());
    }

    #[test]
    fn work_counter_drift_fails_with_regenerate_hint() {
        let base = doc(1_000_000.0, 3.0, 100_000);
        let fresh = doc(1_000_000.0, 3.0, 99_999);
        let report = check_doc(&base, &fresh, DEFAULT_TOLERANCE).unwrap();
        assert!(!report.passed());
        assert!(report.failures[0].message.contains("--update-baseline"));
    }

    #[test]
    fn missing_benchmark_fails() {
        let base = doc(1_000_000.0, 3.0, 100_000);
        let fresh = json!({ "report": "perf-baseline", "benchmarks": {} });
        let report = check_doc(&base, &fresh, DEFAULT_TOLERANCE).unwrap();
        assert!(!report.passed());
        assert!(report.failures[0].message.contains("missing from fresh run"));
    }

    #[test]
    fn non_baseline_documents_are_rejected() {
        let base = doc(1_000_000.0, 3.0, 100_000);
        assert!(check_doc(&json!({"report": "slo"}), &base, 0.2).is_err());
        assert!(check_doc(&base, &json!({"report": "perf-baseline"}), 0.2).is_err());
    }

    #[test]
    fn median_and_quantile_are_sane() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.5);
        assert_eq!(quantile(&[1.0, 2.0, 3.0, 4.0], 0.99), 4.0);
        assert_eq!(quantile(&[5.0], 0.5), 5.0);
    }

    #[test]
    fn event_loop_work_counters_are_deterministic() {
        let run = bench_event_loop(7, 1);
        assert_eq!(run.work["events_scheduled"], EVENT_LOOP_EVENTS as u64);
        assert_eq!(run.work["events_cancelled"], EVENT_LOOP_EVENTS as u64 / 16);
        assert_eq!(
            run.work["events_delivered"],
            EVENT_LOOP_EVENTS as u64 - EVENT_LOOP_EVENTS as u64 / 16
        );
        assert!(run.metrics["events_per_sec"].gated);
        // Same seed, same counters — what the exact gate comparison relies on.
        assert_eq!(bench_event_loop(7, 1).work, run.work);
    }

    #[test]
    fn suite_doc_has_the_gate_contract_shape() {
        let runs = vec![bench_event_loop(7, 1)];
        let doc = suite_doc("sim", 7, 1, &runs);
        assert_eq!(doc["report"], "perf-baseline");
        assert_eq!(doc["suite"], "sim");
        assert!(doc["env"]["os"].is_string());
        assert!(doc["benchmarks"]["event_loop"]["metrics"]["events_per_sec"]["gated"]
            .as_bool()
            .unwrap());
        // A freshly generated doc always passes against itself.
        assert!(check_doc(&doc, &doc, DEFAULT_TOLERANCE).unwrap().passed());
    }
}
