//! The tsdb/tail-sampling replay: a multi-day diurnal portal soak.
//!
//! The paper's engagement argument (§V) is a *load-shape* argument: a
//! hydrology portal sees a daily rhythm of staff and student sessions,
//! punctuated by flash crowds when a flood warning circulates. This
//! harness replays that shape against the broker for several virtual
//! days — a diurnal submit cadence per session, a flash crowd joining at
//! noon on day two, and an `ApiErrorBurst` chaos window striking in the
//! middle of the crowd — while the telemetry-at-scale plane watches:
//!
//! * every registry tick is ingested into an embedded [`Tsdb`], so the
//!   run ends with forecast-ready hourly rollups of the submission rate
//!   and boot-latency quantiles;
//! * every portal request opens a `portal.request` root trace, and a
//!   [`TailSampler`] decides after the fact which traces to keep:
//!   errored and SLO-burning ones always, healthy traffic one-in-N;
//! * a per-user counter family exercises the cardinality governor — the
//!   flash crowd blows the family budget and collapses into the
//!   overflow aggregate rather than growing the store.
//!
//! Everything runs in virtual time from one seed, so the digest JSON
//! (and the full snapshot it hashes) is byte-identical across runs —
//! the `tsdb_report` golden test pins it.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use evop_broker::{Broker, BrokerConfig, BrokerError, SessionId};
use evop_chaos::{ChaosEngine, FaultKind, FaultSchedule};
use evop_obs::{
    burn_windows, AlertEngine, AlertRecord, AlertSeverity, Resolution, SamplePolicy, SloSpec,
    TailSampler, TraceId, Tsdb, TsdbConfig,
};
use evop_sim::{SimDuration, SimTime};
use serde_json::{json, Value};

/// Seconds per virtual day.
const DAY_SECS: u64 = 24 * 3600;

/// Submit interval per session in seconds, indexed by virtual hour of
/// day: quiet nights, a morning ramp, a noon peak, an evening tail. All
/// integers — the diurnal shape must never touch floating-point
/// trigonometry, or the goldens stop being byte-stable across targets.
pub const DIURNAL_INTERVAL_SECS: [u64; 24] = [
    3600, 3600, 3600, 3600, 2400, 1800, // small hours
    1200, 900, 600, 450, 360, 300, // morning ramp
    300, 300, 360, 450, 600, 900, // afternoon decay
    1200, 1200, 1800, 2400, 3600, 3600, // evening
];

/// The per-user request counter family the governor is sized against.
pub const PORTAL_REQUESTS: &str = "portal_requests_total";

/// Everything that shapes one diurnal replay.
#[derive(Debug, Clone)]
pub struct DiurnalConfig {
    /// Seed driving broker, chaos engine and sampler.
    pub seed: u64,
    /// Virtual days to soak.
    pub days: u64,
    /// Resident sessions following the diurnal cadence.
    pub sessions: usize,
    /// Flash-crowd sessions joining at noon on day two.
    pub crowd_sessions: usize,
    /// Broker configuration (the control-loop interval is the tick).
    pub broker: BrokerConfig,
    /// Rollup store configuration.
    pub tsdb: TsdbConfig,
    /// Tail-sampling policy.
    pub sampler: SamplePolicy,
}

impl Default for DiurnalConfig {
    fn default() -> DiurnalConfig {
        let mut family_budgets = BTreeMap::new();
        // Sized for the residents with a little headroom; the flash
        // crowd must overflow, demonstrating the governor.
        family_budgets.insert(PORTAL_REQUESTS.to_owned(), 16);
        DiurnalConfig {
            seed: 42,
            days: 2,
            sessions: 12,
            crowd_sessions: 24,
            broker: BrokerConfig {
                check_interval: SimDuration::from_secs(30),
                ..BrokerConfig::default()
            },
            tsdb: TsdbConfig { family_budgets, ..TsdbConfig::default() },
            sampler: SamplePolicy {
                grace: SimDuration::from_secs(120),
                healthy_one_in: 20,
                latency_threshold: SimDuration::from_secs(240),
                max_retained_spans: 6144,
            },
        }
    }
}

impl DiurnalConfig {
    /// When the flash crowd arrives: noon on the final day.
    pub fn crowd_start(&self) -> SimTime {
        SimTime::from_secs(self.days.saturating_sub(1) * DAY_SECS + 12 * 3600)
    }

    /// When the flash crowd leaves again: two hours later.
    pub fn crowd_end(&self) -> SimTime {
        self.crowd_start() + SimDuration::from_secs(2 * 3600)
    }

    /// The chaos schedule: an API error burst on both providers opening
    /// thirty minutes into the flash crowd and lasting forty minutes.
    pub fn schedule(&self) -> FaultSchedule {
        let start = self.crowd_start().as_millis() / 1000 + 1800;
        let mut schedule = FaultSchedule::named("tsdb-diurnal");
        for provider in ["campus", "aws"] {
            schedule = schedule.window(
                start,
                2400,
                FaultKind::ApiErrorBurst { provider: provider.to_owned(), error_rate: 0.9 },
            );
        }
        schedule
    }
}

/// The availability SLO judging the soak: submissions answered `ok`
/// against a 90 % target on a 1800 s/300 s window pair at 2× burn.
fn availability_slo() -> SloSpec {
    SloSpec::availability(
        "broker-availability",
        0.9,
        "broker_submit_total",
        &[("outcome", "ok")],
        "broker_submit_total",
    )
    .window(1800, 300, 2.0, AlertSeverity::Page)
}

/// Ground truth for one portal request, kept outside the observability
/// plane so acceptance checks do not trust the thing they are testing.
#[derive(Debug, Clone)]
pub struct RequestRecord {
    /// The `portal.request` root trace.
    pub trace_id: TraceId,
    /// Submission time, virtual milliseconds.
    pub at_ms: u64,
    /// `ok`, `transient` or `hard` — mirrors `broker_submit_total`.
    pub outcome: &'static str,
}

/// How the tail sampler fared against ground truth.
#[derive(Debug, Clone, Copy, Default)]
pub struct AcceptanceSummary {
    /// Requests that did not come back `ok`.
    pub errored_total: usize,
    /// Errored requests whose trace the sampler retained.
    pub errored_retained: usize,
    /// Requests submitted inside an SLO burn window.
    pub burning_total: usize,
    /// Burn-window requests whose trace the sampler retained.
    pub burning_retained: usize,
}

/// Everything one diurnal replay measured.
#[derive(Debug)]
pub struct DiurnalOutcome {
    /// The configuration that drove the run.
    pub config: DiurnalConfig,
    /// Every portal request, in submission order.
    pub requests: Vec<RequestRecord>,
    /// The alert log.
    pub alerts: Vec<AlertRecord>,
    /// Merged SLO burn intervals, `(fired_ms, resolved_ms)`.
    pub burn: Vec<(u64, u64)>,
    /// Faults the chaos engine fired.
    pub faults_fired: usize,
    /// The rollup store, sealed.
    pub tsdb: Tsdb,
    /// The tail sampler, flushed.
    pub sampler: TailSampler,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a over a byte string, the digest's stand-in for the multi-MB
/// snapshot: byte-identical snapshots, identical hash.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// One session's place in the cadence.
struct Cadence {
    session: SessionId,
    user: String,
    next_submit: SimTime,
}

/// Runs one diurnal replay.
pub fn run_diurnal(config: &DiurnalConfig) -> DiurnalOutcome {
    let engine = ChaosEngine::new(config.schedule(), config.seed);
    let mut broker = Broker::new(config.broker.clone(), config.seed);
    engine.set_tracer(broker.tracer().clone());
    broker.set_fault_injector(Some(Box::new(engine.clone())));
    let mut alert_engine = AlertEngine::new(broker.metrics().clone());
    alert_engine.add_slo(availability_slo());
    let mut tsdb = Tsdb::new(config.tsdb.clone());
    let mut sampler = TailSampler::new(config.sampler.clone(), config.seed);

    let mut roster: Vec<Cadence> = (0..config.sessions)
        .map(|i| {
            let user = format!("user-{i:02}");
            let session = broker
                .connect(&user, "topmodel")
                .expect("default library serves topmodel");
            // Stagger first submissions a minute apart so the roster
            // never thunders in one tick.
            Cadence { session, user, next_submit: SimTime::from_secs(60 * (i as u64 + 1)) }
        })
        .collect();

    let end = SimTime::from_secs(config.days * DAY_SECS);
    let step = config.broker.check_interval;
    let crowd_start = config.crowd_start();
    let crowd_end = config.crowd_end();
    let mut crowd: Vec<usize> = Vec::new();
    let mut crowd_joined = false;
    let mut crowd_left = false;
    let mut requests: Vec<RequestRecord> = Vec::new();
    let mut request_no: u64 = 0;

    while broker.now() < end {
        broker.advance(step);
        let now = broker.now();
        alert_engine.tick(now);

        if !crowd_joined && now >= crowd_start {
            crowd_joined = true;
            for i in 0..config.crowd_sessions {
                let user = format!("crowd-{i:02}");
                if let Ok(session) = broker.connect(&user, "topmodel") {
                    crowd.push(roster.len());
                    roster.push(Cadence {
                        session,
                        user,
                        next_submit: now + SimDuration::from_secs(30 * (i as u64 + 1)),
                    });
                }
            }
        }
        if crowd_joined && !crowd_left && now >= crowd_end {
            crowd_left = true;
            for &idx in &crowd {
                let _ = broker.disconnect(roster[idx].session);
                // Park the cadence past the end of the run.
                roster[idx].next_submit = end + SimDuration::from_secs(1);
            }
        }

        let hour = (now.as_millis() / 1000 / 3600) % 24;
        let interval = SimDuration::from_secs(DIURNAL_INTERVAL_SECS[hour as usize]);
        for cadence in roster.iter_mut() {
            while cadence.next_submit <= now {
                cadence.next_submit += interval;
                request_no += 1;
                let work = SimDuration::from_secs(
                    20 + splitmix64(config.seed ^ request_no.wrapping_mul(0x2545_f491_4f6c_dd1d))
                        % 41,
                );
                let span = broker.tracer().start_trace("portal.request");
                span.attr("user", &cadence.user);
                let trace_id = span.trace_id();
                let ctx = span.context();
                let outcome = match broker.run_model_with_context(cadence.session, work, Some(&ctx))
                {
                    Ok(_) => "ok",
                    Err(BrokerError::TransientlyUnavailable { .. }) => "transient",
                    Err(_) => "hard",
                };
                span.attr("outcome", outcome);
                span.finish();
                broker.metrics().inc_counter(PORTAL_REQUESTS, &[("user", cadence.user.as_str())]);
                requests.push(RequestRecord { trace_id, at_ms: now.as_millis(), outcome });
            }
        }

        // Flush the registry into the rollup store once this tick's
        // submissions are counted, then let the sampler decide traces
        // against the burn intervals known so far. An alert always fires
        // before any trace overlapping it is decided (decisions wait out
        // the grace period), so the growing window list never
        // misclassifies a finished trace.
        tsdb.ingest_registry(broker.metrics(), now);
        let windows = burn_windows(alert_engine.alerts());
        sampler.tick(broker.tracer(), now, &windows);
    }

    let windows = burn_windows(alert_engine.alerts());
    sampler.flush(broker.tracer(), broker.now(), &windows);
    tsdb.finish(broker.now());

    DiurnalOutcome {
        config: config.clone(),
        requests,
        alerts: alert_engine.alerts().to_vec(),
        burn: windows,
        faults_fired: engine.events().len(),
        tsdb,
        sampler,
    }
}

impl DiurnalOutcome {
    /// FNV-1a of the full tsdb snapshot, as 16 hex digits.
    pub fn snapshot_fnv(&self) -> String {
        format!("{:016x}", fnv1a(self.tsdb.snapshot_string().as_bytes()))
    }

    /// The sampler's verdicts joined to ground truth.
    pub fn acceptance(&self) -> AcceptanceSummary {
        let retained: BTreeSet<TraceId> = self.sampler.retained_ids().into_iter().collect();
        let mut summary = AcceptanceSummary::default();
        for req in &self.requests {
            if req.outcome != "ok" {
                summary.errored_total += 1;
                if retained.contains(&req.trace_id) {
                    summary.errored_retained += 1;
                }
            }
            if self.burn.iter().any(|&(lo, hi)| req.at_ms >= lo && req.at_ms < hi) {
                summary.burning_total += 1;
                if retained.contains(&req.trace_id) {
                    summary.burning_retained += 1;
                }
            }
        }
        summary
    }

    /// Where range queries stop. The final tick lands exactly on the
    /// run-end boundary, and a boundary sample opens a *new* window — so
    /// queries reach one raw interval past the end to include that
    /// sliver, keeping hourly totals conservative.
    fn query_end(&self) -> SimTime {
        SimTime::from_secs(self.config.days * DAY_SECS) + self.config.tsdb.raw_interval
    }

    /// Hourly rollup of one counter family: `(window_start_ms, sum)`.
    fn hourly_sums(&self, name: &str) -> Vec<(u64, f64)> {
        self.tsdb
            .family_range(name, Resolution::Hour, SimTime::ZERO, self.query_end())
            .into_iter()
            .map(|p| (p.start_ms, p.sum))
            .collect()
    }

    /// The canonical JSON the golden test pins: request tallies, the
    /// alert log, forecast-ready hourly series, governor and sampler
    /// counters, and the snapshot hash standing in for the full store.
    pub fn to_json(&self) -> Value {
        let mut by_outcome: BTreeMap<&str, usize> = BTreeMap::new();
        for req in &self.requests {
            *by_outcome.entry(req.outcome).or_insert(0) += 1;
        }
        let end = self.query_end();
        let ok_hourly: Vec<Value> = self
            .tsdb
            .range(
                "broker_submit_total",
                &[("outcome", "ok")],
                Resolution::Hour,
                SimTime::ZERO,
                end,
            )
            .into_iter()
            .map(|p| json!({"start_ms": p.start_ms, "sum": p.sum}))
            .collect();
        let boot_p99_hourly: Vec<Value> = self
            .tsdb
            .family_range("cloud_boot_seconds", Resolution::Hour, SimTime::ZERO, end)
            .into_iter()
            .map(|p| json!({"start_ms": p.start_ms, "p99": p.quantile(0.99)}))
            .collect();
        let acceptance = self.acceptance();
        json!({
            "bench": "tsdb_report",
            "seed": self.config.seed,
            "days": self.config.days,
            "sessions": self.config.sessions,
            "crowd_sessions": self.config.crowd_sessions,
            "faults_fired": self.faults_fired,
            "requests": {
                "attempts": self.requests.len(),
                "ok": by_outcome.get("ok").copied().unwrap_or(0),
                "transient": by_outcome.get("transient").copied().unwrap_or(0),
                "hard": by_outcome.get("hard").copied().unwrap_or(0),
            },
            "alerts": self.alerts.iter().map(AlertRecord::to_json).collect::<Vec<Value>>(),
            "burn_windows": self.burn.iter().map(|&(lo, hi)| json!([lo, hi])).collect::<Vec<Value>>(),
            "forecast": {
                "submit_hourly": self.hourly_sums("broker_submit_total").into_iter()
                    .map(|(start_ms, sum)| json!({"start_ms": start_ms, "sum": sum}))
                    .collect::<Vec<Value>>(),
                "submit_ok_hourly": ok_hourly,
                "boot_p99_hourly": boot_p99_hourly,
            },
            "tsdb": {
                "series_count": self.tsdb.series_count(),
                "series_dropped": self.tsdb.series_dropped(),
                "snapshot_fnv": self.snapshot_fnv(),
            },
            "sampler": {
                "counters": self.sampler.counters().to_json(),
                "retained_traces": self.sampler.retained_ids().len(),
                "retained_spans": self.sampler.retained_spans(),
                "retained_ids": self.sampler.retained_ids().iter()
                    .map(|id| id.to_string()).collect::<Vec<String>>(),
            },
            "acceptance": {
                "errored_total": acceptance.errored_total,
                "errored_retained": acceptance.errored_retained,
                "burning_total": acceptance.burning_total,
                "burning_retained": acceptance.burning_retained,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> DiurnalConfig {
        DiurnalConfig { days: 1, sessions: 4, crowd_sessions: 6, ..DiurnalConfig::default() }
    }

    #[test]
    fn diurnal_cadence_peaks_at_noon() {
        assert!(DIURNAL_INTERVAL_SECS[12] < DIURNAL_INTERVAL_SECS[0]);
        assert!(DIURNAL_INTERVAL_SECS[12] <= *DIURNAL_INTERVAL_SECS.iter().min().unwrap());
    }

    #[test]
    fn replay_is_deterministic_for_one_seed() {
        let config = small_config();
        let a = run_diurnal(&config);
        let b = run_diurnal(&config);
        assert_eq!(a.tsdb.snapshot_string(), b.tsdb.snapshot_string());
        assert_eq!(a.sampler.retained_ids(), b.sampler.retained_ids());
        assert_eq!(a.to_json().to_string(), b.to_json().to_string());
    }

    #[test]
    fn errored_and_burning_requests_are_always_retained() {
        let outcome = run_diurnal(&small_config());
        let acceptance = outcome.acceptance();
        assert!(acceptance.errored_total > 0, "the chaos burst must produce errors");
        assert_eq!(acceptance.errored_retained, acceptance.errored_total);
        assert!(acceptance.burning_total > 0, "the availability SLO must burn");
        assert_eq!(acceptance.burning_retained, acceptance.burning_total);
        assert!(outcome.sampler.retained_spans() <= outcome.config.sampler.max_retained_spans);
    }

    #[test]
    fn flash_crowd_overflows_the_portal_family_budget() {
        let config =
            DiurnalConfig { days: 1, sessions: 12, crowd_sessions: 24, ..DiurnalConfig::default() };
        let outcome = run_diurnal(&config);
        assert!(outcome.tsdb.series_dropped() > 0, "the crowd must overflow the family budget");
        // The family total survives the collapse: every submission is
        // counted exactly once across admitted series plus overflow.
        let total: f64 = outcome.hourly_sums(PORTAL_REQUESTS).into_iter().map(|(_, sum)| sum).sum();
        assert_eq!(total as usize, outcome.requests.len());
    }
}
