//! The E4 alerting matrix: fault bursts joined to the alerts they fire.
//!
//! Each cell runs one `(schedule, seed)` chaos scenario with the health
//! plane's SLOs registered and then measures **alert detection latency**:
//! for every injected fault burst, how long after the burst opened did an
//! alert fire (or was one already burning)? The whole pipeline is virtual
//! time and seeded, so a cell's JSON outcome is byte-identical across
//! runs — the `slo_report` golden test pins that.

use evop_broker::BrokerConfig;
use evop_chaos::{ChaosRunReport, ChaosScenario, FaultKind, FaultSchedule};
use evop_obs::{AlertKind, AlertRecord, AlertSeverity, SloSpec};
use evop_sim::SimDuration;
use serde_json::{json, Value};

/// Seeds the full matrix sweeps when `--seed` is not given.
pub const MATRIX_SEEDS: [u64; 3] = [1, 7, 42];

/// Grace period after a burst closes during which an alert still counts
/// as detecting it: straggled boots observed at boot *completion* land up
/// to one slowed boot after the window shuts.
const JOIN_SLACK_SECS: u64 = 900;

/// One cell of the alerting matrix.
#[derive(Debug, Clone)]
pub struct SloCell {
    /// Cell name (`--cell` selects by this).
    pub name: &'static str,
    /// What goes wrong.
    pub schedule: FaultSchedule,
    /// Broker configuration driving the cell.
    pub config: BrokerConfig,
    /// Concurrent user sessions.
    pub sessions: usize,
    /// Soak length, virtual seconds.
    pub duration_secs: u64,
    /// The SLOs judging the cell.
    pub slos: Vec<SloSpec>,
}

/// The availability SLO every cell registers: submissions answered `ok`
/// against a 90 % target, paged on a 600 s/300 s window pair at 2× burn.
fn availability_slo() -> SloSpec {
    SloSpec::availability(
        "broker-availability",
        0.9,
        "broker_submit_total",
        &[("outcome", "ok")],
        "broker_submit_total",
    )
    .window(600, 300, 2.0, AlertSeverity::Page)
}

/// A boot-latency SLO for one provider: 90 % of boots ready within
/// `threshold_secs`, paged on the same 600 s/300 s pair.
fn boot_latency_slo(provider: &str, threshold_secs: f64) -> SloSpec {
    SloSpec::latency(
        &format!("boot-latency-{provider}"),
        0.9,
        "cloud_boot_seconds",
        &[("provider", provider)],
        threshold_secs,
    )
    .window(600, 300, 2.0, AlertSeverity::Page)
}

/// Both providers get the same fault window — the burst must be visible
/// no matter where the broker placed the sessions.
fn both_providers(
    schedule: FaultSchedule,
    start: u64,
    duration: u64,
    make: impl Fn(&str) -> FaultKind,
) -> FaultSchedule {
    schedule.window(start, duration, make("campus")).window(start, duration, make("aws"))
}

/// The E4 alerting matrix: one cell per fault family, plus the non-blob
/// provider-storm (blob faults never cross the broker submit path, so
/// they cannot be judged by these SLOs and stay in the chaos matrix).
pub fn e4_alerting_matrix() -> Vec<SloCell> {
    let churn = |mtbf_secs| BrokerConfig {
        private_capacity_vcpus: 4,
        instance_mtbf: Some(SimDuration::from_secs(mtbf_secs)),
        ..BrokerConfig::default()
    };
    vec![
        SloCell {
            name: "api-burst",
            schedule: both_providers(FaultSchedule::named("slo-api-burst"), 600, 1800, |p| {
                FaultKind::ApiErrorBurst { provider: p.to_owned(), error_rate: 0.9 }
            }),
            config: BrokerConfig::default(),
            sessions: 20,
            duration_secs: 3600,
            slos: vec![availability_slo()],
        },
        SloCell {
            name: "partition",
            schedule: both_providers(FaultSchedule::named("slo-partition"), 900, 1200, |p| {
                FaultKind::Partition { provider: p.to_owned() }
            }),
            config: BrokerConfig::default(),
            sessions: 20,
            duration_secs: 3600,
            slos: vec![availability_slo()],
        },
        SloCell {
            name: "boot-failure",
            schedule: both_providers(FaultSchedule::named("slo-boot-failure"), 600, 2400, |p| {
                FaultKind::BootFailure { provider: p.to_owned(), probability: 1.0 }
            }),
            config: churn(600),
            sessions: 20,
            duration_secs: 3600,
            slos: vec![availability_slo()],
        },
        SloCell {
            name: "straggler",
            schedule: both_providers(FaultSchedule::named("slo-straggler"), 600, 2400, |p| {
                FaultKind::Straggler { provider: p.to_owned(), slowdown: 10.0, probability: 1.0 }
            }),
            config: churn(600),
            sessions: 20,
            duration_secs: 3600,
            slos: vec![
                availability_slo(),
                boot_latency_slo("campus", 120.0),
                boot_latency_slo("aws", 180.0),
            ],
        },
        SloCell {
            name: "storm",
            schedule: FaultSchedule::named("slo-storm")
                .window(
                    600,
                    1200,
                    FaultKind::ApiErrorBurst { provider: "aws".to_owned(), error_rate: 0.6 },
                )
                .window(
                    1800,
                    1800,
                    FaultKind::BootFailure { provider: "campus".to_owned(), probability: 0.5 },
                )
                .window(
                    2400,
                    1800,
                    FaultKind::Straggler {
                        provider: "aws".to_owned(),
                        slowdown: 4.0,
                        probability: 0.5,
                    },
                )
                .window(4200, 600, FaultKind::Partition { provider: "aws".to_owned() })
                .window(4200, 600, FaultKind::Partition { provider: "campus".to_owned() }),
            config: churn(900),
            sessions: 20,
            duration_secs: 7200,
            slos: vec![
                availability_slo(),
                boot_latency_slo("campus", 120.0),
                boot_latency_slo("aws", 180.0),
            ],
        },
    ]
}

/// A cell by name.
pub fn cell_by_name(name: &str) -> Option<SloCell> {
    e4_alerting_matrix().into_iter().find(|c| c.name == name)
}

/// One fault burst joined to the alert (if any) that detected it.
#[derive(Debug, Clone, PartialEq)]
pub struct BurstOutcome {
    /// The fault label.
    pub kind: String,
    /// The provider or container hit.
    pub target: String,
    /// Burst start, virtual seconds.
    pub start_secs: u64,
    /// Burst length, virtual seconds.
    pub duration_secs: u64,
    /// The SLO whose alert detected the burst, when one did.
    pub slo: Option<String>,
    /// Seconds from burst start to the alert firing. Zero when an alert
    /// was already burning as the burst opened.
    pub detection_latency_secs: Option<f64>,
}

impl BurstOutcome {
    /// Whether any alert covered the burst.
    pub fn detected(&self) -> bool {
        self.slo.is_some()
    }
}

/// Everything one cell run measured.
#[derive(Debug)]
pub struct CellOutcome {
    /// Cell name.
    pub cell: String,
    /// Seed that drove it.
    pub seed: u64,
    /// Faults the chaos engine fired.
    pub faults_fired: usize,
    /// Every burst in the schedule, joined to alerts.
    pub bursts: Vec<BurstOutcome>,
    /// The full run report (alerts, metrics snapshot, exports).
    pub report: ChaosRunReport,
}

impl CellOutcome {
    /// `true` when every burst in the cell was covered by an alert.
    pub fn all_detected(&self) -> bool {
        self.bursts.iter().all(BurstOutcome::detected)
    }

    /// Mean detection latency across detected bursts, seconds.
    pub fn mean_detection_secs(&self) -> Option<f64> {
        let lats: Vec<f64> = self.bursts.iter().filter_map(|b| b.detection_latency_secs).collect();
        if lats.is_empty() {
            return None;
        }
        Some(lats.iter().sum::<f64>() / lats.len() as f64)
    }

    /// Worst detection latency across detected bursts, seconds.
    pub fn max_detection_secs(&self) -> Option<f64> {
        self.bursts
            .iter()
            .filter_map(|b| b.detection_latency_secs)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// The canonical JSON the golden test pins: burst joins, alert log and
    /// headline counters — everything deterministic for `(cell, seed)`.
    pub fn to_json(&self) -> Value {
        json!({
            "cell": self.cell,
            "seed": self.seed,
            "faults_fired": self.faults_fired,
            "bursts": self.bursts.iter().map(|b| json!({
                "kind": b.kind,
                "target": b.target,
                "start_secs": b.start_secs,
                "duration_secs": b.duration_secs,
                "slo": b.slo,
                "detection_latency_secs": b.detection_latency_secs,
            })).collect::<Vec<Value>>(),
            "alerts": self.report.alerts.iter().map(AlertRecord::to_json).collect::<Vec<Value>>(),
            "submits": {
                "attempts": self.report.submits.attempts,
                "accepted": self.report.submits.accepted,
                "transient": self.report.submits.transient_refusals,
                "hard": self.report.submits.hard_failures,
            },
        })
    }
}

/// Runs one cell with one seed and joins bursts to alerts.
pub fn run_cell(cell: &SloCell, seed: u64) -> CellOutcome {
    let mut scenario = ChaosScenario::new(cell.schedule.clone(), seed)
        .config(cell.config.clone())
        .sessions(cell.sessions)
        .duration(SimDuration::from_secs(cell.duration_secs));
    for slo in &cell.slos {
        scenario = scenario.slo(slo.clone());
    }
    let report = scenario.run();
    let intervals = active_intervals(&report.alerts);
    let bursts = cell
        .schedule
        .windows()
        .iter()
        .map(|w| {
            let start_ms = w.start_secs * 1000;
            let end_ms = (w.start_secs + w.duration_secs + JOIN_SLACK_SECS) * 1000;
            // The earliest-fired alert interval overlapping the burst
            // (including alerts already burning when it opened).
            let hit = intervals
                .iter()
                .filter(|iv| iv.fired_ms < end_ms && iv.resolved_ms.is_none_or(|r| r > start_ms))
                .min_by_key(|iv| iv.fired_ms);
            let (slo, latency) = match hit {
                Some(iv) => (
                    Some(iv.slo.clone()),
                    Some((iv.fired_ms.saturating_sub(start_ms)) as f64 / 1000.0),
                ),
                None => (None, None),
            };
            BurstOutcome {
                kind: w.kind.label().to_owned(),
                target: burst_target(&w.kind),
                start_secs: w.start_secs,
                duration_secs: w.duration_secs,
                slo,
                detection_latency_secs: latency,
            }
        })
        .collect();
    CellOutcome {
        cell: cell.name.to_owned(),
        seed,
        faults_fired: report.chaos_faults_fired,
        bursts,
        report,
    }
}

fn burst_target(kind: &FaultKind) -> String {
    match kind {
        FaultKind::ApiErrorBurst { provider, .. }
        | FaultKind::BootFailure { provider, .. }
        | FaultKind::Straggler { provider, .. }
        | FaultKind::Partition { provider } => provider.clone(),
        FaultKind::BlobOutage { container } | FaultKind::BlobCorruption { container, .. } => {
            container.clone()
        }
    }
}

/// One fired→resolved alert interval.
#[derive(Debug)]
struct AlertInterval {
    slo: String,
    fired_ms: u64,
    resolved_ms: Option<u64>,
}

/// Pairs Fired/Resolved transitions per (slo, window) into intervals.
fn active_intervals(alerts: &[AlertRecord]) -> Vec<AlertInterval> {
    let mut intervals: Vec<AlertInterval> = Vec::new();
    let mut open: Vec<(String, (u64, u64), usize)> = Vec::new();
    for alert in alerts {
        let key = (alert.slo.clone(), alert.window_secs);
        match alert.kind {
            AlertKind::Fired => {
                open.push((key.0.clone(), key.1, intervals.len()));
                intervals.push(AlertInterval {
                    slo: alert.slo.clone(),
                    fired_ms: alert.at_ms,
                    resolved_ms: None,
                });
            }
            AlertKind::Resolved => {
                if let Some(pos) = open
                    .iter()
                    .rposition(|(slo, w, _)| *slo == alert.slo && *w == alert.window_secs)
                {
                    let (_, _, idx) = open.remove(pos);
                    intervals[idx].resolved_ms = Some(alert.at_ms);
                }
            }
        }
    }
    intervals
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_cells_are_distinct_and_alertable() {
        let cells = e4_alerting_matrix();
        assert_eq!(cells.len(), 5);
        let mut names: Vec<&str> = cells.iter().map(|c| c.name).collect();
        names.dedup();
        assert_eq!(names.len(), 5, "cell names must be unique");
        for cell in &cells {
            assert!(!cell.slos.is_empty(), "{} must register SLOs", cell.name);
            assert!(!cell.schedule.windows().is_empty());
        }
        assert!(cell_by_name("api-burst").is_some());
        assert!(cell_by_name("nope").is_none());
    }

    #[test]
    fn api_burst_cell_detects_both_bursts_deterministically() {
        let cell = cell_by_name("api-burst").expect("cell exists");
        let outcome = run_cell(&cell, 42);
        assert!(outcome.faults_fired > 0);
        assert!(outcome.all_detected(), "bursts: {:?}", outcome.bursts);
        for burst in &outcome.bursts {
            let lat = burst.detection_latency_secs.unwrap_or(f64::MAX);
            assert!(lat <= 900.0, "detection must land within the window, got {lat}s");
        }
        let again = run_cell(&cell, 42);
        assert_eq!(
            outcome.to_json().to_string(),
            again.to_json().to_string(),
            "cell outcome must be byte-identical for one (schedule, seed)"
        );
    }

    #[test]
    fn interval_pairing_joins_fired_to_resolved() {
        let mk = |at_ms, kind| AlertRecord {
            at_ms,
            slo: "s".to_owned(),
            severity: AlertSeverity::Page,
            kind,
            window_secs: (600, 300),
            burn_long: 3.0,
            burn_short: 3.0,
            evidence: String::new(),
        };
        let intervals = active_intervals(&[
            mk(1000, AlertKind::Fired),
            mk(5000, AlertKind::Resolved),
            mk(9000, AlertKind::Fired),
        ]);
        assert_eq!(intervals.len(), 2);
        assert_eq!(intervals[0].resolved_ms, Some(5000));
        assert_eq!(intervals[1].resolved_ms, None);
    }
}
