//! The E6 flash crowd, re-run against the cache plane.
//!
//! Three configurations of the same 40-user single-burst crowd:
//!
//! * **cold** — no warm pool, no cache (the E6 baseline);
//! * **warm** — a pre-bootstrapped pool of 4 (the E6 mitigation);
//! * **coalesced** — a warm pool of **1** plus the `evop-cache` plane:
//!   the first request leads a real model run, the other 39 attach as
//!   singleflight followers, and a repeat wave 300 virtual seconds later
//!   is served straight from L1.
//!
//! Everything runs in virtual time from one seed, so the whole report is
//! a pure function of `(schedule, seed)` — `tests/cache_golden.rs` pins
//! the canonical JSON byte-for-byte and asserts the headline claims
//! (≥ 90 % of requests served without a model run, follower TTFR under
//! the warm baseline's 180 s, cost under the warm baseline's $0.48).

use evop_broker::{Broker, BrokerConfig, BrokerEvent};
use evop_cache::{CacheConfig, CacheKey, CacheStats, Coalescer, ResultCache, Submission};
use evop_cloud::JobState;
use evop_core::experiments::{e6_flash_crowd, E6Config, E6Result};
use evop_sim::stats::Percentiles;
use evop_sim::SimDuration;
use serde_json::{json, Value};

/// Warm-pool size of the coalesced configuration: one instance is all the
/// leader needs; followers never touch the cloud.
pub const COALESCED_WARM_POOL: u32 = 1;

/// Virtual seconds between the burst and the repeat (L1) wave.
const REPEAT_WAVE_DELAY_SECS: u64 = 300;

/// Rounds to 4 decimal places so the golden JSON stays tidy.
fn round4(x: f64) -> f64 {
    (x * 10_000.0).round() / 10_000.0
}

/// What the coalesced configuration measured.
#[derive(Debug, Clone)]
pub struct CoalescedOutcome {
    /// Warm-pool size used.
    pub warm_pool: u32,
    /// Classified requests (burst + repeat wave).
    pub requests: u64,
    /// Requests that led a real model run.
    pub misses: u64,
    /// Requests that attached to the in-flight run.
    pub followers: u64,
    /// Repeat-wave requests served from L1.
    pub hits: u64,
    /// Leader's time from burst to first result, virtual seconds.
    pub leader_ttfr_secs: f64,
    /// Median follower time-to-first-result, virtual seconds.
    pub follower_median_ttfr_secs: f64,
    /// 95th-percentile follower time-to-first-result, virtual seconds.
    pub follower_p95_ttfr_secs: f64,
    /// Age of the cached entry when the repeat wave hit it, seconds.
    pub hit_age_secs: f64,
    /// `RequestCoalesced` events in the broker log.
    pub coalesced_events: u64,
    /// Total cloud cost over the same horizon as the baselines.
    pub cost: f64,
    /// Cache-plane totals at the end of the run.
    pub stats: CacheStats,
}

impl CoalescedOutcome {
    /// Share of requests served without a model run (hits + followers).
    pub fn served_without_run_ratio(&self) -> f64 {
        if self.requests == 0 {
            return 0.0;
        }
        (self.hits + self.followers) as f64 / self.requests as f64
    }
}

/// The full cold / warm / coalesced comparison for one `(crowd, seed)`.
#[derive(Debug, Clone)]
pub struct CacheReport {
    /// Seed that drove all three runs.
    pub seed: u64,
    /// Users in the burst.
    pub crowd: usize,
    /// E6 baseline without a warm pool.
    pub cold: E6Config,
    /// E6 baseline with a warm pool of 4.
    pub warm: E6Config,
    /// The cache-plane configuration.
    pub coalesced: CoalescedOutcome,
}

impl CacheReport {
    /// The canonical JSON the golden test pins.
    pub fn to_json(&self) -> Value {
        let baseline = |c: &E6Config| {
            json!({
                "warm_pool": c.warm_pool,
                "median_ttfr_secs": round4(c.median_first_result.as_secs_f64()),
                "p95_ttfr_secs": round4(c.p95_first_result.as_secs_f64()),
                "cost": round4(c.cost),
            })
        };
        let co = &self.coalesced;
        json!({
            "report": "cache-flash-crowd",
            "seed": self.seed,
            "crowd": self.crowd,
            "cold": baseline(&self.cold),
            "warm": baseline(&self.warm),
            "coalesced": {
                "warm_pool": co.warm_pool,
                "requests": co.requests,
                "outcomes": { "miss": co.misses, "follower": co.followers, "hit": co.hits },
                "served_without_run_ratio": round4(co.served_without_run_ratio()),
                "leader_ttfr_secs": round4(co.leader_ttfr_secs),
                "follower_median_ttfr_secs": round4(co.follower_median_ttfr_secs),
                "follower_p95_ttfr_secs": round4(co.follower_p95_ttfr_secs),
                "hit_age_secs": round4(co.hit_age_secs),
                "coalesced_events": co.coalesced_events,
                "cost": round4(co.cost),
                "cache_stats": co.stats.to_json(),
            },
            "crossover": {
                "follower_median_vs_warm_secs": round4(
                    self.warm.median_first_result.as_secs_f64() - co.follower_median_ttfr_secs,
                ),
                "cost_saving_vs_warm": round4(self.warm.cost - co.cost),
            },
        })
    }

    /// The canonical pretty string (what `--json` prints, newline-free).
    pub fn render(&self) -> String {
        serde_json::to_string_pretty(&self.to_json()).unwrap_or_else(|_| String::from("{}"))
    }
}

/// Runs the full comparison: the two E6 baselines, then the coalesced
/// configuration over the same virtual horizon.
pub fn flash_crowd_report(crowd: usize, seed: u64) -> CacheReport {
    let E6Result { cold, warm, .. } = e6_flash_crowd(crowd, 4, seed).expect("e6 runs");
    let coalesced = run_coalesced(crowd, seed);
    CacheReport { seed, crowd, cold, warm, coalesced }
}

/// The coalesced run: one burst, singleflight dedup, an L1 repeat wave,
/// then the sessions leave and the horizon drains (so cost is measured
/// over the same virtual span as the baselines).
fn run_coalesced(crowd: usize, seed: u64) -> CoalescedOutcome {
    let config = BrokerConfig {
        private_capacity_vcpus: 16,
        warm_pool_size: COALESCED_WARM_POOL,
        ..BrokerConfig::default()
    };
    let mut broker = Broker::new(config, seed);
    let mut cache = ResultCache::new(CacheConfig { seed, ..CacheConfig::default() });
    cache.set_metrics(broker.metrics().clone());
    let mut coalescer = Coalescer::new();
    coalescer.set_metrics(broker.metrics().clone());
    let key = CacheKey::new("topmodel", "morland", 1, &json!({ "hours": 24 }));

    // Let the warm pool boot, exactly like the baselines.
    broker.advance(SimDuration::from_secs(300));
    let crowd_arrival = broker.now();
    let horizon = crowd_arrival + SimDuration::from_secs(3600);

    // The burst: everyone asks the identical question at once. The cache
    // is cold, so the first request leads and the rest attach.
    let mut sessions = Vec::new();
    let mut leader = None;
    for i in 0..crowd {
        let session = broker.connect(&format!("flash-{i}"), "topmodel").expect("served");
        sessions.push(session);
        if cache.lookup(broker.now(), &key).is_some() {
            continue; // cannot happen on a cold cache; kept for shape
        }
        match coalescer
            .submit(&mut broker, &key, session, SimDuration::from_secs(60), None)
            .expect("warm instance serves the leader")
        {
            Submission::Leader { job } => leader = Some(job),
            Submission::Follower { .. } => {}
        }
    }
    let leader_job = leader.expect("first submission leads");

    // Poll on the E6 schedule until the leader's run completes. Job ids
    // are sim-global, so scan every instance: the leader's session may be
    // migrated off its original instance by a scale-down in the meantime.
    let mut finished = None;
    for _ in 0..240 {
        if let Some(done) = broker.cloud().instances().find_map(|i| {
            i.job(leader_job).and_then(|j| match j.state() {
                JobState::Completed { finished } => Some(finished),
                _ => None,
            })
        }) {
            finished = Some(done);
            break;
        }
        broker.advance(SimDuration::from_secs(15));
    }
    let finished = finished.expect("a 60 s run completes well inside the horizon");
    let ttfr = finished.saturating_since(crowd_arrival).as_secs_f64();

    // Fan the one result out: the leader and every follower complete at
    // the same virtual instant, then the result enters the cache.
    let flight = coalescer.complete(&key).expect("flight was in progress");
    let mut follower_ttfr = Percentiles::new();
    for _ in &flight.followers {
        follower_ttfr.record(ttfr);
    }
    let result = json!({
        "process": "topmodel",
        "catchment": "morland",
        "inputs": { "hours": 24 },
        "peak_m3s": round4(2.0 + (seed % 7) as f64 * 0.125),
    });
    cache.insert(broker.now(), key.clone(), &result);

    // The repeat wave: the same crowd asks again after the burst has
    // passed — every request is an L1 hit, no broker involvement at all.
    broker.advance(SimDuration::from_secs(REPEAT_WAVE_DELAY_SECS));
    let mut hit_age_secs = 0.0;
    for _ in 0..crowd {
        match cache.lookup(broker.now(), &key) {
            Some(hit) => hit_age_secs = hit.age.as_secs_f64(),
            None => cache.note_miss(),
        }
    }

    // Everyone got an answer; the sessions close and the broker scales
    // back down while the horizon drains.
    for session in sessions {
        let _ = broker.disconnect(session);
    }
    while broker.now() < horizon {
        broker.advance(SimDuration::from_secs(15));
    }

    let metrics = broker.metrics().clone();
    let coalesced_events = broker
        .events()
        .iter()
        .filter(|e| matches!(e, BrokerEvent::RequestCoalesced { .. }))
        .count() as u64;
    CoalescedOutcome {
        warm_pool: COALESCED_WARM_POOL,
        requests: metrics.counter_family_total("cache_requests_total"),
        misses: metrics.counter("cache_requests_total", &[("outcome", "miss")]),
        followers: metrics.counter("cache_requests_total", &[("outcome", "follower")]),
        hits: metrics.counter("cache_requests_total", &[("outcome", "hit")]),
        leader_ttfr_secs: ttfr,
        follower_median_ttfr_secs: follower_ttfr.median().unwrap_or(f64::MAX.min(1e9)),
        follower_p95_ttfr_secs: follower_ttfr.p95().unwrap_or(f64::MAX.min(1e9)),
        hit_age_secs,
        coalesced_events,
        cost: broker.total_cost(),
        stats: cache.stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesced_run_dedups_the_burst() {
        let outcome = run_coalesced(8, 42);
        assert_eq!(outcome.misses, 1, "exactly one model run leads");
        assert_eq!(outcome.followers, 7);
        assert_eq!(outcome.hits, 8, "the repeat wave is all L1 hits");
        assert_eq!(outcome.coalesced_events, 7);
        assert!(outcome.served_without_run_ratio() > 0.9);
        assert!(outcome.hit_age_secs >= REPEAT_WAVE_DELAY_SECS as f64);
    }

    #[test]
    fn report_is_deterministic_for_one_seed() {
        let a = flash_crowd_report(8, 7);
        let b = flash_crowd_report(8, 7);
        assert_eq!(a.render(), b.render(), "same (schedule, seed) must be byte-identical");
    }
}
