//! Tiny shared argument parser for the report binaries.
//!
//! Every report bin (`report`, `trace_report`, `chaos_report`,
//! `slo_report`, `cache_report`, `perf_report`) takes the same handful of
//! flags; this module parses them once so the binaries stay declarative.
//! No external dependency — the grammar is a few flags plus per-binary
//! switches ([`CliSpec::with_switch`]) and valued options
//! ([`CliSpec::with_value`]).

use std::collections::{BTreeMap, BTreeSet};
use std::process::exit;

/// Parsed common options.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CliOptions {
    /// `--seed N`, when given.
    pub seed: Option<u64>,
    /// `--json`: emit machine-readable canonical JSON instead of tables.
    pub json: bool,
    /// `--cell NAME`: restrict a matrix run to one named cell.
    pub cell: Option<String>,
    /// `--out DIR`: also write exporter artifacts into this directory.
    pub out: Option<String>,
    /// Binary-specific boolean flags that were present.
    switches: BTreeSet<String>,
    /// Binary-specific valued flags.
    values: BTreeMap<String, String>,
}

impl CliOptions {
    /// `true` if the binary-specific switch `--<name>` was given.
    pub fn switch(&self, name: &str) -> bool {
        self.switches.contains(name)
    }

    /// The value of the binary-specific flag `--<name> VALUE`, if given.
    pub fn value(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }
}

/// Which flags a binary accepts. `--seed` and `--help` always work.
#[derive(Debug, Clone)]
pub struct CliSpec {
    bin: &'static str,
    default_seed: u64,
    json: bool,
    cell: bool,
    out: bool,
    /// Extra boolean flags: (name, help).
    switches: Vec<(&'static str, &'static str)>,
    /// Extra valued flags: (name, placeholder, help).
    values: Vec<(&'static str, &'static str, &'static str)>,
}

impl CliSpec {
    /// A spec accepting `--seed N` (defaulting to `default_seed`).
    pub fn new(bin: &'static str, default_seed: u64) -> CliSpec {
        CliSpec {
            bin,
            default_seed,
            json: false,
            cell: false,
            out: false,
            switches: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Also accept `--json`.
    pub fn with_json(mut self) -> CliSpec {
        self.json = true;
        self
    }

    /// Also accept `--cell NAME`.
    pub fn with_cell(mut self) -> CliSpec {
        self.cell = true;
        self
    }

    /// Also accept `--out DIR`.
    pub fn with_out(mut self) -> CliSpec {
        self.out = true;
        self
    }

    /// Also accept the boolean flag `--<name>` (read back with
    /// [`CliOptions::switch`]).
    pub fn with_switch(mut self, name: &'static str, help: &'static str) -> CliSpec {
        self.switches.push((name, help));
        self
    }

    /// Also accept the valued flag `--<name> <placeholder>` (read back
    /// with [`CliOptions::value`]).
    pub fn with_value(
        mut self,
        name: &'static str,
        placeholder: &'static str,
        help: &'static str,
    ) -> CliSpec {
        self.values.push((name, placeholder, help));
        self
    }

    fn usage(&self) -> String {
        let mut flags = format!("  --seed N     simulation seed (default {})\n", self.default_seed);
        if self.json {
            flags.push_str("  --json       print canonical JSON instead of tables\n");
        }
        if self.cell {
            flags.push_str("  --cell NAME  run only the named matrix cell\n");
        }
        if self.out {
            flags.push_str("  --out DIR    also write exporter artifacts into DIR\n");
        }
        for (name, help) in &self.switches {
            flags.push_str(&format!("  {:<12} {help}\n", format!("--{name}")));
        }
        for (name, placeholder, help) in &self.values {
            flags.push_str(&format!("  {:<12} {help}\n", format!("--{name} {placeholder}")));
        }
        format!(
            "usage: cargo run -p evop-bench --release --bin {} [--] [flags]\n{}  --help       this message",
            self.bin, flags
        )
    }

    /// Parses `args` (without the program name). Unknown or malformed
    /// flags produce an `Err` with the usage text.
    ///
    /// # Errors
    ///
    /// Returns the usage string (prefixed with the complaint) on any flag
    /// the spec does not accept, a missing value, or an unparsable seed.
    pub fn parse(&self, args: &[String]) -> Result<CliOptions, String> {
        let mut opts = CliOptions::default();
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--seed" => {
                    let value = iter
                        .next()
                        .ok_or_else(|| format!("--seed needs a value\n{}", self.usage()))?;
                    opts.seed = Some(
                        value
                            .parse()
                            .map_err(|_| format!("bad seed {value:?}\n{}", self.usage()))?,
                    );
                }
                "--json" if self.json => opts.json = true,
                "--cell" if self.cell => {
                    let value = iter
                        .next()
                        .ok_or_else(|| format!("--cell needs a value\n{}", self.usage()))?;
                    opts.cell = Some(value.clone());
                }
                "--out" if self.out => {
                    let value = iter
                        .next()
                        .ok_or_else(|| format!("--out needs a value\n{}", self.usage()))?;
                    opts.out = Some(value.clone());
                }
                "--help" | "-h" => return Err(self.usage()),
                other => {
                    let name = other.strip_prefix("--").unwrap_or(other);
                    if self.switches.iter().any(|(s, _)| *s == name) {
                        opts.switches.insert(name.to_owned());
                    } else if self.values.iter().any(|(v, _, _)| *v == name) {
                        let value = iter
                            .next()
                            .ok_or_else(|| format!("--{name} needs a value\n{}", self.usage()))?;
                        opts.values.insert(name.to_owned(), value.clone());
                    } else {
                        return Err(format!("unknown flag {other:?}\n{}", self.usage()));
                    }
                }
            }
        }
        Ok(opts)
    }

    /// Parses the process arguments, printing usage and exiting on error —
    /// the one-liner the binaries call.
    pub fn parse_or_exit(&self) -> CliOptions {
        let args: Vec<String> = std::env::args().skip(1).collect();
        match self.parse(&args) {
            Ok(opts) => opts,
            Err(message) => {
                eprintln!("{message}");
                exit(2);
            }
        }
    }

    /// The spec's default seed — what callers use when `--seed` is absent.
    pub fn default_seed(&self) -> u64 {
        self.default_seed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn empty_args_yield_defaults() {
        let opts = CliSpec::new("report", 42).parse(&[]).unwrap();
        assert_eq!(opts, CliOptions::default());
    }

    #[test]
    fn all_flags_parse() {
        let spec = CliSpec::new("slo_report", 42).with_json().with_cell().with_out();
        let opts = spec
            .parse(&strings(&["--seed", "7", "--json", "--cell", "api-burst", "--out", "/tmp/x"]))
            .unwrap();
        assert_eq!(opts.seed, Some(7));
        assert!(opts.json);
        assert_eq!(opts.cell.as_deref(), Some("api-burst"));
        assert_eq!(opts.out.as_deref(), Some("/tmp/x"));
    }

    #[test]
    fn unaccepted_flags_are_rejected() {
        let spec = CliSpec::new("report", 42);
        assert!(spec.parse(&strings(&["--json"])).is_err());
        assert!(spec.parse(&strings(&["--frobnicate"])).is_err());
        assert!(spec.parse(&strings(&["--seed"])).is_err());
        assert!(spec.parse(&strings(&["--seed", "not-a-number"])).is_err());
    }

    #[test]
    fn help_surfaces_usage() {
        let err = CliSpec::new("report", 42).parse(&strings(&["--help"])).unwrap_err();
        assert!(err.contains("usage:"));
        assert!(err.contains("--seed"));
    }

    #[test]
    fn binary_specific_switches_and_values_parse() {
        let spec = CliSpec::new("perf_report", 42)
            .with_switch("check", "compare against committed baselines")
            .with_value("reps", "N", "repetitions per benchmark");
        let opts = spec.parse(&strings(&["--check", "--reps", "9"])).unwrap();
        assert!(opts.switch("check"));
        assert_eq!(opts.value("reps"), Some("9"));
        assert!(!opts.switch("update-baseline"));
        assert!(opts.value("tolerance").is_none());
        // Declared flags show up in usage; undeclared ones are rejected.
        let usage = spec.parse(&strings(&["--help"])).unwrap_err();
        assert!(usage.contains("--check"));
        assert!(usage.contains("--reps N"));
        assert!(spec.parse(&strings(&["--tolerance", "0.5"])).is_err());
        assert!(spec.parse(&strings(&["--reps"])).is_err(), "valued flag needs a value");
    }
}
