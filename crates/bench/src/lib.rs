//! Benchmark harness for the EVOp reproduction.
//!
//! * `cargo bench` runs the Criterion benches (one group per experiment
//!   family — see `benches/`);
//! * `cargo run -p evop-bench --release --bin report` regenerates the
//!   numbers behind every figure/claim in EXPERIMENTS.md in one pass;
//! * `cargo run -p evop-bench --release --bin slo_report` runs the E4
//!   alerting matrix and reports alert detection latency per fault burst;
//! * `cargo run -p evop-bench --release --bin cache_report` reruns the E6
//!   flash crowd cold vs warm vs coalesced against the cache plane;
//! * `cargo run -p evop-bench --release --bin perf_report` runs the fixed
//!   perf suite and maintains the machine-readable perf trajectory
//!   (`BENCH_sim.json` / `BENCH_e2e.json`), with `--check` as the CI
//!   regression gate;
//! * `cargo run -p evop-bench --release --bin tsdb_report` replays the
//!   multi-day diurnal portal soak through the embedded time-series
//!   store and the tail sampler, emitting forecast-ready hourly rollups.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod cli;
pub mod perf;
pub mod slo;
pub mod tsdb;

pub use cli::{CliOptions, CliSpec};
