//! Benchmark harness for the EVOp reproduction.
//!
//! * `cargo bench` runs the Criterion benches (one group per experiment
//!   family — see `benches/`);
//! * `cargo run -p evop-bench --release --bin report` regenerates the
//!   numbers behind every figure/claim in EXPERIMENTS.md in one pass.

#![forbid(unsafe_code)]
