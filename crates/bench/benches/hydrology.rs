//! Criterion benches for the hydrology stack: E9 (scenario table), plus
//! model-execution and pre-processing microbenchmarks — these are the real
//! compute the paper's instances were sized for.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use evop_core::experiments::e9_scenarios;
use evop_data::synthetic::WeatherGenerator;
use evop_data::{Catchment, Timestamp};
use evop_models::pet::hamon_series;
use evop_models::{Forcing, FuseConfig, FuseParams, Topmodel, TopmodelParams};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn forcing(days: usize) -> (Catchment, Forcing) {
    let catchment = Catchment::morland();
    let generator = WeatherGenerator::for_catchment(&catchment, 42);
    let start = Timestamp::from_ymd(2012, 1, 1);
    let n = days * 24;
    let rain = generator.rainfall(start, 3600, n);
    let temp = generator.temperature(start, 3600, n);
    let pet = hamon_series(&temp, catchment.outlet().lat());
    (catchment, Forcing::new(rain, pet))
}

fn bench_dem_preprocessing(c: &mut Criterion) {
    let catchment = Catchment::morland();
    c.bench_function("dem_generate_and_ti_distribution", |b| {
        b.iter(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(1);
            let dem = catchment.generate_dem(&mut rng);
            dem.ti_distribution(16)
        })
    });
}

fn bench_topmodel_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("topmodel_run");
    for days in [30usize, 90, 365] {
        let (catchment, f) = forcing(days);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let dem = catchment.generate_dem(&mut rng);
        let model = Topmodel::new(dem.ti_distribution(16), catchment.area_km2());
        let params = TopmodelParams::default();
        group.bench_with_input(BenchmarkId::from_parameter(days), &days, |b, _| {
            b.iter(|| model.run(&params, &f).unwrap())
        });
    }
    group.finish();
}

fn bench_fuse_single_vs_ensemble(c: &mut Criterion) {
    let (catchment, f) = forcing(30);
    let params = FuseParams::default();
    let parents: Vec<FuseConfig> =
        FuseConfig::named_parents().into_iter().map(|(_, cfg)| cfg).collect();
    let all = FuseConfig::all_combinations();

    let mut group = c.benchmark_group("fuse");
    group.bench_function("single_structure", |b| {
        let model = evop_models::FuseModel::new(parents[0], catchment.area_km2());
        b.iter(|| model.run(&params, &f).unwrap())
    });
    group.bench_function("ensemble_4_parents", |b| {
        b.iter(|| {
            evop_models::fuse::run_ensemble(&parents, &params, &f, catchment.area_km2()).unwrap()
        })
    });
    group.bench_function("ensemble_24_structures", |b| {
        b.iter(|| evop_models::fuse::run_ensemble(&all, &params, &f, catchment.area_km2()).unwrap())
    });
    group.finish();
}

fn bench_e9_scenario_table(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_scenarios");
    group.sample_size(10);
    group.bench_function("five_scenarios_two_models", |b| {
        b.iter(|| e9_scenarios(&Catchment::morland(), 20, 42))
    });
    group.finish();
}

fn bench_monte_carlo_iteration(c: &mut Criterion) {
    // One calibration sample: the unit of work the elastic fleet of E5
    // parallelises.
    let (catchment, f) = forcing(30);
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let dem = catchment.generate_dem(&mut rng);
    let model = Topmodel::new(dem.ti_distribution(16), catchment.area_km2());
    let truth_q = {
        let generator = WeatherGenerator::for_catchment(&catchment, 42);
        let truth = evop_data::synthetic::TruthModel::for_catchment(&catchment, 42);
        let start = Timestamp::from_ymd(2012, 1, 1);
        let rain = generator.rainfall(start, 3600, 30 * 24);
        let temp = generator.temperature(start, 3600, 30 * 24);
        truth.discharge(&rain, &temp)
    };
    c.bench_function("monte_carlo_sample_run_plus_nse", |b| {
        b.iter(|| {
            let out = model.run(&TopmodelParams::default(), &f).unwrap();
            evop_models::objectives::nse(&out.discharge_m3s, &truth_q)
        })
    });
}

criterion_group!(
    benches,
    bench_dem_preprocessing,
    bench_topmodel_run,
    bench_fuse_single_vs_ensemble,
    bench_e9_scenario_table,
    bench_monte_carlo_iteration
);
criterion_main!(benches);
