//! Criterion benches for the portal layer: E10 (multimodal alignment),
//! E11 (journey cohorts), E12 (asset-map discovery), E13 (workflow
//! replay), plus rendering microbenchmarks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use evop_core::experiments::{e10_multimodal, e11_journeys, e12_run, e12_setup, e13_workflow};
use evop_data::{TimeSeries, Timestamp};
use evop_portal::render::{line_chart, sparkline};

fn bench_e10_multimodal(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_multimodal");
    group.sample_size(10);
    group.bench_function("200_probes", |b| b.iter(|| e10_multimodal(42)));
    group.finish();
}

fn bench_e11_journeys(c: &mut Criterion) {
    let mut group = c.benchmark_group("e11_journeys");
    for scale in [10usize, 50, 200] {
        group.bench_with_input(BenchmarkId::from_parameter(scale * 6), &scale, |b, &scale| {
            b.iter(|| e11_journeys(scale, 42))
        });
    }
    group.finish();
}

fn bench_e12_asset_map(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_asset_map");
    for extra in [100usize, 1000, 10_000] {
        let (map, queries) = e12_setup(extra, 42);
        group.bench_with_input(BenchmarkId::from_parameter(map.len()), &(), |b, _| {
            b.iter(|| e12_run(&map, &queries))
        });
    }
    group.finish();
}

fn bench_e13_workflow(c: &mut Criterion) {
    let mut group = c.benchmark_group("e13_workflow");
    group.sample_size(10);
    group.bench_function("compose_execute_replay", |b| b.iter(|| e13_workflow(42)));
    group.finish();
}

fn bench_rendering(c: &mut Criterion) {
    let series = TimeSeries::from_fn(Timestamp::from_ymd(2012, 1, 1), 3600, 24 * 365, |t| {
        (t.day_of_year() as f64 / 20.0).sin().abs() * 10.0
    });
    c.bench_function("render_line_chart_year_hourly", |b| {
        b.iter(|| line_chart(&series, 72, 14, Some(8.0)))
    });
    c.bench_function("render_sparkline_year_hourly", |b| b.iter(|| sparkline(&series, 60)));
}

criterion_group!(
    benches,
    bench_e10_multimodal,
    bench_e11_journeys,
    bench_e12_asset_map,
    bench_e13_workflow,
    bench_rendering
);
criterion_main!(benches);
