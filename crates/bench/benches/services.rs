//! Criterion benches for the service substrate: E2 (REST vs SOAP), E15
//! (push vs poll), plus router/XML/WPS microbenchmarks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use evop_core::experiments::{e15_push_vs_poll, e2_rest_vs_soap};
use evop_services::rest::Router;
use evop_services::wps::{ParamSpec, ParamType, ProcessDescriptor, WpsProcess, WpsServer};
use evop_services::xml::Element;
use evop_services::{Method, Request, Response};
use serde_json::{json, Map, Value};

fn bench_e2_rest_vs_soap(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_rest_vs_soap");
    for workflows in [100usize, 500] {
        group.bench_with_input(BenchmarkId::from_parameter(workflows), &workflows, |b, &w| {
            b.iter(|| e2_rest_vs_soap(w, 4, 7))
        });
    }
    group.finish();
}

fn bench_e15_push_vs_poll(c: &mut Criterion) {
    c.bench_function("e15_push_vs_poll", |b| b.iter(|| e15_push_vs_poll(30, 42)));
}

fn bench_router_dispatch(c: &mut Criterion) {
    let mut router = Router::new();
    for i in 0..20 {
        router.route(Method::Get, &format!("/collection{i}/{{id}}/items/{{item}}"), |_, p| {
            Response::ok().text(p.get("id").unwrap_or("?").to_owned())
        });
    }
    let request = Request::get("/collection17/morland/items/42");
    c.bench_function("router_dispatch_20_routes", |b| {
        b.iter(|| router.dispatch(std::hint::black_box(&request)))
    });
}

fn bench_xml_roundtrip(c: &mut Criterion) {
    let doc = Element::new("wps:Execute")
        .attr("service", "WPS")
        .child(Element::new("ows:Identifier").text("topmodel"))
        .child(Element::new("wps:DataInputs").children((0..25).map(|i| {
            Element::new("wps:Input")
                .child(Element::new("ows:Identifier").text(format!("p{i}")))
                .child(
                    Element::new("wps:Data")
                        .child(Element::new("wps:LiteralData").text(format!("{}", i as f64 * 0.1))),
                )
        })));
    let wire = doc.to_string();
    c.bench_function("xml_parse_25_inputs", |b| {
        b.iter(|| Element::parse(std::hint::black_box(&wire)).unwrap())
    });
    c.bench_function("xml_serialise_25_inputs", |b| b.iter(|| doc.to_string()));
}

#[derive(Debug)]
struct NoopProcess;

impl WpsProcess for NoopProcess {
    fn descriptor(&self) -> ProcessDescriptor {
        ProcessDescriptor {
            identifier: "noop".into(),
            title: "No-op".into(),
            abstract_text: "Validation-overhead probe".into(),
            inputs: vec![
                ParamSpec::required("x", "x", ParamType::Float { min: Some(0.0), max: Some(1.0) }),
                ParamSpec::optional("mode", "mode", ParamType::Text, json!("fast")),
            ],
            outputs: vec![("y".into(), "echo".into())],
        }
    }

    fn execute(&self, inputs: &Map<String, Value>) -> Result<Value, String> {
        Ok(inputs["x"].clone())
    }
}

fn bench_wps_validation_overhead(c: &mut Criterion) {
    let mut server = WpsServer::new();
    server.register(NoopProcess);
    c.bench_function("wps_execute_validation_overhead", |b| {
        b.iter(|| server.execute("noop", json!({"x": 0.5})).unwrap())
    });
}

criterion_group!(
    benches,
    bench_e2_rest_vs_soap,
    bench_e15_push_vs_poll,
    bench_router_dispatch,
    bench_xml_roundtrip,
    bench_wps_validation_overhead
);
criterion_main!(benches);
