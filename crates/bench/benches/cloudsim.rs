//! Criterion benches for the cloud substrate: E5 (elastic Monte Carlo),
//! E7 (image kinds), E8 (policy swap), plus simulator-throughput probes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use evop_cloud::{CloudSim, MachineImage, Provider};
use evop_core::experiments::{e5_elastic_monte_carlo, e7_image_kinds, e8_policy_swap};
use evop_sim::SimDuration;

fn bench_e5_elastic(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_elastic_monte_carlo");
    group.sample_size(10);
    for runs in [16usize, 64, 200] {
        group.bench_with_input(BenchmarkId::from_parameter(runs), &runs, |b, &runs| {
            b.iter(|| e5_elastic_monte_carlo(runs, SimDuration::from_secs(300), 4, 42))
        });
    }
    group.finish();
}

fn bench_e7_image_kinds(c: &mut Criterion) {
    c.bench_function("e7_image_kinds", |b| {
        b.iter(|| e7_image_kinds(5, SimDuration::from_secs(120), 3))
    });
}

fn bench_e8_policy_swap(c: &mut Criterion) {
    c.bench_function("e8_policy_swap", |b| b.iter(|| e8_policy_swap(6, 9)));
}

/// Raw simulator throughput: how many job events per second the DES kernel
/// sustains — the capacity ceiling of every experiment above.
fn bench_simulator_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("cloudsim_throughput");
    for jobs in [100usize, 1000, 5000] {
        group.bench_with_input(BenchmarkId::from_parameter(jobs), &jobs, |b, &jobs| {
            b.iter(|| {
                let mut sim = CloudSim::new(1);
                sim.register_provider(Provider::private_openstack("campus", 64));
                let image = MachineImage::streamlined("img", ["m"]);
                let id = image.id().clone();
                sim.register_image(image);
                let mut nodes = Vec::new();
                for _ in 0..16 {
                    nodes.push(sim.launch("campus", "m1.large", &id).unwrap());
                }
                for i in 0..jobs {
                    sim.submit_job(nodes[i % nodes.len()], SimDuration::from_secs(30)).unwrap();
                }
                while let Some(t) = sim.next_event_time() {
                    sim.advance_to(t);
                }
                sim.total_cost()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_e5_elastic,
    bench_e7_image_kinds,
    bench_e8_policy_swap,
    bench_simulator_throughput
);
criterion_main!(benches);
