//! Criterion benches for the infrastructure experiments: E1 (data flow),
//! E3 (cloudburst), E4 (failure recovery), E6 (flash crowds).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use evop_cloud::FailureMode;
use evop_core::experiments::{e1_dataflow, e3_cloudburst, e4_failure_recovery, e6_flash_crowd};

fn bench_e1_dataflow(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_dataflow");
    group.sample_size(10);
    group.bench_function("portal_to_hydrograph", |b| {
        b.iter(|| e1_dataflow(std::hint::black_box(42)))
    });
    group.finish();
}

fn bench_e3_cloudburst(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_cloudburst");
    group.sample_size(10);
    for users in [40usize, 120] {
        group.bench_with_input(BenchmarkId::from_parameter(users), &users, |b, &users| {
            b.iter(|| e3_cloudburst(users, 42))
        });
    }
    group.finish();
}

fn bench_e4_failure_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_failure_recovery");
    group.sample_size(10);
    for (name, mode) in [
        ("hang", FailureMode::Hang),
        ("blackhole", FailureMode::NetworkBlackhole),
        ("crash", FailureMode::Crash),
    ] {
        group.bench_function(name, |b| b.iter(|| e4_failure_recovery(mode, 6, 11)));
    }
    group.finish();
}

fn bench_e6_flash_crowd(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_flash_crowd");
    group.sample_size(10);
    group.bench_function("crowd_40_warm_4", |b| b.iter(|| e6_flash_crowd(40, 4, 42)));
    group.finish();
}

criterion_group!(
    benches,
    bench_e1_dataflow,
    bench_e3_cloudburst,
    bench_e4_failure_recovery,
    bench_e6_flash_crowd
);
criterion_main!(benches);
