//! The original binary-heap event queue, kept as an executable reference.
//!
//! [`HeapQueue`] is the seed kernel's `BinaryHeap<Reverse<Entry>>`
//! implementation, verbatim in behaviour: time order, same-instant FIFO by
//! insertion sequence, and identical [`KernelCounters`] bookkeeping. The
//! ladder/slab [`EventQueue`](crate::EventQueue) replaced it on the hot
//! path, but equivalence between the two must stay *executable*, not
//! asserted — `tests/queue_equiv.rs` drives both with identical seeded op
//! sequences and compares every delivery and every counter, and the
//! `perf_report` queue-scaling cells time both so the speedup claim is a
//! measured number.
//!
//! Do not use this in simulation code; it exists for differential tests
//! and benchmarks only.

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

use crate::{KernelCounters, SimTime};

/// An entry in the heap: ordered by time, then by insertion sequence so that
/// events scheduled for the same instant pop in insertion order.
#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Entry<E>) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Entry<E>) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Entry<E>) -> Ordering {
        self.time.cmp(&other.time).then(self.seq.cmp(&other.seq))
    }
}

/// The seed's binary-heap priority queue — the reference implementation
/// the ladder/slab [`EventQueue`](crate::EventQueue) is differentially
/// tested against.
///
/// Same contract: time-ordered delivery, FIFO within an instant,
/// [`KernelCounters`] maintained identically. Cancellation is by
/// predicate only (the heap has no O(1) indexed cancel — that is one of
/// the reasons it was replaced).
///
/// # Examples
///
/// ```
/// use evop_sim::reference::HeapQueue;
/// use evop_sim::SimTime;
///
/// let mut queue = HeapQueue::new();
/// queue.push(SimTime::from_secs(2), "b");
/// queue.push(SimTime::from_secs(1), "a");
/// assert_eq!(queue.pop(), Some((SimTime::from_secs(1), "a")));
/// ```
#[derive(Debug)]
pub struct HeapQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    next_seq: u64,
    counters: KernelCounters,
    /// Timestamp and length of the current same-tick delivery run.
    batch: Option<(SimTime, u64)>,
}

impl<E> HeapQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> HeapQueue<E> {
        HeapQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            counters: KernelCounters::default(),
            batch: None,
        }
    }

    /// Schedules `event` for delivery at instant `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { time, seq, event }));
        self.counters.scheduled += 1;
        self.counters.depth_high_water = self.counters.depth_high_water.max(self.heap.len());
    }

    /// Removes and returns the earliest event, or `None` if the queue is
    /// empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let (time, event) = self.heap.pop().map(|Reverse(e)| (e.time, e.event))?;
        self.counters.delivered += 1;
        let run = match self.batch {
            Some((t, n)) if t == time => n + 1,
            _ => 1,
        };
        self.batch = Some((time, run));
        self.counters.max_same_tick_batch = self.counters.max_same_tick_batch.max(run);
        Some((time, event))
    }

    /// The delivery time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Removes and returns the earliest event only if it is due at or before
    /// `now`.
    pub fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, E)> {
        match self.peek_time() {
            Some(t) if t <= now => self.pop(),
            _ => None,
        }
    }

    /// Drains every event of the earliest due tick into `buf`, returning
    /// how many were appended — the reference semantics for
    /// [`EventQueue::pop_batch_due`](crate::EventQueue::pop_batch_due).
    pub fn pop_batch_due(&mut self, now: SimTime, buf: &mut Vec<(SimTime, E)>) -> usize {
        let Some(tick) = self.peek_time().filter(|&t| t <= now) else { return 0 };
        let mut n = 0;
        while self.peek_time() == Some(tick) {
            match self.pop() {
                Some(entry) => {
                    buf.push(entry);
                    n += 1;
                }
                None => break,
            }
        }
        n
    }

    /// The number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Pending events, under the invariant-suite name (equals `len()`).
    pub fn backlog(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Discards all pending events (counted as cancelled).
    pub fn clear(&mut self) {
        self.counters.cancelled += self.heap.len() as u64;
        self.heap.clear();
    }

    /// Removes every pending event matching `pred` without delivering it,
    /// returning how many were cancelled. Relative order of the survivors
    /// is preserved.
    pub fn cancel_where<F: FnMut(&E) -> bool>(&mut self, mut pred: F) -> usize {
        let entries = std::mem::take(&mut self.heap).into_vec();
        let before = entries.len();
        self.heap = entries.into_iter().filter(|Reverse(e)| !pred(&e.event)).collect();
        let cancelled = before - self.heap.len();
        self.counters.cancelled += cancelled as u64;
        cancelled
    }

    /// A copy of the queue's hot-path counters.
    pub fn counters(&self) -> KernelCounters {
        self.counters
    }
}

impl<E> Default for HeapQueue<E> {
    fn default() -> HeapQueue<E> {
        HeapQueue::new()
    }
}

impl<E> Extend<(SimTime, E)> for HeapQueue<E> {
    fn extend<I: IntoIterator<Item = (SimTime, E)>>(&mut self, iter: I) {
        for (time, event) in iter {
            self.push(time, event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_pops_in_time_then_fifo_order() {
        let mut q = HeapQueue::new();
        let t = SimTime::from_secs(1);
        q.push(SimTime::from_secs(2), 9);
        q.push(t, 0);
        q.push(t, 1);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, [0, 1, 9]);
        assert_eq!(q.counters().delivered, 3);
        assert_eq!(q.counters().max_same_tick_batch, 2);
    }

    #[test]
    fn reference_batch_drain_matches_tick_semantics() {
        let mut q = HeapQueue::new();
        let t = SimTime::from_secs(1);
        q.push(t, "a");
        q.push(SimTime::from_secs(2), "b");
        q.push(t, "c");
        let mut buf = Vec::new();
        assert_eq!(q.pop_batch_due(SimTime::from_secs(5), &mut buf), 2);
        assert_eq!(buf, [(t, "a"), (t, "c")]);
    }
}
