//! Online statistics used by the benchmark harnesses.
//!
//! Every experiment in EXPERIMENTS.md reports latency/cost distributions.
//! This module provides the small set of estimators they share:
//! [`Running`] (Welford mean/variance with min/max), [`Percentiles`]
//! (exact order statistics over a recorded sample) and [`Histogram`]
//! (fixed-width bucket counts for distribution shape).

use std::fmt;

/// Online mean / variance / extrema using Welford's algorithm.
///
/// # Examples
///
/// ```
/// use evop_sim::stats::Running;
///
/// let mut r = Running::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     r.record(x);
/// }
/// assert_eq!(r.count(), 8);
/// assert!((r.mean() - 5.0).abs() < 1e-12);
/// assert!((r.population_std_dev() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Running {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Running {
    /// Creates an empty accumulator.
    pub fn new() -> Running {
        Running { count: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Records one observation.
    ///
    /// Non-finite values are ignored (they would otherwise poison the whole
    /// accumulator); callers that care should validate first.
    pub fn record(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// The number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The arithmetic mean, or `0.0` if nothing was recorded.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// The population variance (dividing by *n*), or `0.0` if fewer than one
    /// observation was recorded.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// The population standard deviation.
    pub fn population_std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// The smallest recorded value, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// The largest recorded value, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// The sum of all recorded values.
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }

    /// Merges another accumulator into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &Running) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let new_mean = self.mean + delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.mean = new_mean;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Default for Running {
    /// Same as [`Running::new`]. A derived `Default` would zero the
    /// min/max sentinels, making `min()`/`max()` report `Some(0.0)` after
    /// merging an empty accumulator; `new()` keeps them at ±infinity.
    fn default() -> Running {
        Running::new()
    }
}

impl fmt::Display for Running {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} std={:.4} min={:.4} max={:.4}",
            self.count,
            self.mean(),
            self.population_std_dev(),
            self.min().unwrap_or(f64::NAN),
            self.max().unwrap_or(f64::NAN),
        )
    }
}

impl Extend<f64> for Running {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.record(x);
        }
    }
}

impl FromIterator<f64> for Running {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Running {
        let mut r = Running::new();
        r.extend(iter);
        r
    }
}

/// Exact percentile estimation over a recorded sample.
///
/// Keeps all samples; suitable for the experiment scales in this repository
/// (up to a few million observations).
///
/// # Examples
///
/// ```
/// use evop_sim::stats::Percentiles;
///
/// let mut p: Percentiles = (1..=100).map(f64::from).collect();
/// assert_eq!(p.quantile(0.5), Some(50.0));
/// assert_eq!(p.quantile(0.99), Some(99.0));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Percentiles {
    samples: Vec<f64>,
    sorted: bool,
}

impl Percentiles {
    /// Creates an empty sample set.
    pub fn new() -> Percentiles {
        Percentiles::default()
    }

    /// Records one observation. Non-finite values are ignored.
    pub fn record(&mut self, x: f64) {
        if x.is_finite() {
            self.samples.push(x);
            self.sorted = false;
        }
    }

    /// The number of recorded observations.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// `true` if no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The `q`-quantile (nearest-rank), `q` in `[0, 1]`. Returns `None` when
    /// empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1], got {q}");
        if self.samples.is_empty() {
            return None;
        }
        if !self.sorted {
            self.samples.sort_by(f64::total_cmp);
            self.sorted = true;
        }
        let n = self.samples.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        Some(self.samples[rank - 1])
    }

    /// Convenience: the median.
    pub fn median(&mut self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Convenience: the 95th percentile — the paper's QoS yardstick for
    /// flash-crowd experiments.
    pub fn p95(&mut self) -> Option<f64> {
        self.quantile(0.95)
    }

    /// Convenience: the 99th percentile.
    pub fn p99(&mut self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// The mean of the recorded sample.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }
}

impl Extend<f64> for Percentiles {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.record(x);
        }
    }
}

impl FromIterator<f64> for Percentiles {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Percentiles {
        let mut p = Percentiles::new();
        p.extend(iter);
        p
    }
}

/// A fixed-width-bucket histogram over `[lo, hi)` with overflow/underflow
/// buckets.
///
/// # Examples
///
/// ```
/// use evop_sim::stats::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 5);
/// h.record(0.5);
/// h.record(9.5);
/// h.record(42.0); // overflow
/// assert_eq!(h.bucket_count(0), 1);
/// assert_eq!(h.bucket_count(4), 1);
/// assert_eq!(h.overflow(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `buckets` equal-width bins.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`, bounds are not finite, or `buckets == 0`.
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Histogram {
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "invalid range [{lo}, {hi})");
        assert!(buckets > 0, "at least one bucket is required");
        Histogram { lo, hi, buckets: vec![0; buckets], underflow: 0, overflow: 0 }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        if !x.is_finite() || x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.buckets.len() as f64;
            let idx = (((x - self.lo) / width) as usize).min(self.buckets.len() - 1);
            if let Some(bucket) = self.buckets.get_mut(idx) {
                *bucket += 1;
            }
        }
    }

    /// The count in bucket `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn bucket_count(&self, idx: usize) -> u64 {
        self.buckets[idx]
    }

    /// The number of buckets.
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// `true` if nothing has been recorded in any in-range bucket.
    pub fn is_empty(&self) -> bool {
        self.total() == 0
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the range's upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations, including under/overflow.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Iterates over `(bucket_lower_bound, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        let width = (self.hi - self.lo) / self.buckets.len() as f64;
        self.buckets.iter().enumerate().map(move |(i, &c)| (self.lo + width * i as f64, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_matches_textbook() {
        let r: Running = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].into_iter().collect();
        assert_eq!(r.count(), 8);
        assert!((r.mean() - 5.0).abs() < 1e-12);
        assert!((r.population_std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(r.min(), Some(2.0));
        assert_eq!(r.max(), Some(9.0));
        assert!((r.sum() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn running_ignores_non_finite() {
        let mut r = Running::new();
        r.record(f64::NAN);
        r.record(f64::INFINITY);
        r.record(3.0);
        assert_eq!(r.count(), 1);
        assert_eq!(r.mean(), 3.0);
    }

    #[test]
    fn running_merge_equals_sequential() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 10.0).collect();
        let whole: Running = xs.iter().copied().collect();
        let mut left: Running = xs[..300].iter().copied().collect();
        let right: Running = xs[300..].iter().copied().collect();
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.population_variance() - whole.population_variance()).abs() < 1e-9);
    }

    #[test]
    fn empty_running_is_safe() {
        let r = Running::new();
        assert_eq!(r.mean(), 0.0);
        assert_eq!(r.min(), None);
        assert_eq!(r.max(), None);
        assert_eq!(r.population_variance(), 0.0);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut p: Percentiles = (1..=100).map(f64::from).collect();
        assert_eq!(p.quantile(0.0), Some(1.0));
        assert_eq!(p.quantile(0.5), Some(50.0));
        assert_eq!(p.p95(), Some(95.0));
        assert_eq!(p.p99(), Some(99.0));
        assert_eq!(p.quantile(1.0), Some(100.0));
    }

    #[test]
    fn percentiles_empty_returns_none() {
        let mut p = Percentiles::new();
        assert_eq!(p.median(), None);
    }

    #[test]
    fn percentiles_interleaved_record_and_query() {
        let mut p = Percentiles::new();
        p.record(5.0);
        assert_eq!(p.median(), Some(5.0));
        p.record(1.0);
        p.record(9.0);
        assert_eq!(p.median(), Some(5.0));
    }

    #[test]
    fn histogram_buckets_and_flows() {
        let mut h = Histogram::new(0.0, 100.0, 10);
        for x in [0.0, 9.99, 10.0, 55.0, 99.9] {
            h.record(x);
        }
        h.record(-1.0);
        h.record(100.0);
        assert_eq!(h.bucket_count(0), 2);
        assert_eq!(h.bucket_count(1), 1);
        assert_eq!(h.bucket_count(5), 1);
        assert_eq!(h.bucket_count(9), 1);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 7);
    }

    #[test]
    fn histogram_iter_lower_bounds() {
        let h = Histogram::new(0.0, 10.0, 2);
        let bounds: Vec<f64> = h.iter().map(|(b, _)| b).collect();
        assert_eq!(bounds, [0.0, 5.0]);
    }

    #[test]
    fn running_default_equals_new() {
        // Regression: the derived Default zeroed min/max, so merging a
        // defaulted accumulator clamped extrema toward 0.0.
        let d = Running::default();
        assert_eq!(d, Running::new());
        assert_eq!(d.min(), None);
        assert_eq!(d.max(), None);

        let mut merged = Running::default();
        merged.merge(&[5.0, 7.0].into_iter().collect());
        assert_eq!(merged.min(), Some(5.0));
        assert_eq!(merged.max(), Some(7.0));

        let mut sink: Running = [5.0, 7.0].into_iter().collect();
        sink.merge(&Running::default());
        assert_eq!(sink.min(), Some(5.0));
        assert_eq!(sink.max(), Some(7.0));
    }

    #[test]
    fn percentiles_single_element_all_quantiles() {
        let mut p = Percentiles::new();
        p.record(3.5);
        assert_eq!(p.quantile(0.0), Some(3.5));
        assert_eq!(p.median(), Some(3.5));
        assert_eq!(p.p95(), Some(3.5));
        assert_eq!(p.quantile(1.0), Some(3.5));
        assert_eq!(p.count(), 1);
        assert!(!p.is_empty());
    }

    #[test]
    fn percentiles_ignore_non_finite() {
        let mut p = Percentiles::new();
        p.record(f64::NAN);
        p.record(f64::NEG_INFINITY);
        assert!(p.is_empty());
        assert_eq!(p.quantile(0.5), None);
        p.record(2.0);
        assert_eq!(p.quantile(0.5), Some(2.0));
    }

    #[test]
    fn histogram_boundary_and_out_of_range() {
        let mut h = Histogram::new(-5.0, 5.0, 10);
        h.record(-5.0); // lower bound is inclusive
        h.record(5.0); // upper bound is exclusive -> overflow
        h.record(-5.000001);
        h.record(f64::NAN); // non-finite counts as underflow
        h.record(f64::INFINITY);
        assert_eq!(h.bucket_count(0), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.underflow(), 3);
        assert_eq!(h.total(), 5);
        assert!(!h.is_empty());
    }

    #[test]
    fn histogram_empty_has_zero_everything() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert!(h.is_empty());
        assert_eq!(h.total(), 0);
        assert_eq!(h.len(), 4);
        assert!(h.iter().all(|(_, c)| c == 0));
    }
}
