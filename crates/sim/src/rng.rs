//! Seeded, forkable randomness for reproducible simulations.

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A deterministic random-number generator with labelled sub-streams.
///
/// Every stochastic component of the EVOp reproduction (workload arrivals,
/// failure injection, synthetic weather, user journeys) draws from a `SimRng`
/// seeded at the experiment boundary, so a whole experiment re-runs
/// identically given the same seed. [`SimRng::fork`] derives an independent
/// stream for a sub-component, so adding draws in one component does not
/// perturb another.
///
/// # Examples
///
/// ```
/// use evop_sim::SimRng;
/// use rand::Rng;
///
/// let mut root = SimRng::new(42);
/// let mut weather = root.fork("weather");
/// let mut failures = root.fork("failures");
///
/// let a: f64 = weather.rng().gen();
/// let b: f64 = failures.rng().gen();
/// assert_ne!(a, b);
///
/// // Reconstructing from the same seed yields the same stream.
/// let mut root2 = SimRng::new(42);
/// let mut weather2 = root2.fork("weather");
/// assert_eq!(a, weather2.rng().gen::<f64>());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    seed: u64,
    inner: ChaCha8Rng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> SimRng {
        SimRng { seed, inner: ChaCha8Rng::seed_from_u64(seed) }
    }

    /// The seed this generator was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent generator for the sub-component `label`.
    ///
    /// The derived seed depends only on this generator's seed and the label,
    /// not on how many values have been drawn, so sub-streams are stable as
    /// the simulation evolves.
    pub fn fork(&self, label: &str) -> SimRng {
        SimRng::new(splitmix_combine(self.seed, fnv1a(label.as_bytes())))
    }

    /// Derives an independent generator for item `index` of the labelled
    /// family — one child stream per chunk of an embarrassingly parallel
    /// workload.
    ///
    /// The derived seed is a pure function of this generator's seed, the
    /// label and the index, so chunk `c` draws the same stream whether the
    /// chunks run sequentially, on two threads, or on sixteen — the
    /// foundation of the `parallel == sequential` bit-identity contract in
    /// `evop-models`.
    ///
    /// ```
    /// use evop_sim::SimRng;
    /// use rand::RngCore;
    ///
    /// let root = SimRng::new(42);
    /// let a = root.fork_indexed("chunk", 3).next_u64();
    /// let b = SimRng::new(42).fork_indexed("chunk", 3).next_u64();
    /// assert_eq!(a, b);
    /// assert_ne!(a, root.fork_indexed("chunk", 4).next_u64());
    /// ```
    pub fn fork_indexed(&self, label: &str, index: u64) -> SimRng {
        SimRng::new(splitmix_combine(splitmix_combine(self.seed, fnv1a(label.as_bytes())), index))
    }

    /// Mutable access to the underlying [`rand`] generator.
    pub fn rng(&mut self) -> &mut impl Rng {
        &mut self.inner
    }

    /// Draws a uniform `f64` in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Draws a uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is not finite.
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "invalid range [{lo}, {hi})");
        lo + (hi - lo) * self.uniform()
    }

    /// Draws from an exponential distribution with the given mean.
    ///
    /// Used for Poisson inter-arrival times in workload generators.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not strictly positive and finite.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean.is_finite() && mean > 0.0, "mean must be positive, got {mean}");
        let u: f64 = 1.0 - self.uniform(); // in (0, 1]
        -mean * u.ln()
    }

    /// Draws from a standard normal distribution (Box–Muller).
    pub fn standard_normal(&mut self) -> f64 {
        let u1: f64 = 1.0 - self.uniform();
        let u2: f64 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Draws from a normal distribution with the given mean and standard
    /// deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative or not finite.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev.is_finite() && std_dev >= 0.0, "std_dev must be non-negative");
        mean + std_dev * self.standard_normal()
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p.clamp(0.0, 1.0)
    }

    /// Draws a uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot draw an index from an empty range");
        self.inner.gen_range(0..n)
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

/// FNV-1a hash, used to turn fork labels into seed material.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// SplitMix64 finalizer over the combination of parent seed and label hash.
fn splitmix_combine(seed: u64, label_hash: u64) -> u64 {
    let mut z = seed ^ label_hash.rotate_left(17);
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forks_are_independent_of_draw_count() {
        let root_a = SimRng::new(1);
        let root_b = SimRng::new(1);
        // Drawing from the parent must not change what a fork produces.
        let _ = root_b.clone().next_u64();
        let mut fork_a = root_a.fork("x");
        let mut fork_b = root_b.fork("x");
        assert_eq!(fork_a.next_u64(), fork_b.next_u64());
    }

    #[test]
    fn indexed_forks_are_stable_and_distinct() {
        let root = SimRng::new(9);
        let mut again = SimRng::new(9).fork_indexed("chunk", 7);
        assert_eq!(root.fork_indexed("chunk", 7).next_u64(), again.next_u64());
        // Distinct across indices, labels, and from the plain fork.
        let draws: Vec<u64> = (0..64)
            .map(|i| root.fork_indexed("chunk", i).next_u64())
            .chain([root.fork_indexed("other", 0).next_u64(), root.fork("chunk").next_u64()])
            .collect();
        let unique: std::collections::BTreeSet<u64> = draws.iter().copied().collect();
        assert_eq!(unique.len(), draws.len(), "indexed streams must not collide");
    }

    #[test]
    fn distinct_labels_distinct_streams() {
        let root = SimRng::new(1);
        let mut a = root.fork("alpha");
        let mut b = root.fork("beta");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = SimRng::new(99);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| rng.exponential(4.0)).sum();
        let mean = total / f64::from(n);
        assert!((mean - 4.0).abs() < 0.15, "mean was {mean}");
    }

    #[test]
    fn normal_moments_are_close() {
        let mut rng = SimRng::new(5);
        let n = 20_000;
        let draws: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 2.0)).collect();
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        let var = draws.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / draws.len() as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean was {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std was {}", var.sqrt());
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(3);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn uniform_in_respects_bounds() {
        let mut rng = SimRng::new(8);
        for _ in 0..1000 {
            let x = rng.uniform_in(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "invalid range")]
    fn uniform_in_rejects_empty_range() {
        let mut rng = SimRng::new(8);
        let _ = rng.uniform_in(1.0, 1.0);
    }
}
