//! A time-ordered, FIFO-stable event queue with hot-path counters.
//!
//! The queue is a *ladder queue* (a self-adjusting calendar queue,
//! cf. Tang & Goh 2005, and the index-based queues of dslab-core): events
//! live in one of three regions ordered by delivery time —
//!
//! * **bottom** — a sorted run the pop path drains by a moving index;
//! * **rungs** — a stack of bucket arrays, each rung subdividing either
//!   the far-horizon pool or one overfull bucket of the rung above it
//!   into fixed-width time buckets;
//! * **top** — an unsorted far-horizon pool for everything at or beyond
//!   the spread-out region.
//!
//! Pushes append in O(1) (far-future events land in `top`, near-future
//! events in a rung bucket); sorting is deferred until a bucket is small
//! enough to become the new bottom run, so the per-event lifecycle cost
//! is O(1) amortised instead of the binary heap's O(log n) with
//! cache-hostile sift paths.
//!
//! Event payloads are stored once in a slab ([`EventId`] = slot index +
//! generation), so the regions move only 16-byte `(time, slot)` items and
//! cancellation by id is O(1): the payload is dropped in place (a
//! tombstone) and the item is reaped lazily when its region drains.
//! Same-instant FIFO delivery rests on an order-preservation invariant
//! instead of an explicit sequence number: every region appends in push
//! order, every region-to-region move (spread, scatter, reap, partition)
//! preserves relative order, and every sort of a run is *stable* in time
//! — so items sharing an instant are always delivered in push order. The
//! slab and the far-horizon pool store their entries in fixed-size chunks
//! rather than one flat `Vec`, which pins per-chunk allocations below the
//! allocator's mmap threshold and avoids the repeated multi-megabyte
//! realloc-and-copy (plus page-fault) churn of doubling growth.
//!
//! The pre-existing binary-heap implementation is kept as
//! [`crate::reference::HeapQueue`] so old-vs-new equivalence stays
//! executable (see `tests/queue_equiv.rs`).

use crate::SimTime;

/// Hot-path counters maintained by [`EventQueue`] — the raw numbers the
/// perf-observability plane (`obs::profile` + the `perf_report` bench
/// bin) turns into events/sec and batching statistics. Counting is pure
/// integer bookkeeping on operations the queue already performs, so the
/// overhead is a handful of adds per event.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelCounters {
    /// Events ever pushed.
    pub scheduled: u64,
    /// Events delivered through `pop` / `pop_due` / `pop_batch_due`.
    pub delivered: u64,
    /// Events removed without delivery (`cancel`, `cancel_where`,
    /// `clear`).
    pub cancelled: u64,
    /// High-water mark of pending events.
    pub depth_high_water: usize,
    /// Longest run of consecutively-delivered events sharing one
    /// timestamp — the same-tick batch size the delivery loop sees.
    pub max_same_tick_batch: u64,
}

impl KernelCounters {
    /// Events currently accounted as in flight
    /// (`scheduled − delivered − cancelled`).
    pub fn in_flight(&self) -> u64 {
        self.scheduled.saturating_sub(self.delivered).saturating_sub(self.cancelled)
    }
}

/// Handle to a scheduled event, returned by [`EventQueue::push`] and
/// accepted by [`EventQueue::cancel`].
///
/// The handle is generation-checked: once the event is delivered or
/// cancelled its slot's generation advances, so a stale handle can never
/// cancel an unrelated event that happens to reuse the slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId {
    idx: u32,
    gen: u32,
}

/// A bucket whose item count is at or below this sorts straight into the
/// bottom run; bigger buckets are subdivided into a child rung first.
const SORT_THRESHOLD: usize = 2048;

/// Bucket-count bound per rung (power of two, scaled to the item count).
const MAX_BUCKETS: usize = 4096;

/// One slab slot: the payload plus the generation that validates
/// [`EventId`]s. A cancelled-but-unreaped event is `event: None` with its
/// index still parked in some region (a tombstone).
#[derive(Debug)]
struct Slot<E> {
    gen: u32,
    event: Option<E>,
}

/// Slab chunk size in slots (power of two). 4096 keeps each chunk's
/// allocation well under the allocator's mmap threshold for realistic
/// payload sizes, so chunks come from the recycled heap instead of fresh
/// kernel mappings.
const SLAB_SHIFT: usize = 12;
const SLAB_CHUNK: usize = 1 << SLAB_SHIFT;

/// Chunked slab: append-only slot storage that never moves existing
/// slots. Growth allocates one fixed-size chunk instead of doubling a
/// flat `Vec` — no realloc copies, no multi-megabyte mappings.
#[derive(Debug)]
struct Slab<E> {
    chunks: Vec<Vec<Slot<E>>>,
    len: usize,
}

impl<E> Slab<E> {
    fn new() -> Slab<E> {
        Slab { chunks: Vec::new(), len: 0 }
    }

    fn push(&mut self, slot: Slot<E>) -> u32 {
        let idx = self.len;
        if idx & (SLAB_CHUNK - 1) == 0 {
            self.chunks.push(Vec::with_capacity(SLAB_CHUNK));
        }
        if let Some(chunk) = self.chunks.last_mut() {
            chunk.push(slot);
        }
        self.len += 1;
        idx as u32
    }

    #[inline]
    fn slot_mut(&mut self, idx: u32) -> &mut Slot<E> {
        &mut self.chunks[idx as usize >> SLAB_SHIFT][idx as usize & (SLAB_CHUNK - 1)]
    }

    /// Bounds-checked lookup for untrusted [`EventId`]s.
    fn get_mut(&mut self, idx: u32) -> Option<&mut Slot<E>> {
        self.chunks.get_mut(idx as usize >> SLAB_SHIFT)?.get_mut(idx as usize & (SLAB_CHUNK - 1))
    }

    #[inline]
    fn is_live(&self, idx: u32) -> bool {
        self.chunks[idx as usize >> SLAB_SHIFT][idx as usize & (SLAB_CHUNK - 1)].event.is_some()
    }

    fn iter_mut(&mut self) -> impl Iterator<Item = &mut Slot<E>> {
        self.chunks.iter_mut().flatten()
    }
}

/// The 16-byte handle the regions actually move around: delivery time
/// plus the slab index of the payload. There is no sequence number —
/// same-instant FIFO comes from the order-preservation invariant (see the
/// module docs), which every sort here honours by being stable in time.
#[derive(Debug, Clone, Copy)]
struct Item {
    time: u64,
    idx: u32,
}

/// One rung of the ladder: `buckets[b]` nominally covers
/// `[start + b·width, start + (b+1)·width)`; buckets below `cur` have
/// been consumed. `width` is always a power of two so bucket indexing is
/// a shift, never a division.
#[derive(Debug)]
struct Rung {
    start: u64,
    width: u64,
    /// `width.trailing_zeros()` — bucket index is `(time - start) >> shift`.
    shift: u32,
    cur: usize,
    /// Items stored in `buckets[cur..]` (tombstones included).
    len: usize,
    buckets: Vec<Vec<Item>>,
}

impl Rung {
    /// Upper end of this rung's nominal range (saturating; an item routes
    /// here only when its time is strictly below this).
    fn limit(&self) -> u64 {
        self.start.saturating_add(self.width.saturating_mul(self.buckets.len() as u64))
    }

    /// Lower end of the not-yet-consumed range — the boundary below which
    /// new pushes must go to the bottom run instead.
    fn active_start(&self) -> u64 {
        self.start.saturating_add(self.width.saturating_mul(self.cur as u64))
    }
}

/// A priority queue of future events, keyed by [`SimTime`].
///
/// Events scheduled for the same instant are delivered in the order they were
/// pushed (FIFO stability), which keeps simulations deterministic.
///
/// # Examples
///
/// ```
/// use evop_sim::{EventQueue, SimTime};
///
/// let mut queue = EventQueue::new();
/// queue.push(SimTime::from_secs(2), "b");
/// queue.push(SimTime::from_secs(2), "c");
/// queue.push(SimTime::from_secs(1), "a");
///
/// let order: Vec<&str> = std::iter::from_fn(|| queue.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, ["a", "b", "c"]);
/// ```
///
/// Cancellation by handle is O(1) and generation-checked:
///
/// ```
/// use evop_sim::{EventQueue, SimTime};
///
/// let mut queue = EventQueue::new();
/// let keep = queue.push(SimTime::from_secs(1), "keep");
/// let drop = queue.push(SimTime::from_secs(2), "drop");
/// assert!(queue.cancel(drop));
/// assert!(!queue.cancel(drop), "second cancel is a no-op");
/// assert_eq!(queue.pop(), Some((SimTime::from_secs(1), "keep")));
/// assert_eq!(queue.pop(), None);
/// let _ = keep;
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    slots: Slab<E>,
    free: Vec<u32>,
    /// Sorted run of the earliest items; `bottom[bottom_pos..]` is
    /// pending, the prefix has been delivered or reaped.
    bottom: Vec<Item>,
    bottom_pos: usize,
    /// Rung stack: `rungs[0]` is the outermost (latest) range, the last
    /// rung the innermost (earliest). Ranges tile without overlap.
    rungs: Vec<Rung>,
    /// Far-horizon pool: unsorted chunks of items at or beyond every
    /// rung, in push order across the chunk list.
    top: Vec<Vec<Item>>,
    /// Times at or beyond this may live in `top` (advanced on spread).
    top_start: u64,
    /// Live (non-tombstoned, undelivered) events.
    live: usize,
    /// Tombstones still parked in some region. When zero, every parked
    /// item is live, so the pop path can skip per-item liveness checks
    /// (a random-access slab read) entirely.
    dead: usize,
    /// Delivery time of the earliest live event — kept exact after every
    /// `&mut` operation so [`EventQueue::peek_time`] stays `&self`.
    next_time: Option<SimTime>,
    counters: KernelCounters,
    /// Timestamp and length of the current same-tick delivery run.
    batch: Option<(SimTime, u64)>,
    /// Reused radix-scatter buffer (see [`sort_run`]).
    scratch: Vec<Item>,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> EventQueue<E> {
        EventQueue {
            slots: Slab::new(),
            free: Vec::new(),
            bottom: Vec::new(),
            bottom_pos: 0,
            rungs: Vec::new(),
            top: Vec::new(),
            top_start: 0,
            live: 0,
            dead: 0,
            next_time: None,
            counters: KernelCounters::default(),
            batch: None,
            scratch: Vec::new(),
        }
    }

    /// Schedules `event` for delivery at instant `time`, returning a
    /// handle that can [`cancel`](EventQueue::cancel) it in O(1).
    pub fn push(&mut self, time: SimTime, event: E) -> EventId {
        let (idx, gen) = match self.free.pop() {
            Some(idx) => {
                let slot = self.slots.slot_mut(idx);
                slot.event = Some(event);
                (idx, slot.gen)
            }
            None => (self.slots.push(Slot { gen: 0, event: Some(event) }), 0),
        };
        self.route(Item { time: time.as_millis(), idx });
        self.live += 1;
        self.counters.scheduled += 1;
        if self.counters.depth_high_water < self.live {
            self.counters.depth_high_water = self.live;
        }
        if self.next_time.is_none_or(|t| time < t) {
            self.next_time = Some(time);
        }
        EventId { idx, gen }
    }

    /// Places an item in the innermost region whose range contains its
    /// time: below the innermost rung's active range → sorted insert into
    /// the bottom run; inside some rung's range → O(1) bucket append;
    /// beyond every rung → O(1) far-horizon append.
    fn route(&mut self, item: Item) {
        // Fast path: no rungs spread out and the time is at or beyond the
        // far-horizon start — the common shape while a simulation front-
        // loads its schedule.
        if self.rungs.is_empty() && item.time >= self.top_start {
            self.push_top(item);
            return;
        }
        let boundary = match self.rungs.last() {
            Some(r) => r.active_start(),
            None => self.top_start,
        };
        if item.time < boundary {
            // Strictly-after-equal placement keeps same-instant FIFO: the
            // new item was pushed later than anything already parked.
            let tail = &self.bottom[self.bottom_pos..];
            let at = self.bottom_pos + tail.partition_point(|it| it.time <= item.time);
            self.bottom.insert(at, item);
            return;
        }
        for rung in self.rungs.iter_mut().rev() {
            if item.time < rung.limit() {
                // `time ≥ active_start ≥ start`, and `time < limit` bounds
                // the index below the bucket count even when `limit`
                // saturated (then `count·width` exceeds `u64::MAX − start`).
                let bucket = ((item.time - rung.start) >> rung.shift) as usize;
                rung.buckets[bucket].push(item);
                rung.len += 1;
                return;
            }
        }
        self.push_top(item);
    }

    /// Appends to the far-horizon pool, opening a fresh fixed-size chunk
    /// when the current one is full.
    fn push_top(&mut self, item: Item) {
        if self.top.last().is_none_or(|chunk| chunk.len() >= SLAB_CHUNK) {
            self.top.push(Vec::with_capacity(SLAB_CHUNK));
        }
        if let Some(chunk) = self.top.last_mut() {
            chunk.push(item);
        }
    }

    /// Removes and returns the earliest event, or `None` if the queue is
    /// empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        loop {
            let item = match self.bottom.get(self.bottom_pos) {
                Some(item) => *item,
                None => {
                    if !self.refill() {
                        self.next_time = None;
                        return None;
                    }
                    continue;
                }
            };
            self.bottom_pos += 1;
            let slot = self.slots.slot_mut(item.idx);
            match slot.event.take() {
                Some(event) => {
                    slot.gen = slot.gen.wrapping_add(1);
                    self.live -= 1;
                    let time = SimTime::from_millis(item.time);
                    self.counters.delivered += 1;
                    let run = match self.batch {
                        Some((t, n)) if t == time => n + 1,
                        _ => 1,
                    };
                    self.batch = Some((time, run));
                    self.counters.max_same_tick_batch = self.counters.max_same_tick_batch.max(run);
                    self.settle();
                    return Some((time, event));
                }
                // Tombstone that was cancelled while sitting in the bottom
                // run: skip it. Its slot (like every consumed bottom
                // item's) returns to the free list in bulk at refill.
                None => self.dead -= 1,
            }
        }
    }

    /// The delivery time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.next_time
    }

    /// Removes and returns the earliest event only if it is due at or before
    /// `now`.
    ///
    /// ```
    /// use evop_sim::{EventQueue, SimTime};
    /// let mut queue = EventQueue::new();
    /// queue.push(SimTime::from_secs(5), "later");
    /// assert!(queue.pop_due(SimTime::from_secs(4)).is_none());
    /// assert!(queue.pop_due(SimTime::from_secs(5)).is_some());
    /// ```
    pub fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, E)> {
        match self.next_time {
            Some(t) if t <= now => self.pop(),
            _ => None,
        }
    }

    /// Drains every event of the earliest due tick into `buf`, returning
    /// how many were appended (0 when nothing is due at or before `now`).
    ///
    /// All appended events share one timestamp and arrive in push order —
    /// exactly the prefix a `pop_due` loop would deliver for that tick —
    /// so control loops can advance their clock once per tick and handle
    /// the whole batch. Events the handlers push *at the same instant*
    /// are not in the batch; they form the next one.
    ///
    /// ```
    /// use evop_sim::{EventQueue, SimTime};
    /// let mut queue = EventQueue::new();
    /// let t = SimTime::from_secs(1);
    /// queue.push(t, "a");
    /// queue.push(t, "b");
    /// queue.push(SimTime::from_secs(2), "c");
    /// let mut batch = Vec::new();
    /// assert_eq!(queue.pop_batch_due(SimTime::from_secs(9), &mut batch), 2);
    /// assert_eq!(batch, [(t, "a"), (t, "b")]);
    /// ```
    pub fn pop_batch_due(&mut self, now: SimTime, buf: &mut Vec<(SimTime, E)>) -> usize {
        let Some(tick) = self.next_time.filter(|&t| t <= now) else { return 0 };
        let t_raw = tick.as_millis();
        let mut n: u64 = 0;
        loop {
            // Drain the contiguous same-tick prefix of the bottom run in
            // one sweep — one counter/`next_time` settle for the whole
            // batch instead of a full `pop` cycle per event.
            while let Some(&item) = self.bottom.get(self.bottom_pos) {
                if item.time != t_raw {
                    break;
                }
                self.bottom_pos += 1;
                let slot = self.slots.slot_mut(item.idx);
                match slot.event.take() {
                    Some(event) => {
                        slot.gen = slot.gen.wrapping_add(1);
                        self.live -= 1;
                        buf.push((tick, event));
                        n += 1;
                    }
                    None => self.dead -= 1,
                }
            }
            // A later-time front means the tick is fully drained; an empty
            // run may still hide same-tick items behind a refill.
            if self.bottom.get(self.bottom_pos).is_some() || !self.refill() {
                break;
            }
        }
        if n > 0 {
            self.counters.delivered += n;
            let run = match self.batch {
                Some((t, k)) if t == tick => k + n,
                _ => n,
            };
            self.batch = Some((tick, run));
            self.counters.max_same_tick_batch = self.counters.max_same_tick_batch.max(run);
        }
        self.settle();
        n as usize
    }

    /// The number of pending events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Pending events — `len()` under the name the backpressure-facing
    /// callers and the invariant suite use. Always equals
    /// [`KernelCounters::in_flight`].
    pub fn backlog(&self) -> usize {
        self.live
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Discards all pending events (counted as cancelled).
    pub fn clear(&mut self) {
        self.counters.cancelled += self.live as u64;
        self.free.clear();
        for (idx, slot) in self.slots.iter_mut().enumerate() {
            if slot.event.take().is_some() {
                slot.gen = slot.gen.wrapping_add(1);
            }
            self.free.push(idx as u32);
        }
        self.bottom.clear();
        self.bottom_pos = 0;
        self.rungs.clear();
        self.top.clear();
        self.top_start = 0;
        self.live = 0;
        self.dead = 0;
        self.next_time = None;
    }

    /// Cancels the event behind `id` in O(1), returning whether it was
    /// still pending. The payload is dropped immediately; the queue slot
    /// is reaped lazily when its region drains. Delivered, already
    /// cancelled, and stale handles all return `false`.
    pub fn cancel(&mut self, id: EventId) -> bool {
        match self.slots.get_mut(id.idx) {
            Some(slot) if slot.gen == id.gen && slot.event.is_some() => {
                slot.event = None;
                slot.gen = slot.gen.wrapping_add(1);
                self.live -= 1;
                self.dead += 1;
                self.counters.cancelled += 1;
                self.settle();
                true
            }
            _ => false,
        }
    }

    /// Removes every pending event matching `pred` without delivering it,
    /// returning how many were cancelled. Relative order of the survivors
    /// is preserved (the insertion sequence is kept), so cancellation
    /// never perturbs FIFO determinism.
    ///
    /// ```
    /// use evop_sim::{EventQueue, SimTime};
    /// let mut queue = EventQueue::new();
    /// queue.push(SimTime::from_secs(1), "keep");
    /// queue.push(SimTime::from_secs(2), "drop");
    /// assert_eq!(queue.cancel_where(|e| *e == "drop"), 1);
    /// assert_eq!(queue.len(), 1);
    /// assert_eq!(queue.counters().cancelled, 1);
    /// ```
    pub fn cancel_where<F: FnMut(&E) -> bool>(&mut self, mut pred: F) -> usize {
        let mut cancelled = 0usize;
        for slot in self.slots.iter_mut() {
            if slot.event.as_ref().is_some_and(&mut pred) {
                slot.event = None;
                slot.gen = slot.gen.wrapping_add(1);
                cancelled += 1;
            }
        }
        if cancelled > 0 {
            self.live -= cancelled;
            self.dead += cancelled;
            self.counters.cancelled += cancelled as u64;
            self.settle();
        }
        cancelled
    }

    /// A copy of the queue's hot-path counters.
    pub fn counters(&self) -> KernelCounters {
        self.counters
    }

    /// Restores the resting invariant: the front of the bottom run is a
    /// live event and `next_time` is its timestamp (or the queue is empty
    /// and `next_time` is `None`). Called after every mutation that can
    /// kill or consume the front. Amortised O(1): every item is reaped at
    /// most once.
    fn settle(&mut self) {
        loop {
            let item = match self.bottom.get(self.bottom_pos) {
                Some(item) => *item,
                None => {
                    if !self.refill() {
                        self.next_time = None;
                        return;
                    }
                    continue;
                }
            };
            // With no tombstones parked anywhere the front is live by
            // construction — skip the random-access slab read that would
            // otherwise dominate the pop path.
            if self.dead == 0 || self.slots.is_live(item.idx) {
                self.next_time = Some(SimTime::from_millis(item.time));
                return;
            }
            self.dead -= 1;
            self.bottom_pos += 1;
        }
    }

    /// Replaces the exhausted bottom run with the next batch of earliest
    /// items, filtering tombstones on the way. Returns `false` when no
    /// live event remains anywhere.
    fn refill(&mut self) -> bool {
        // Every bottom item has been consumed (delivered or reaped) by
        // the time the run is exhausted; their slots return to the free
        // list in one batch here instead of a `Vec::push` per pop.
        self.free.extend(self.bottom.iter().map(|item| item.idx));
        self.bottom.clear();
        self.bottom_pos = 0;
        loop {
            while self.rungs.last().is_some_and(|r| r.len == 0) {
                self.rungs.pop();
            }
            if !self.rungs.is_empty() {
                let (items, hint) = {
                    // The emptiness check above guarantees a non-empty
                    // bucket at or after `cur`.
                    let last = self.rungs.len() - 1;
                    let rung = &mut self.rungs[last];
                    while rung.buckets[rung.cur].is_empty() {
                        rung.cur += 1;
                    }
                    let bucket = rung.cur;
                    let items = std::mem::take(&mut rung.buckets[bucket]);
                    rung.cur += 1;
                    rung.len -= items.len();
                    // The bucket's nominal range bounds every item in it;
                    // rung items are always strictly below the `u64::MAX`
                    // sentinel (it is held back in the far-horizon pool),
                    // so the clamp keeps later span arithmetic overflow-
                    // free even when the range saturates.
                    let lo = rung.start.saturating_add(rung.width.saturating_mul(bucket as u64));
                    let hi = lo.saturating_add(rung.width - 1).min(u64::MAX - 1);
                    (items, (lo, hi))
                };
                if self.lower(items, Some(hint)) {
                    return true;
                }
                continue;
            }
            if !self.top.is_empty() {
                let chunks = std::mem::take(&mut self.top);
                // One fused pass: reap tombstones and hold times of
                // `u64::MAX` back in the far-horizon pool so the spread
                // range below never overflows; if *everything* live is at
                // the sentinel, `lower` takes it straight to bottom
                // (single-instant batch).
                let total = chunks.iter().map(Vec::len).sum();
                let mut rest = Vec::with_capacity(total);
                let mut at_max = Vec::new();
                let mut min_rest = u64::MAX;
                let mut max_rest = 0u64;
                for item in chunks.into_iter().flatten() {
                    if self.dead > 0 && !self.slots.is_live(item.idx) {
                        self.free.push(item.idx);
                        self.dead -= 1;
                    } else if item.time == u64::MAX {
                        at_max.push(item);
                    } else {
                        min_rest = min_rest.min(item.time);
                        max_rest = max_rest.max(item.time);
                        rest.push(item);
                    }
                }
                let (spread, hint) = if rest.is_empty() {
                    self.top_start = u64::MAX;
                    (at_max, (u64::MAX, u64::MAX))
                } else {
                    if at_max.is_empty() {
                        self.top_start = max_rest + 1;
                    } else {
                        self.top = vec![at_max];
                        self.top_start = u64::MAX;
                    }
                    (rest, (min_rest, max_rest))
                };
                if self.lower(spread, Some(hint)) {
                    return true;
                }
                continue;
            }
            return false;
        }
    }

    /// Moves `items` one region lower, reaping tombstones on the way:
    /// small or single-instant batches sort into the bottom run (returns
    /// `true` when the run came out non-empty); big multi-instant batches
    /// become a new innermost rung (returns `false`).
    fn lower(&mut self, mut items: Vec<Item>, hint: Option<(u64, u64)>) -> bool {
        let mut min = u64::MAX;
        let mut max = 0;
        if self.dead > 0 {
            // Fused reap: drop tombstones in place during the range scan.
            let mut w = 0;
            for r in 0..items.len() {
                let item = items[r];
                if self.slots.is_live(item.idx) {
                    min = min.min(item.time);
                    max = max.max(item.time);
                    items[w] = item;
                    w += 1;
                } else {
                    self.free.push(item.idx);
                    self.dead -= 1;
                }
            }
            items.truncate(w);
        } else if let Some((lo, hi)) = hint {
            // The caller already knows a (possibly conservative) range —
            // a rung bucket's nominal span, or the exact range tracked
            // during the far-horizon partition — so skip the scan.
            min = lo;
            max = hi;
        } else {
            for item in &items {
                min = min.min(item.time);
                max = max.max(item.time);
            }
        }
        if items.is_empty() {
            return false;
        }
        let mut hinted = hint.is_some() && self.dead == 0;
        loop {
            if min == max {
                // Single instant: batches are always seq-ascending (buckets
                // and the far-horizon pool only ever append in push order,
                // and every region-to-region move preserves order), so the
                // run is already in delivery order.
                self.bottom = items;
                self.bottom_pos = 0;
                return true;
            }
            if items.len() <= SORT_THRESHOLD {
                sort_run(&mut items, min, max, &mut self.scratch);
                self.bottom = items;
                self.bottom_pos = 0;
                return true;
            }
            // `max < u64::MAX` here (the sentinel is held back in `top`
            // and rung buckets only hold times strictly below a limit, and
            // range hints are clamped below the sentinel), so the span
            // arithmetic cannot overflow.
            let span = max - min + 1;
            let nb = (items.len() / SORT_THRESHOLD + 1).next_power_of_two().clamp(2, MAX_BUCKETS);
            // Round the width up to a power of two so bucket indexing is a
            // shift. `nb ≥ 2` bounds the raw width by 2⁶³, so the rounding
            // cannot overflow; widths still halve (at least) per child
            // rung, which is what guarantees the recursion terminates.
            let width = ((span - 1) / nb as u64 + 1).next_power_of_two();
            let shift = width.trailing_zeros();
            let count = (((span - 1) >> shift) + 1) as usize;
            // Size every bucket exactly up front: a counting pass is one
            // shift-and-add per item, far cheaper than letting each bucket
            // double-and-copy its way up during the scatter.
            let mut counts = vec![0usize; count];
            for item in &items {
                counts[((item.time - min) >> shift) as usize] += 1;
            }
            if hinted && counts.contains(&items.len()) {
                // Every item landed in one bucket: the hinted range was
                // far wider than the real one. Measure the exact range and
                // re-dispatch — the batch may be single-instant (straight
                // to the bottom run) or deserve a much tighter rung.
                hinted = false;
                min = u64::MAX;
                max = 0;
                for item in &items {
                    min = min.min(item.time);
                    max = max.max(item.time);
                }
                continue;
            }
            let mut rung = Rung {
                start: min,
                width,
                shift,
                cur: 0,
                len: items.len(),
                buckets: counts.iter().map(|&c| Vec::with_capacity(c)).collect(),
            };
            for item in items {
                rung.buckets[((item.time - min) >> shift) as usize].push(item);
            }
            self.rungs.push(rung);
            return false;
        }
    }
}

/// Sorts a bottom run into delivery order. Runs are always push-ordered
/// on entry (regions append in push order and every region-to-region move
/// preserves order), so a *stable* sort by time alone realises full
/// `(time, insertion)` delivery order: narrow-span runs take a two-pass
/// LSD radix on the time offset — no comparisons — and wide or tiny runs
/// fall back to the standard stable sort.
fn sort_run(items: &mut [Item], min: u64, max: u64, scratch: &mut Vec<Item>) {
    let span = max - min;
    if span >= 1 << 16 || items.len() < 64 {
        items.sort_by_key(|item| item.time);
        return;
    }
    if scratch.len() < items.len() {
        scratch.resize(items.len(), Item { time: 0, idx: 0 });
    }
    let scratch = &mut scratch[..items.len()];
    // One fused prepass counts both bytes, so identity passes (all items
    // sharing a byte) are known up front and skipped entirely.
    let mut counts = [[0usize; 256]; 2];
    for item in items.iter() {
        let off = item.time - min;
        counts[0][(off & 0xFF) as usize] += 1;
        counts[1][((off >> 8) & 0xFF) as usize] += 1;
    }
    // Ping-pong between the two buffers instead of copying back after
    // each pass; only an odd number of real passes needs a final copy.
    let mut in_items = true;
    for (shift, counts) in [(0u32, &counts[0]), (8, &counts[1])] {
        if counts.contains(&items.len()) {
            // Every item shares this byte — the pass would be the
            // identity permutation.
            continue;
        }
        let mut starts = [0usize; 256];
        let mut acc = 0usize;
        for (start, &count) in starts.iter_mut().zip(counts.iter()) {
            *start = acc;
            acc += count;
        }
        let (src, dst): (&[Item], &mut [Item]) =
            if in_items { (&*items, &mut *scratch) } else { (&*scratch, &mut *items) };
        for &item in src.iter() {
            let bin = (((item.time - min) >> shift) & 0xFF) as usize;
            dst[starts[bin]] = item;
            starts[bin] += 1;
        }
        in_items = !in_items;
    }
    if !in_items {
        items.copy_from_slice(scratch);
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> EventQueue<E> {
        EventQueue::new()
    }
}

impl<E> Extend<(SimTime, E)> for EventQueue<E> {
    fn extend<I: IntoIterator<Item = (SimTime, E)>>(&mut self, iter: I) {
        for (time, event) in iter {
            self.push(time, event);
        }
    }
}

impl<E> FromIterator<(SimTime, E)> for EventQueue<E> {
    fn from_iter<I: IntoIterator<Item = (SimTime, E)>>(iter: I) -> EventQueue<E> {
        let mut queue = EventQueue::new();
        queue.extend(iter);
        queue
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(10), 10);
        q.push(SimTime::from_secs(1), 1);
        q.push(SimTime::from_secs(5), 5);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, [1, 5, 10]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(2), "x");
        assert_eq!(q.pop_due(SimTime::from_secs(1)), None);
        assert_eq!(q.pop_due(SimTime::from_secs(2)), Some((SimTime::from_secs(2), "x")));
        assert!(q.is_empty());
    }

    #[test]
    fn collect_from_iterator() {
        let q: EventQueue<&str> =
            vec![(SimTime::from_secs(3), "c"), (SimTime::from_secs(1), "a")].into_iter().collect();
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn counters_track_schedule_deliver_cancel() {
        let mut q = EventQueue::new();
        for i in 0..5 {
            q.push(SimTime::from_secs(i), i);
        }
        assert_eq!(q.counters().scheduled, 5);
        assert_eq!(q.counters().depth_high_water, 5);
        let _ = q.pop();
        let _ = q.pop();
        assert_eq!(q.counters().delivered, 2);
        assert_eq!(q.cancel_where(|&e| e == 3), 1);
        q.clear();
        let c = q.counters();
        assert_eq!(c.cancelled, 1 + 2, "one targeted + two cleared");
        assert_eq!(c.in_flight(), 0);
    }

    #[test]
    fn counters_track_same_tick_batches() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..4 {
            q.push(t, i);
        }
        q.push(SimTime::from_secs(2), 99);
        while q.pop().is_some() {}
        assert_eq!(q.counters().max_same_tick_batch, 4);
    }

    #[test]
    fn cancel_where_preserves_fifo_of_survivors() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..10 {
            q.push(t, i);
        }
        q.cancel_where(|&e| e % 2 == 0);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, [1, 3, 5, 7, 9]);
    }

    #[test]
    fn cancel_by_id_is_exact_and_idempotent() {
        let mut q = EventQueue::new();
        let a = q.push(SimTime::from_secs(1), "a");
        let b = q.push(SimTime::from_secs(2), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "tombstone cannot be cancelled twice");
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), "b")));
        assert!(!q.cancel(b), "delivered events cannot be cancelled");
        assert_eq!(q.counters().cancelled, 1);
        assert_eq!(q.counters().delivered, 1);
    }

    #[test]
    fn stale_handles_never_touch_reused_slots() {
        let mut q = EventQueue::new();
        let a = q.push(SimTime::from_secs(1), 1u32);
        let _ = q.pop();
        // The slot is reused by a new event; the old handle must be inert.
        let b = q.push(SimTime::from_secs(2), 2u32);
        assert!(!q.cancel(a));
        assert_eq!(q.len(), 1);
        assert!(q.cancel(b));
        assert!(q.is_empty());
    }

    #[test]
    fn cancelling_the_front_updates_peek_time() {
        let mut q = EventQueue::new();
        let a = q.push(SimTime::from_secs(1), "a");
        q.push(SimTime::from_secs(5), "b");
        // Force the front into the sorted bottom run first.
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        assert!(q.cancel(a));
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(5)));
        assert_eq!(q.pop(), Some((SimTime::from_secs(5), "b")));
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn pop_batch_due_drains_one_tick_in_push_order() {
        let mut q = EventQueue::new();
        let t1 = SimTime::from_secs(1);
        let t2 = SimTime::from_secs(2);
        q.push(t1, 0);
        q.push(t2, 10);
        q.push(t1, 1);
        let mut buf = Vec::new();
        assert_eq!(q.pop_batch_due(SimTime::from_secs(0), &mut buf), 0);
        assert_eq!(q.pop_batch_due(SimTime::from_secs(9), &mut buf), 2);
        assert_eq!(buf, [(t1, 0), (t1, 1)]);
        buf.clear();
        assert_eq!(q.pop_batch_due(SimTime::from_secs(9), &mut buf), 1);
        assert_eq!(buf, [(t2, 10)]);
        assert_eq!(q.counters().max_same_tick_batch, 2);
    }

    #[test]
    fn interleaves_far_and_near_horizons() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(u64::MAX), "sentinel");
        q.push(SimTime::from_secs(1), "near");
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), "near")));
        // Past the first spread, push below the consumed horizon.
        q.push(SimTime::from_secs(2), "later");
        q.push(SimTime::ZERO, "past");
        assert_eq!(q.pop(), Some((SimTime::ZERO, "past")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), "later")));
        assert_eq!(q.pop(), Some((SimTime::from_millis(u64::MAX), "sentinel")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn backlog_tracks_in_flight() {
        let mut q = EventQueue::new();
        for i in 0..50u64 {
            q.push(SimTime::from_millis(i % 7), i);
        }
        q.cancel_where(|&i| i % 5 == 0);
        let _ = q.pop();
        assert_eq!(q.backlog() as u64, q.counters().in_flight());
        assert_eq!(q.backlog(), q.len());
    }

    #[test]
    fn large_spread_drains_sorted() {
        // Enough events over a wide range to build rungs and recurse.
        let mut q = EventQueue::new();
        let mut expect = Vec::new();
        let mut x = 0x2545_f491_4f6c_dd1du64;
        for i in 0..10_000u64 {
            // xorshift so the test has no rand dependency here
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let t = x % 100_000_000;
            q.push(SimTime::from_millis(t), i);
            expect.push((t, i));
        }
        expect.sort_unstable();
        let got: Vec<(u64, u64)> =
            std::iter::from_fn(|| q.pop().map(|(t, e)| (t.as_millis(), e))).collect();
        assert_eq!(got, expect);
        assert_eq!(q.counters().delivered, 10_000);
    }
}
