//! A time-ordered, FIFO-stable event queue with hot-path counters.

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

use crate::SimTime;

/// Hot-path counters maintained by [`EventQueue`] — the raw numbers the
/// perf-observability plane (`obs::profile` + the `perf_report` bench
/// bin) turns into events/sec and batching statistics. Counting is pure
/// integer bookkeeping on operations the queue already performs, so the
/// overhead is a handful of adds per event.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelCounters {
    /// Events ever pushed.
    pub scheduled: u64,
    /// Events delivered through `pop` / `pop_due`.
    pub delivered: u64,
    /// Events removed without delivery (`cancel_where`, `clear`).
    pub cancelled: u64,
    /// High-water mark of pending events.
    pub depth_high_water: usize,
    /// Longest run of consecutively-delivered events sharing one
    /// timestamp — the same-tick batch size the delivery loop sees.
    pub max_same_tick_batch: u64,
}

impl KernelCounters {
    /// Events currently accounted as in flight
    /// (`scheduled − delivered − cancelled`).
    pub fn in_flight(&self) -> u64 {
        self.scheduled.saturating_sub(self.delivered).saturating_sub(self.cancelled)
    }
}

/// An entry in the heap: ordered by time, then by insertion sequence so that
/// events scheduled for the same instant pop in insertion order.
#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Entry<E>) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Entry<E>) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Entry<E>) -> Ordering {
        self.time.cmp(&other.time).then(self.seq.cmp(&other.seq))
    }
}

/// A priority queue of future events, keyed by [`SimTime`].
///
/// Events scheduled for the same instant are delivered in the order they were
/// pushed (FIFO stability), which keeps simulations deterministic.
///
/// # Examples
///
/// ```
/// use evop_sim::{EventQueue, SimTime};
///
/// let mut queue = EventQueue::new();
/// queue.push(SimTime::from_secs(2), "b");
/// queue.push(SimTime::from_secs(2), "c");
/// queue.push(SimTime::from_secs(1), "a");
///
/// let order: Vec<&str> = std::iter::from_fn(|| queue.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, ["a", "b", "c"]);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    next_seq: u64,
    counters: KernelCounters,
    /// Timestamp and length of the current same-tick delivery run.
    batch: Option<(SimTime, u64)>,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> EventQueue<E> {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            counters: KernelCounters::default(),
            batch: None,
        }
    }

    /// Schedules `event` for delivery at instant `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { time, seq, event }));
        self.counters.scheduled += 1;
        self.counters.depth_high_water = self.counters.depth_high_water.max(self.heap.len());
    }

    /// Removes and returns the earliest event, or `None` if the queue is
    /// empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let (time, event) = self.heap.pop().map(|Reverse(e)| (e.time, e.event))?;
        self.counters.delivered += 1;
        let run = match self.batch {
            Some((t, n)) if t == time => n + 1,
            _ => 1,
        };
        self.batch = Some((time, run));
        self.counters.max_same_tick_batch = self.counters.max_same_tick_batch.max(run);
        Some((time, event))
    }

    /// The delivery time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Removes and returns the earliest event only if it is due at or before
    /// `now`.
    ///
    /// ```
    /// use evop_sim::{EventQueue, SimTime};
    /// let mut queue = EventQueue::new();
    /// queue.push(SimTime::from_secs(5), "later");
    /// assert!(queue.pop_due(SimTime::from_secs(4)).is_none());
    /// assert!(queue.pop_due(SimTime::from_secs(5)).is_some());
    /// ```
    pub fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, E)> {
        match self.peek_time() {
            Some(t) if t <= now => self.pop(),
            _ => None,
        }
    }

    /// The number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Discards all pending events (counted as cancelled).
    pub fn clear(&mut self) {
        self.counters.cancelled += self.heap.len() as u64;
        self.heap.clear();
    }

    /// Removes every pending event matching `pred` without delivering it,
    /// returning how many were cancelled. Relative order of the survivors
    /// is preserved (the insertion sequence is kept), so cancellation
    /// never perturbs FIFO determinism.
    ///
    /// ```
    /// use evop_sim::{EventQueue, SimTime};
    /// let mut queue = EventQueue::new();
    /// queue.push(SimTime::from_secs(1), "keep");
    /// queue.push(SimTime::from_secs(2), "drop");
    /// assert_eq!(queue.cancel_where(|e| *e == "drop"), 1);
    /// assert_eq!(queue.len(), 1);
    /// assert_eq!(queue.counters().cancelled, 1);
    /// ```
    pub fn cancel_where<F: FnMut(&E) -> bool>(&mut self, mut pred: F) -> usize {
        let entries = std::mem::take(&mut self.heap).into_vec();
        let before = entries.len();
        self.heap = entries.into_iter().filter(|Reverse(e)| !pred(&e.event)).collect();
        let cancelled = before - self.heap.len();
        self.counters.cancelled += cancelled as u64;
        cancelled
    }

    /// A copy of the queue's hot-path counters.
    pub fn counters(&self) -> KernelCounters {
        self.counters
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> EventQueue<E> {
        EventQueue::new()
    }
}

impl<E> Extend<(SimTime, E)> for EventQueue<E> {
    fn extend<I: IntoIterator<Item = (SimTime, E)>>(&mut self, iter: I) {
        for (time, event) in iter {
            self.push(time, event);
        }
    }
}

impl<E> FromIterator<(SimTime, E)> for EventQueue<E> {
    fn from_iter<I: IntoIterator<Item = (SimTime, E)>>(iter: I) -> EventQueue<E> {
        let mut queue = EventQueue::new();
        queue.extend(iter);
        queue
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(10), 10);
        q.push(SimTime::from_secs(1), 1);
        q.push(SimTime::from_secs(5), 5);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, [1, 5, 10]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(2), "x");
        assert_eq!(q.pop_due(SimTime::from_secs(1)), None);
        assert_eq!(q.pop_due(SimTime::from_secs(2)), Some((SimTime::from_secs(2), "x")));
        assert!(q.is_empty());
    }

    #[test]
    fn collect_from_iterator() {
        let q: EventQueue<&str> =
            vec![(SimTime::from_secs(3), "c"), (SimTime::from_secs(1), "a")].into_iter().collect();
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn counters_track_schedule_deliver_cancel() {
        let mut q = EventQueue::new();
        for i in 0..5 {
            q.push(SimTime::from_secs(i), i);
        }
        assert_eq!(q.counters().scheduled, 5);
        assert_eq!(q.counters().depth_high_water, 5);
        let _ = q.pop();
        let _ = q.pop();
        assert_eq!(q.counters().delivered, 2);
        assert_eq!(q.cancel_where(|&e| e == 3), 1);
        q.clear();
        let c = q.counters();
        assert_eq!(c.cancelled, 1 + 2, "one targeted + two cleared");
        assert_eq!(c.in_flight(), 0);
    }

    #[test]
    fn counters_track_same_tick_batches() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..4 {
            q.push(t, i);
        }
        q.push(SimTime::from_secs(2), 99);
        while q.pop().is_some() {}
        assert_eq!(q.counters().max_same_tick_batch, 4);
    }

    #[test]
    fn cancel_where_preserves_fifo_of_survivors() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..10 {
            q.push(t, i);
        }
        q.cancel_where(|&e| e % 2 == 0);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, [1, 3, 5, 7, 9]);
    }
}
