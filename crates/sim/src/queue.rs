//! A time-ordered, FIFO-stable event queue.

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

use crate::SimTime;

/// An entry in the heap: ordered by time, then by insertion sequence so that
/// events scheduled for the same instant pop in insertion order.
#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Entry<E>) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Entry<E>) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Entry<E>) -> Ordering {
        self.time.cmp(&other.time).then(self.seq.cmp(&other.seq))
    }
}

/// A priority queue of future events, keyed by [`SimTime`].
///
/// Events scheduled for the same instant are delivered in the order they were
/// pushed (FIFO stability), which keeps simulations deterministic.
///
/// # Examples
///
/// ```
/// use evop_sim::{EventQueue, SimTime};
///
/// let mut queue = EventQueue::new();
/// queue.push(SimTime::from_secs(2), "b");
/// queue.push(SimTime::from_secs(2), "c");
/// queue.push(SimTime::from_secs(1), "a");
///
/// let order: Vec<&str> = std::iter::from_fn(|| queue.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, ["a", "b", "c"]);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> EventQueue<E> {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0 }
    }

    /// Schedules `event` for delivery at instant `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { time, seq, event }));
    }

    /// Removes and returns the earliest event, or `None` if the queue is
    /// empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|Reverse(e)| (e.time, e.event))
    }

    /// The delivery time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Removes and returns the earliest event only if it is due at or before
    /// `now`.
    ///
    /// ```
    /// use evop_sim::{EventQueue, SimTime};
    /// let mut queue = EventQueue::new();
    /// queue.push(SimTime::from_secs(5), "later");
    /// assert!(queue.pop_due(SimTime::from_secs(4)).is_none());
    /// assert!(queue.pop_due(SimTime::from_secs(5)).is_some());
    /// ```
    pub fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, E)> {
        match self.peek_time() {
            Some(t) if t <= now => self.pop(),
            _ => None,
        }
    }

    /// The number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Discards all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> EventQueue<E> {
        EventQueue::new()
    }
}

impl<E> Extend<(SimTime, E)> for EventQueue<E> {
    fn extend<I: IntoIterator<Item = (SimTime, E)>>(&mut self, iter: I) {
        for (time, event) in iter {
            self.push(time, event);
        }
    }
}

impl<E> FromIterator<(SimTime, E)> for EventQueue<E> {
    fn from_iter<I: IntoIterator<Item = (SimTime, E)>>(iter: I) -> EventQueue<E> {
        let mut queue = EventQueue::new();
        queue.extend(iter);
        queue
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(10), 10);
        q.push(SimTime::from_secs(1), 1);
        q.push(SimTime::from_secs(5), 5);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, [1, 5, 10]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(2), "x");
        assert_eq!(q.pop_due(SimTime::from_secs(1)), None);
        assert_eq!(q.pop_due(SimTime::from_secs(2)), Some((SimTime::from_secs(2), "x")));
        assert!(q.is_empty());
    }

    #[test]
    fn collect_from_iterator() {
        let q: EventQueue<&str> =
            vec![(SimTime::from_secs(3), "c"), (SimTime::from_secs(1), "a")].into_iter().collect();
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }
}
