//! Deterministic discrete-event simulation kernel for the EVOp control plane.
//!
//! The EVOp paper's infrastructure claims (cloudbursting, elasticity, failure
//! recovery, flash crowds) are all *control-plane* behaviours. This crate
//! provides the foundation on which the `evop-cloud` hybrid-cloud simulator
//! and the `evop-broker` infrastructure manager are built:
//!
//! * [`SimTime`] / [`SimDuration`] — virtual time with millisecond resolution;
//! * [`Clock`] — a monotonic virtual clock;
//! * [`EventQueue`] — a time-ordered, FIFO-stable event queue;
//! * [`SimRng`] — a seeded, forkable random-number generator so every
//!   simulation run is reproducible;
//! * [`stats`] — online statistics (Welford mean/variance, percentiles,
//!   histograms) used by every benchmark harness.
//!
//! # Examples
//!
//! ```
//! use evop_sim::{EventQueue, SimTime};
//!
//! let mut queue = EventQueue::new();
//! queue.push(SimTime::from_secs(3), "boot complete");
//! queue.push(SimTime::from_secs(1), "request arrives");
//!
//! let (t, event) = queue.pop().unwrap();
//! assert_eq!(t, SimTime::from_secs(1));
//! assert_eq!(event, "request arrives");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod reference;
pub mod stats;

mod clock;
mod queue;
mod rng;
mod time;

pub use clock::Clock;
pub use queue::{EventId, EventQueue, KernelCounters};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
