//! A monotonic virtual clock.

use crate::{SimDuration, SimTime};

/// A monotonic virtual clock for driving a discrete-event simulation.
///
/// The clock starts at [`SimTime::ZERO`] and can only move forward; trying to
/// rewind it is a programming error and panics. Components that share a
/// simulation typically hold the clock in the simulation driver and pass the
/// current time into component methods (the pattern used by `evop-cloud`).
///
/// # Examples
///
/// ```
/// use evop_sim::{Clock, SimDuration, SimTime};
///
/// let mut clock = Clock::new();
/// clock.advance(SimDuration::from_secs(5));
/// assert_eq!(clock.now(), SimTime::from_secs(5));
/// clock.advance_to(SimTime::from_secs(9));
/// assert_eq!(clock.now().as_secs(), 9);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Clock {
    now: SimTime,
}

impl Clock {
    /// Creates a clock positioned at [`SimTime::ZERO`].
    pub fn new() -> Clock {
        Clock::default()
    }

    /// The current virtual instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Moves the clock forward by `delta`.
    pub fn advance(&mut self, delta: SimDuration) {
        self.now += delta;
    }

    /// Moves the clock to the absolute instant `to`.
    ///
    /// # Panics
    ///
    /// Panics if `to` is earlier than the current time — virtual time is
    /// monotonic.
    pub fn advance_to(&mut self, to: SimTime) {
        assert!(to >= self.now, "clock cannot move backwards: now={}, requested={}", self.now, to);
        self.now = to;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_advances() {
        let mut clock = Clock::new();
        assert_eq!(clock.now(), SimTime::ZERO);
        clock.advance(SimDuration::from_millis(250));
        clock.advance(SimDuration::from_millis(750));
        assert_eq!(clock.now(), SimTime::from_secs(1));
    }

    #[test]
    fn advance_to_same_instant_is_allowed() {
        let mut clock = Clock::new();
        clock.advance_to(SimTime::from_secs(3));
        clock.advance_to(SimTime::from_secs(3));
        assert_eq!(clock.now(), SimTime::from_secs(3));
    }

    #[test]
    #[should_panic(expected = "cannot move backwards")]
    fn advance_to_rejects_rewind() {
        let mut clock = Clock::new();
        clock.advance_to(SimTime::from_secs(3));
        clock.advance_to(SimTime::from_secs(2));
    }
}
