//! Virtual time primitives.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in virtual simulation time, measured in milliseconds since the
/// start of the simulation.
///
/// `SimTime` is totally ordered, starts at [`SimTime::ZERO`], and only ever
/// moves forward (the [`Clock`](crate::Clock) enforces monotonicity).
///
/// # Examples
///
/// ```
/// use evop_sim::{SimDuration, SimTime};
///
/// let boot = SimTime::from_secs(2);
/// let ready = boot + SimDuration::from_millis(350);
/// assert_eq!(ready.as_millis(), 2350);
/// assert!(ready > boot);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of simulation time.
    pub const ZERO: SimTime = SimTime(0);

    /// The greatest representable instant; useful as an "infinity" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `millis` milliseconds after the start of the
    /// simulation.
    ///
    /// ```
    /// use evop_sim::SimTime;
    /// assert_eq!(SimTime::from_millis(1500).as_secs_f64(), 1.5);
    /// ```
    pub const fn from_millis(millis: u64) -> SimTime {
        SimTime(millis)
    }

    /// Creates an instant `secs` seconds after the start of the simulation.
    pub const fn from_secs(secs: u64) -> SimTime {
        SimTime(secs * 1000)
    }

    /// Creates an instant from a fractional number of seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> SimTime {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimTime::from_secs_f64 requires a finite, non-negative value, got {secs}"
        );
        SimTime((secs * 1000.0).round() as u64)
    }

    /// Milliseconds since the start of the simulation.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Whole seconds since the start of the simulation (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1000
    }

    /// Fractional seconds since the start of the simulation.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// The duration elapsed since `earlier`, or [`SimDuration::ZERO`] if
    /// `earlier` is in the future.
    ///
    /// ```
    /// use evop_sim::{SimDuration, SimTime};
    /// let a = SimTime::from_secs(1);
    /// let b = SimTime::from_secs(4);
    /// assert_eq!(b.saturating_since(a), SimDuration::from_secs(3));
    /// assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    /// ```
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration. Returns `None` on overflow.
    pub fn checked_add(self, rhs: SimDuration) -> Option<SimTime> {
        self.0.checked_add(rhs.0).map(SimTime)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.3}s", self.as_secs_f64())
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when order is not guaranteed.
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

/// A span of virtual time with millisecond resolution.
///
/// # Examples
///
/// ```
/// use evop_sim::SimDuration;
///
/// let sample_interval = SimDuration::from_secs(5);
/// assert_eq!(sample_interval * 3, SimDuration::from_secs(15));
/// assert_eq!(sample_interval.as_secs_f64(), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> SimDuration {
        SimDuration(millis)
    }

    /// Creates a duration of `secs` seconds.
    pub const fn from_secs(secs: u64) -> SimDuration {
        SimDuration(secs * 1000)
    }

    /// Creates a duration from a fractional number of seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> SimDuration {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimDuration::from_secs_f64 requires a finite, non-negative value, got {secs}"
        );
        SimDuration((secs * 1000.0).round() as u64)
    }

    /// The duration in whole milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// The duration in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// `true` if this is the empty duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies the duration by a scalar, saturating at the maximum.
    pub fn saturating_mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;

    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_ordering_and_arithmetic() {
        let a = SimTime::from_secs(1);
        let b = a + SimDuration::from_millis(500);
        assert!(b > a);
        assert_eq!(b - a, SimDuration::from_millis(500));
        assert_eq!(b.as_millis(), 1500);
    }

    #[test]
    fn saturating_since_never_underflows() {
        let a = SimTime::from_secs(10);
        let b = SimTime::from_secs(2);
        assert_eq!(b.saturating_since(a), SimDuration::ZERO);
        assert_eq!(a.saturating_since(b), SimDuration::from_secs(8));
    }

    #[test]
    fn from_secs_f64_rounds_to_millis() {
        assert_eq!(SimTime::from_secs_f64(1.2345).as_millis(), 1235);
        assert_eq!(SimDuration::from_secs_f64(0.0005).as_millis(), 1);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn from_secs_f64_rejects_negative() {
        let _ = SimTime::from_secs_f64(-1.0);
    }

    #[test]
    fn duration_scalar_ops() {
        let d = SimDuration::from_secs(6);
        assert_eq!(d * 2, SimDuration::from_secs(12));
        assert_eq!(d / 3, SimDuration::from_secs(2));
        assert_eq!(d - SimDuration::from_secs(10), SimDuration::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "t+1.500s");
        assert_eq!(SimDuration::from_millis(250).to_string(), "0.250s");
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert!(SimTime::MAX.checked_add(SimDuration::from_millis(1)).is_none());
        assert_eq!(
            SimTime::ZERO.checked_add(SimDuration::from_secs(1)),
            Some(SimTime::from_secs(1))
        );
    }
}
