//! Property tests for the ladder/slab [`EventQueue`]: every behavioural
//! claim the kernel rewrite makes, checked against a trivially-correct
//! model (a sorted `Vec`) under randomised op interleavings.

use evop_sim::{EventId, EventQueue, SimTime};
use proptest::prelude::*;

/// A scripted queue operation. Times and indices are drawn by proptest;
/// `Cancel` picks among currently-outstanding events by rotating index.
#[derive(Debug, Clone)]
enum Op {
    Push(u64),
    Pop,
    PopDue(u64),
    PopBatchDue(u64),
    Cancel(usize),
}

/// Decodes a drawn `(selector, argument)` pair into an operation, with
/// pushes weighted heaviest so the queue actually fills up.
fn decode(sel: u8, arg: u64) -> Op {
    match sel {
        0..=3 => Op::Push(arg),
        4 | 5 => Op::Pop,
        6 => Op::PopDue(arg),
        7 => Op::PopBatchDue(arg),
        _ => Op::Cancel(arg as usize),
    }
}

/// The model: outstanding events as `(time, seq, payload)`, delivered by
/// scanning for the minimum `(time, seq)` key.
#[derive(Default)]
struct Model {
    pending: Vec<(u64, u64, u64)>,
    next_seq: u64,
}

impl Model {
    fn push(&mut self, time: u64, payload: u64) {
        self.pending.push((time, self.next_seq, payload));
        self.next_seq += 1;
    }

    fn min_index(&self) -> Option<usize> {
        (0..self.pending.len()).min_by_key(|&i| (self.pending[i].0, self.pending[i].1))
    }

    fn pop(&mut self) -> Option<(u64, u64)> {
        let i = self.min_index()?;
        let (t, _, p) = self.pending.remove(i);
        Some((t, p))
    }

    fn pop_due(&mut self, now: u64) -> Option<(u64, u64)> {
        match self.min_index() {
            Some(i) if self.pending[i].0 <= now => self.pop(),
            _ => None,
        }
    }
}

proptest! {
    /// Full model equivalence under random interleavings of every op,
    /// including the `backlog()` / counter invariants after each step.
    #[test]
    fn matches_model_under_random_interleavings(
        raw_ops in proptest::collection::vec((0u8..10, 0u64..=500), 1..300),
    ) {
        let ops: Vec<Op> = raw_ops.into_iter().map(|(sel, arg)| decode(sel, arg)).collect();
        let mut q: EventQueue<u64> = EventQueue::new();
        let mut model = Model::default();
        let mut handles: Vec<(u64, EventId)> = Vec::new();
        let mut payload = 0u64;
        let mut cancelled: Vec<u64> = Vec::new();
        let mut delivered: Vec<(u64, u64)> = Vec::new();
        let mut buf = Vec::new();

        for op in ops {
            match op {
                Op::Push(t) => {
                    let id = q.push(SimTime::from_millis(t), payload);
                    model.push(t, payload);
                    handles.push((payload, id));
                    payload += 1;
                }
                Op::Pop => {
                    let got = q.pop().map(|(t, p)| (t.as_millis(), p));
                    prop_assert_eq!(got, model.pop());
                    if let Some(d) = got {
                        delivered.push(d);
                        handles.retain(|(p, _)| *p != d.1);
                    }
                }
                Op::PopDue(now) => {
                    let got = q.pop_due(SimTime::from_millis(now)).map(|(t, p)| (t.as_millis(), p));
                    prop_assert_eq!(got, model.pop_due(now));
                    if let Some(d) = got {
                        delivered.push(d);
                        handles.retain(|(p, _)| *p != d.1);
                    }
                }
                Op::PopBatchDue(now) => {
                    buf.clear();
                    let n = q.pop_batch_due(SimTime::from_millis(now), &mut buf);
                    prop_assert_eq!(n, buf.len());
                    // The whole earliest due tick, nothing else.
                    if let Some(&(t0, _)) = buf.first() {
                        prop_assert!(t0.as_millis() <= now);
                        for &(t, p) in &buf {
                            prop_assert!(t == t0, "batch must share one tick");
                            prop_assert_eq!(model.pop_due(now), Some((t.as_millis(), p)));
                            delivered.push((t.as_millis(), p));
                            handles.retain(|(hp, _)| *hp != p);
                        }
                        // The model's next due event (if any) is a later tick.
                        if let Some(i) = model.min_index() {
                            prop_assert!(model.pending[i].0 > t0.as_millis() || model.pending[i].0 > now);
                        }
                    } else {
                        prop_assert!(model.pop_due(now).is_none());
                    }
                }
                Op::Cancel(raw) => {
                    if !handles.is_empty() {
                        let (p, id) = handles.swap_remove(raw % handles.len());
                        prop_assert!(q.cancel(id));
                        prop_assert!(!q.cancel(id), "cancel must be idempotent");
                        model.pending.retain(|&(_, _, mp)| mp != p);
                        cancelled.push(p);
                    }
                }
            }

            // Invariants after every op.
            let c = q.counters();
            prop_assert_eq!(q.backlog(), model.pending.len());
            prop_assert_eq!(q.backlog() as u64, c.in_flight());
            prop_assert_eq!(q.len(), q.backlog());
            let model_min = model.min_index().map(|i| model.pending[i].0);
            prop_assert_eq!(q.peek_time().map(SimTime::as_millis), model_min);
        }

        // Cancelled events are never delivered.
        for p in &cancelled {
            prop_assert!(!delivered.iter().any(|(_, dp)| dp == p), "cancelled event delivered");
        }
    }

    /// Deliveries come out sorted by (time, insertion order) even when the
    /// whole workload lands on a handful of instants.
    #[test]
    fn same_instant_pops_are_fifo(
        times in proptest::collection::vec(0u64..4, 1..200),
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_millis(t), i as u64);
        }
        let mut expect: Vec<(u64, u64)> =
            times.iter().enumerate().map(|(i, &t)| (t, i as u64)).collect();
        expect.sort_by_key(|&(t, i)| (t, i));
        let got: Vec<(u64, u64)> =
            std::iter::from_fn(|| q.pop().map(|(t, p)| (t.as_millis(), p))).collect();
        prop_assert_eq!(got, expect);
    }

    /// Rung→far-horizon crossover: drain part of a near cluster, then push
    /// beyond the spread horizon (and below it) — ordering must survive the
    /// region boundaries.
    #[test]
    fn horizon_crossover_keeps_order(
        near in proptest::collection::vec(0u64..10_000, 8..128),
        far in proptest::collection::vec(0u64..1_000_000_000, 1..64),
        drains in 1usize..8,
    ) {
        let mut q = EventQueue::new();
        let mut payload = 0u64;
        let mut expect: Vec<(u64, u64)> = Vec::new();
        for &t in &near {
            q.push(SimTime::from_millis(t), payload);
            expect.push((t, payload));
            payload += 1;
        }
        // Force a spread: deliver a few, establishing rungs + a horizon.
        let mut got: Vec<(u64, u64)> = Vec::new();
        for _ in 0..drains {
            if let Some((t, p)) = q.pop() {
                got.push((t.as_millis(), p));
            }
        }
        // Now cross the horizon in both directions.
        for &t in &far {
            q.push(SimTime::from_millis(t), payload);
            expect.push((t, payload));
            payload += 1;
        }
        while let Some((t, p)) = q.pop() {
            got.push((t.as_millis(), p));
        }
        expect.sort_by_key(|&(t, p)| (t, p));
        prop_assert_eq!(got, expect);
        prop_assert_eq!(q.counters().delivered, payload);
    }

    /// `backlog()` equals `scheduled − delivered − cancelled` under a
    /// push/cancel_where/drain cycle (the bench workload's shape).
    #[test]
    fn backlog_invariant_under_bench_shape(
        n in 1usize..300,
        modulus in 2u64..20,
    ) {
        let mut q = EventQueue::new();
        for i in 0..n as u64 {
            q.push(SimTime::from_millis(i * 37 % 1000), i);
        }
        let cancelled = q.cancel_where(|&i| i % modulus == 0);
        let c = q.counters();
        prop_assert_eq!(c.scheduled, n as u64);
        prop_assert_eq!(c.cancelled, cancelled as u64);
        prop_assert_eq!(q.backlog() as u64, c.in_flight());
        let mut seen = 0u64;
        while q.pop().is_some() {
            seen += 1;
            prop_assert_eq!(q.backlog() as u64, q.counters().in_flight());
        }
        prop_assert_eq!(seen + cancelled as u64, n as u64);
    }
}
