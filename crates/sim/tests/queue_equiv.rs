//! Differential suite: the ladder/slab [`EventQueue`] versus the seed's
//! binary-heap [`HeapQueue`], driven with identical seeded op sequences.
//!
//! Both queues receive the same pushes, pops, due-pops, batch drains and
//! cancellations; after every operation the observable state must agree —
//! `peek_time`, `len`, every [`KernelCounters`] field — and at the end the
//! full `(time, event)` delivery streams must be byte-identical. This is
//! the executable form of the "same-seed traces are the contract" claim:
//! the kernel rewrite is only allowed to be faster, never different.

use evop_sim::reference::HeapQueue;
use evop_sim::{EventId, EventQueue, SimRng, SimTime};

/// One delivery as both queues report it.
type Delivery = (SimTime, u64);

/// Advances the virtual clock by `millis`, saturating at [`SimTime::MAX`]
/// (the far-future workloads park it there deliberately).
fn advance(now: SimTime, millis: u64) -> SimTime {
    now.checked_add(evop_sim::SimDuration::from_millis(millis)).unwrap_or(SimTime::MAX)
}

/// Drives both queues with the same op sequence; `time_of` shapes the
/// workload's time distribution. Panics (with context) on any divergence.
fn drive(seed: u64, ops: usize, time_of: impl Fn(&mut SimRng, u64) -> SimTime) {
    let mut rng = SimRng::new(seed).fork("queue-equiv");
    let mut new_q: EventQueue<u64> = EventQueue::new();
    let mut ref_q: HeapQueue<u64> = HeapQueue::new();
    let mut new_stream: Vec<Delivery> = Vec::new();
    let mut ref_stream: Vec<Delivery> = Vec::new();

    // Outstanding events: payload → EventId (for indexed cancel on the
    // new queue; the reference cancels the same payload by predicate).
    let mut outstanding: Vec<(u64, EventId)> = Vec::new();
    let mut next_payload = 0u64;
    let mut now = SimTime::ZERO;
    let mut batch_new: Vec<Delivery> = Vec::new();
    let mut batch_ref: Vec<Delivery> = Vec::new();

    for op in 0..ops as u64 {
        match rng.index(10) {
            // Pushing dominates so the structures actually fill up.
            0..=4 => {
                let t = time_of(&mut rng, op);
                let payload = next_payload;
                next_payload += 1;
                let id = new_q.push(t, payload);
                ref_q.push(t, payload);
                outstanding.push((payload, id));
            }
            5 => {
                let a = new_q.pop();
                let b = ref_q.pop();
                assert_eq!(a, b, "pop diverged at op {op} (seed {seed})");
                if let Some(d) = a {
                    new_stream.push(d);
                    outstanding.retain(|(p, _)| *p != d.1);
                }
                if let Some(d) = b {
                    ref_stream.push(d);
                }
            }
            6 => {
                // Advance a virtual clock and drain one due event.
                now = match new_q.peek_time() {
                    Some(t) if rng.chance(0.5) => t.max(now),
                    _ => advance(now, rng.index(10_000) as u64),
                };
                let a = new_q.pop_due(now);
                let b = ref_q.pop_due(now);
                assert_eq!(a, b, "pop_due({now}) diverged at op {op} (seed {seed})");
                if let Some(d) = a {
                    new_stream.push(d);
                    outstanding.retain(|(p, _)| *p != d.1);
                }
                if let Some(d) = b {
                    ref_stream.push(d);
                }
            }
            7 => {
                // Whole-tick batch drain.
                now = advance(now, rng.index(50_000) as u64);
                batch_new.clear();
                batch_ref.clear();
                let a = new_q.pop_batch_due(now, &mut batch_new);
                let b = ref_q.pop_batch_due(now, &mut batch_ref);
                assert_eq!(a, b, "batch sizes diverged at op {op} (seed {seed})");
                assert_eq!(batch_new, batch_ref, "batch contents diverged at op {op}");
                for d in &batch_new {
                    outstanding.retain(|(p, _)| *p != d.1);
                }
                new_stream.extend(batch_new.iter().copied());
                ref_stream.extend(batch_ref.iter().copied());
            }
            8 => {
                // Cancel one outstanding event: by id on the new queue, by
                // predicate on the reference.
                if !outstanding.is_empty() {
                    let (payload, id) = outstanding.swap_remove(rng.index(outstanding.len()));
                    let a = new_q.cancel(id);
                    let b = ref_q.cancel_where(|&e| e == payload) == 1;
                    assert_eq!(a, b, "cancel({payload}) diverged at op {op} (seed {seed})");
                }
            }
            _ => {
                // Predicate cancel of a deterministic slice on both.
                let m = 2 + rng.index(15) as u64;
                let a = new_q.cancel_where(|&e| e % 97 == op % 97 && e % m == 0);
                let b = ref_q.cancel_where(|&e| e % 97 == op % 97 && e % m == 0);
                assert_eq!(a, b, "cancel_where diverged at op {op} (seed {seed})");
                outstanding.retain(|(p, _)| !(p % 97 == op % 97 && p % m == 0));
            }
        }

        assert_eq!(new_q.peek_time(), ref_q.peek_time(), "peek_time diverged at op {op}");
        assert_eq!(new_q.len(), ref_q.len(), "len diverged at op {op} (seed {seed})");
        assert_eq!(new_q.is_empty(), ref_q.is_empty());
        assert_eq!(new_q.counters(), ref_q.counters(), "counters diverged at op {op}");
    }

    // Final drain: every remaining event, in identical order.
    loop {
        let a = new_q.pop();
        let b = ref_q.pop();
        assert_eq!(a, b, "final drain diverged (seed {seed})");
        match a {
            Some(d) => {
                new_stream.push(d);
                if let Some(d) = b {
                    ref_stream.push(d);
                }
            }
            None => break,
        }
    }
    assert_eq!(new_stream, ref_stream, "delivery streams diverged (seed {seed})");
    assert_eq!(new_q.counters(), ref_q.counters(), "final counters diverged (seed {seed})");
}

#[test]
fn equivalent_on_uniform_times() {
    for seed in 0..8 {
        drive(seed, 4000, |rng, _| SimTime::from_millis(rng.index(3_600_000) as u64));
    }
}

#[test]
fn equivalent_on_same_instant_bursts() {
    // Adversarial tie-breaking: a handful of distinct instants, so almost
    // every delivery is a same-tick FIFO decision.
    for seed in 100..106 {
        drive(seed, 3000, |rng, _| SimTime::from_secs(rng.index(4) as u64));
    }
}

#[test]
fn equivalent_on_far_future_horizons() {
    // Bimodal: near events mixed with far-future ones (including the
    // `SimTime::MAX` sentinel), exercising the rung→far-horizon crossover.
    for seed in 200..206 {
        drive(seed, 3000, |rng, _| {
            if rng.chance(0.05) {
                SimTime::MAX
            } else if rng.chance(0.3) {
                SimTime::from_millis(u64::MAX - rng.index(1_000_000) as u64)
            } else {
                SimTime::from_millis(rng.index(60_000) as u64)
            }
        });
    }
}

#[test]
fn equivalent_on_clustered_times() {
    // Heavy clustering: most events land in a few dense windows, forcing
    // deep rung subdivision; stragglers keep the ladder honest.
    for seed in 300..305 {
        drive(seed, 5000, |rng, _| {
            let cluster = rng.index(3) as u64 * 1_000_000_000;
            SimTime::from_millis(cluster + rng.index(50) as u64)
        });
    }
}

#[test]
fn equivalent_on_monotone_arrivals() {
    // The cloud-sim shape: times mostly advance with the op index.
    for seed in 400..405 {
        drive(seed, 5000, |rng, op| SimTime::from_millis(op * 500 + rng.index(5_000) as u64));
    }
}
