//! Property tests for `evop_sim::stats`: the estimators must agree with
//! their batch equivalents regardless of how observations are split or
//! ordered.

use evop_sim::stats::{Histogram, Percentiles, Running};
use proptest::prelude::*;

proptest! {
    #[test]
    fn running_merge_equals_sequential(
        values in prop::collection::vec(-1e6f64..1e6, 0..200),
        split in 0usize..200,
    ) {
        let split = split.min(values.len());
        let whole: Running = values.iter().copied().collect();

        let mut left: Running = values[..split].iter().copied().collect();
        let right: Running = values[split..].iter().copied().collect();
        left.merge(&right);

        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() < 1e-6);
        prop_assert!(
            (left.population_variance() - whole.population_variance()).abs()
                < 1e-4 * (1.0 + whole.population_variance())
        );
        prop_assert_eq!(left.min(), whole.min());
        prop_assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn running_default_merge_is_identity(
        values in prop::collection::vec(-1e3f64..1e3, 1..50),
    ) {
        let direct: Running = values.iter().copied().collect();
        let mut through_default = Running::default();
        through_default.merge(&direct);
        prop_assert_eq!(through_default.min(), direct.min());
        prop_assert_eq!(through_default.max(), direct.max());
        prop_assert_eq!(through_default.count(), direct.count());
    }

    #[test]
    fn percentiles_quantiles_are_monotone(
        values in prop::collection::vec(-1e6f64..1e6, 1..100),
    ) {
        let mut p: Percentiles = values.iter().copied().collect();
        let q25 = p.quantile(0.25).unwrap();
        let q50 = p.median().unwrap();
        let q95 = p.p95().unwrap();
        prop_assert!(q25 <= q50 && q50 <= q95);
        prop_assert!(values.contains(&q50));
    }

    #[test]
    fn histogram_conserves_observations(
        values in prop::collection::vec(-10.0f64..110.0, 0..100),
    ) {
        let mut h = Histogram::new(0.0, 100.0, 7);
        for &x in &values {
            h.record(x);
        }
        prop_assert_eq!(h.total(), values.len() as u64);
        let in_range: u64 = (0..h.len()).map(|i| h.bucket_count(i)).sum();
        prop_assert_eq!(in_range + h.underflow() + h.overflow(), h.total());
    }
}
