//! Potential evapotranspiration (Hamon method).
//!
//! The models need a PET forcing; EVOp derived it from Met Office
//! temperature products. We use Hamon's temperature-based formulation, which
//! needs only air temperature and day length (from latitude and day of
//! year) — a standard choice when radiation data are unavailable.

use evop_data::{TimeSeries, Timestamp};

/// Daylight hours at `lat_deg` on the given day of year (standard solar
/// declination geometry, clamped for polar edge cases).
pub fn day_length_hours(lat_deg: f64, day_of_year: u32) -> f64 {
    let phi = lat_deg.to_radians();
    // Solar declination (Cooper's formula).
    let decl = (23.45f64).to_radians()
        * (std::f64::consts::TAU * (284.0 + f64::from(day_of_year)) / 365.0).sin();
    let cos_h = -phi.tan() * decl.tan();
    let h = cos_h.clamp(-1.0, 1.0).acos();
    24.0 * h / std::f64::consts::PI
}

/// Saturated vapour density term of the Hamon formulation, g/m³.
fn saturated_vapour_density(temp_c: f64) -> f64 {
    let e_sat = 6.108 * (17.27 * temp_c / (temp_c + 237.3)).exp(); // hPa
    216.7 * e_sat / (temp_c + 273.3)
}

/// Hamon potential evapotranspiration for one day, in millimetres.
///
/// `mean_temp_c` is the daily mean air temperature. Negative temperatures
/// yield (near) zero PET.
///
/// # Examples
///
/// ```
/// use evop_models::pet::hamon_daily_mm;
///
/// // A warm July day in Cumbria evaporates a few millimetres…
/// let summer = hamon_daily_mm(16.0, 54.6, 196);
/// assert!(summer > 1.5 && summer < 6.0, "summer PET {summer}");
/// // …a cold January day almost nothing.
/// let winter = hamon_daily_mm(2.0, 54.6, 15);
/// assert!(winter < summer / 3.0, "winter PET {winter}");
/// ```
pub fn hamon_daily_mm(mean_temp_c: f64, lat_deg: f64, day_of_year: u32) -> f64 {
    if mean_temp_c <= -10.0 {
        return 0.0;
    }
    let d = day_length_hours(lat_deg, day_of_year) / 12.0;
    0.1651 * d * saturated_vapour_density(mean_temp_c) * 10.0 / 10.0
}

/// Converts an (hourly or coarser) temperature series into a PET series at
/// the same step, in millimetres per step.
///
/// Daily Hamon PET is computed from each calendar day's mean temperature and
/// distributed over the day proportionally to daylight (night steps get a
/// small residual).
///
/// # Examples
///
/// ```
/// use evop_data::{Catchment, Timestamp};
/// use evop_data::synthetic::WeatherGenerator;
/// use evop_models::pet::hamon_series;
///
/// let c = Catchment::morland();
/// let g = WeatherGenerator::for_catchment(&c, 1);
/// let start = Timestamp::from_ymd(2012, 6, 1);
/// let temp = g.temperature(start, 3600, 24 * 7);
/// let pet = hamon_series(&temp, c.outlet().lat());
/// assert_eq!(pet.len(), temp.len());
/// assert!(pet.values().iter().all(|&v| v >= 0.0));
/// ```
pub fn hamon_series(temperature: &TimeSeries, lat_deg: f64) -> TimeSeries {
    let step = temperature.step_secs();
    let steps_per_day = (86_400 / i64::from(step)).max(1) as usize;

    // Pre-compute per-day mean temperature.
    let mut day_means: Vec<(Timestamp, f64)> = Vec::new();
    let mut i = 0;
    while i < temperature.len() {
        let day_start = temperature.time_at(i).floor_to(86_400);
        let mut sum = 0.0;
        let mut n = 0usize;
        let mut j = i;
        while j < temperature.len() && temperature.time_at(j).floor_to(86_400) == day_start {
            let v = temperature.value_at(j);
            if !v.is_nan() {
                sum += v;
                n += 1;
            }
            j += 1;
        }
        let mean = if n == 0 { 5.0 } else { sum / n as f64 };
        day_means.push((day_start, mean));
        i = j;
    }

    let mut day_idx = 0usize;
    TimeSeries::from_fn(temperature.start(), step, temperature.len(), |t| {
        let day_start = t.floor_to(86_400);
        while day_idx + 1 < day_means.len() && day_means[day_idx].0 < day_start {
            day_idx += 1;
        }
        let mean_temp = day_means[day_idx].1;
        let daily = hamon_daily_mm(mean_temp, lat_deg, t.day_of_year());
        // Distribute: 90 % over daylight hours, 10 % over the night.
        let daylight = day_length_hours(lat_deg, t.day_of_year());
        let hour = t.day_fraction() * 24.0;
        let sunrise = 12.0 - daylight / 2.0;
        let sunset = 12.0 + daylight / 2.0;
        let step_hours = f64::from(step) / 3600.0;
        let is_day = hour >= sunrise && hour < sunset;
        let rate_per_hour =
            if is_day { 0.9 * daily / daylight } else { 0.1 * daily / (24.0 - daylight).max(1.0) };
        (rate_per_hour * step_hours).min(daily / steps_per_day as f64 * 4.0)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use evop_data::Timestamp;

    #[test]
    fn day_length_seasonality_northern_hemisphere() {
        let midsummer = day_length_hours(54.6, 172);
        let midwinter = day_length_hours(54.6, 355);
        assert!(midsummer > 16.0 && midsummer < 18.5, "midsummer {midsummer}");
        assert!(midwinter > 6.0 && midwinter < 8.5, "midwinter {midwinter}");
        // Equator: ~12h year-round.
        assert!((day_length_hours(0.0, 100) - 12.0).abs() < 0.2);
    }

    #[test]
    fn polar_day_and_night_clamp() {
        assert!(day_length_hours(80.0, 172) > 23.9);
        assert!(day_length_hours(80.0, 355) < 0.1);
    }

    #[test]
    fn pet_increases_with_temperature() {
        let cold = hamon_daily_mm(5.0, 54.6, 180);
        let warm = hamon_daily_mm(20.0, 54.6, 180);
        assert!(warm > cold * 1.8, "warm {warm} vs cold {cold}");
    }

    #[test]
    fn deep_frost_yields_zero() {
        assert_eq!(hamon_daily_mm(-15.0, 54.6, 15), 0.0);
    }

    #[test]
    fn series_concentrates_pet_in_daylight() {
        let start = Timestamp::from_ymd(2012, 6, 15);
        let temp = TimeSeries::from_values(start, 3600, vec![15.0; 48]);
        let pet = hamon_series(&temp, 54.6);
        let noon = pet.at(start.plus_hours(12)).unwrap();
        let midnight = pet.at(start.plus_hours(0)).unwrap();
        assert!(noon > midnight * 3.0, "noon {noon} vs midnight {midnight}");
    }

    #[test]
    fn series_daily_total_matches_daily_formula() {
        let start = Timestamp::from_ymd(2012, 6, 15);
        let temp = TimeSeries::from_values(start, 3600, vec![15.0; 24]);
        let pet = hamon_series(&temp, 54.6);
        let total: f64 = pet.sum();
        let daily = hamon_daily_mm(15.0, 54.6, 167);
        assert!((total - daily).abs() / daily < 0.15, "series total {total} vs daily {daily}");
    }

    #[test]
    fn handles_missing_temperature() {
        let start = Timestamp::from_ymd(2012, 6, 15);
        let temp = TimeSeries::from_values(start, 3600, vec![f64::NAN; 24]);
        let pet = hamon_series(&temp, 54.6);
        assert!(pet.values().iter().all(|v| v.is_finite()));
    }
}
