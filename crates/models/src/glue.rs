//! GLUE uncertainty analysis (Beven & Binley, 1992).
//!
//! The stakeholders asked for exactly this: "One aspect brought up by the
//! stakeholders during the workshops is the lack of presentation of
//! uncertainty bounds" (paper §VI). GLUE — Generalised Likelihood
//! Uncertainty Estimation — runs a large Monte Carlo ensemble, keeps the
//! *behavioural* members (score above a threshold), weights them by
//! likelihood, and derives prediction bounds per time step. Each member is
//! an independent model run: the paper's flagship embarrassingly parallel
//! cloud workload (§VI).

use evop_data::TimeSeries;
use evop_sim::SimRng;

use crate::calibrate::ParamSpace;
use crate::objectives::Objective;

/// One behavioural ensemble member.
#[derive(Debug, Clone, PartialEq)]
pub struct BehaviouralMember {
    /// The parameter vector.
    pub params: Vec<f64>,
    /// Its objective score.
    pub score: f64,
    /// Normalised likelihood weight (sums to 1 over the ensemble).
    pub weight: f64,
    /// The simulated series.
    pub simulation: TimeSeries,
}

/// The outcome of a GLUE analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct GlueResult {
    members: Vec<BehaviouralMember>,
    lower: TimeSeries,
    median: TimeSeries,
    upper: TimeSeries,
    total_runs: usize,
}

impl GlueResult {
    /// The behavioural members, in draw order.
    pub fn members(&self) -> &[BehaviouralMember] {
        &self.members
    }

    /// Number of Monte Carlo runs evaluated in total.
    pub fn total_runs(&self) -> usize {
        self.total_runs
    }

    /// Fraction of runs that were behavioural.
    pub fn acceptance_rate(&self) -> f64 {
        self.members.len() as f64 / self.total_runs as f64
    }

    /// The lower (5 %) weighted prediction bound.
    pub fn lower(&self) -> &TimeSeries {
        &self.lower
    }

    /// The weighted median prediction.
    pub fn median(&self) -> &TimeSeries {
        &self.median
    }

    /// The upper (95 %) weighted prediction bound.
    pub fn upper(&self) -> &TimeSeries {
        &self.upper
    }

    /// Fraction of observations falling inside the bounds — the bracketing
    /// rate stakeholders read off the widget.
    pub fn coverage(&self, observed: &TimeSeries) -> f64 {
        let mut inside = 0usize;
        let mut total = 0usize;
        for i in 0..observed.len().min(self.lower.len()) {
            let o = observed.value_at(i);
            if o.is_nan() {
                continue;
            }
            total += 1;
            if o >= self.lower.value_at(i) && o <= self.upper.value_at(i) {
                inside += 1;
            }
        }
        if total == 0 {
            0.0
        } else {
            inside as f64 / total as f64
        }
    }
}

/// Errors from a GLUE analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GlueError {
    /// No sampled parameter set reached the behavioural threshold.
    NoBehaviouralMembers {
        /// Runs evaluated.
        runs: usize,
    },
}

impl std::fmt::Display for GlueError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GlueError::NoBehaviouralMembers { runs } => {
                write!(f, "no behavioural members among {runs} runs — lower the threshold")
            }
        }
    }
}

impl std::error::Error for GlueError {}

/// Runs a GLUE analysis: `n` seeded Monte Carlo simulations, behavioural
/// filtering at `threshold`, likelihood weighting, and 5/50/95 % weighted
/// prediction bounds.
///
/// `simulate` maps a parameter vector to a discharge series aligned with
/// `observed` (`None` for failed runs).
///
/// # Errors
///
/// Returns [`GlueError::NoBehaviouralMembers`] when nothing passes the
/// threshold.
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn glue<F>(
    space: &ParamSpace,
    n: usize,
    seed: u64,
    observed: &TimeSeries,
    objective: Objective,
    threshold: f64,
    mut simulate: F,
) -> Result<GlueResult, GlueError>
where
    F: FnMut(&[f64]) -> Option<TimeSeries>,
{
    assert!(n > 0, "at least one run is required");
    let mut rng = SimRng::new(seed).fork("glue");
    let mut members = Vec::new();
    for _ in 0..n {
        let params = space.sample(&mut rng);
        let Some(simulation) = simulate(&params) else { continue };
        let score = objective.score(&simulation, observed);
        if score.is_nan() || score <= threshold {
            continue;
        }
        members.push(BehaviouralMember { params, score, weight: 0.0, simulation });
    }
    weight_and_bound(members, n, threshold)
}

/// Chunked, parallelisable [`glue`]: the Monte Carlo ensemble is split
/// into fixed-width chunks, each simulating from its own
/// [`fork_indexed`](SimRng::fork_indexed) child stream; behavioural
/// members are merged in chunk order before the (sequential) weighting
/// and quantile passes.
///
/// The result is a pure function of the arguments — bitwise identical
/// across thread counts and with the `parallel` feature compiled out —
/// but it draws a *different* deterministic stream than the single-stream
/// [`glue`], so pick one entry point per workload and stay on it.
///
/// `simulate` must be `Fn + Sync` (it may run on worker threads).
///
/// # Errors
///
/// Returns [`GlueError::NoBehaviouralMembers`] when nothing passes the
/// threshold.
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn par_glue<F>(
    space: &ParamSpace,
    n: usize,
    seed: u64,
    observed: &TimeSeries,
    objective: Objective,
    threshold: f64,
    simulate: F,
) -> Result<GlueResult, GlueError>
where
    F: Fn(&[f64]) -> Option<TimeSeries> + Sync,
{
    par_glue_with_threads(
        space,
        n,
        seed,
        crate::par::thread_count(),
        observed,
        objective,
        threshold,
        simulate,
    )
}

/// [`par_glue`] with an explicit thread count — the determinism soak's
/// hook. The thread count only schedules; it never reaches the RNG.
///
/// # Errors
///
/// Returns [`GlueError::NoBehaviouralMembers`] when nothing passes the
/// threshold.
///
/// # Panics
///
/// Panics if `n` is zero.
#[allow(clippy::too_many_arguments)]
pub fn par_glue_with_threads<F>(
    space: &ParamSpace,
    n: usize,
    seed: u64,
    threads: usize,
    observed: &TimeSeries,
    objective: Objective,
    threshold: f64,
    simulate: F,
) -> Result<GlueResult, GlueError>
where
    F: Fn(&[f64]) -> Option<TimeSeries> + Sync,
{
    assert!(n > 0, "at least one run is required");
    let root = SimRng::new(seed).fork("glue");
    let chunks = n.div_ceil(crate::par::PAR_CHUNK);
    let root = &root;
    let simulate = &simulate;
    let chunk_members: Vec<Vec<BehaviouralMember>> =
        crate::par::run_chunks_with_threads(chunks, threads, |c| {
            let mut rng = root.fork_indexed("chunk", c as u64);
            let lo = c * crate::par::PAR_CHUNK;
            let hi = (lo + crate::par::PAR_CHUNK).min(n);
            let mut members = Vec::new();
            for _ in lo..hi {
                let params = space.sample(&mut rng);
                let Some(simulation) = simulate(&params) else { continue };
                let score = objective.score(&simulation, observed);
                if score.is_nan() || score <= threshold {
                    continue;
                }
                members.push(BehaviouralMember { params, score, weight: 0.0, simulation });
            }
            members
        });
    let members: Vec<BehaviouralMember> = chunk_members.into_iter().flatten().collect();
    weight_and_bound(members, n, threshold)
}

/// Shared tail of [`glue`] and [`par_glue`]: likelihood weighting and the
/// 5/50/95 % weighted prediction bounds over an already-filtered ensemble.
fn weight_and_bound(
    mut members: Vec<BehaviouralMember>,
    n: usize,
    threshold: f64,
) -> Result<GlueResult, GlueError> {
    if members.is_empty() {
        return Err(GlueError::NoBehaviouralMembers { runs: n });
    }

    // Likelihood weights: score shifted so the threshold maps to zero.
    let total: f64 = members.iter().map(|m| m.score - threshold).sum();
    for m in &mut members {
        m.weight = (m.score - threshold) / total;
    }

    // Weighted quantiles per step.
    let steps = members[0].simulation.len();
    let start = members[0].simulation.start();
    let step_secs = members[0].simulation.step_secs();
    let mut lower = TimeSeries::new(start, step_secs);
    let mut median = TimeSeries::new(start, step_secs);
    let mut upper = TimeSeries::new(start, step_secs);
    for t in 0..steps {
        let mut pairs: Vec<(f64, f64)> =
            members.iter().map(|m| (m.simulation.value_at(t), m.weight)).collect();
        pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
        lower.push(weighted_quantile(&pairs, 0.05));
        median.push(weighted_quantile(&pairs, 0.50));
        upper.push(weighted_quantile(&pairs, 0.95));
    }

    Ok(GlueResult { members, lower, median, upper, total_runs: n })
}

/// Weighted quantile over `(value, weight)` pairs sorted by value.
fn weighted_quantile(sorted_pairs: &[(f64, f64)], q: f64) -> f64 {
    let mut cumulative = 0.0;
    for &(value, weight) in sorted_pairs {
        cumulative += weight;
        if cumulative >= q {
            return value;
        }
    }
    sorted_pairs.last().map(|&(v, _)| v).unwrap_or(f64::NAN)
}

#[cfg(test)]
mod tests {
    use super::*;
    use evop_data::Timestamp;

    fn t0() -> Timestamp {
        Timestamp::from_ymd(2012, 1, 1)
    }

    /// Toy model: q(t) = gain · base(t) + offset.
    fn toy_simulate(params: &[f64]) -> Option<TimeSeries> {
        let base = [1.0, 2.0, 5.0, 3.0, 1.5, 1.0];
        Some(TimeSeries::from_values(
            t0(),
            3600,
            base.iter().map(|b| params[0] * b + params[1]).collect(),
        ))
    }

    fn toy_observed() -> TimeSeries {
        // Truth: gain 2, offset 0.5.
        toy_simulate(&[2.0, 0.5]).unwrap()
    }

    fn toy_space() -> ParamSpace {
        ParamSpace::from_ranges(&[("gain", 0.5, 4.0), ("offset", 0.0, 2.0)])
    }

    #[test]
    fn bounds_bracket_truth() {
        let observed = toy_observed();
        let result =
            glue(&toy_space(), 2000, 42, &observed, Objective::Nse, 0.5, toy_simulate).unwrap();
        assert!(result.acceptance_rate() > 0.05, "rate {}", result.acceptance_rate());
        let coverage = result.coverage(&observed);
        assert!(coverage > 0.9, "coverage {coverage}");
        // Bounds are ordered.
        for t in 0..observed.len() {
            assert!(result.lower().value_at(t) <= result.median().value_at(t) + 1e-12);
            assert!(result.median().value_at(t) <= result.upper().value_at(t) + 1e-12);
        }
    }

    #[test]
    fn weights_sum_to_one() {
        let result =
            glue(&toy_space(), 1000, 1, &toy_observed(), Objective::Nse, 0.3, toy_simulate)
                .unwrap();
        let total: f64 = result.members().iter().map(|m| m.weight).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(result.members().iter().all(|m| m.weight > 0.0));
    }

    #[test]
    fn stricter_threshold_narrows_bounds() {
        let observed = toy_observed();
        let loose =
            glue(&toy_space(), 3000, 9, &observed, Objective::Nse, 0.0, toy_simulate).unwrap();
        let strict =
            glue(&toy_space(), 3000, 9, &observed, Objective::Nse, 0.9, toy_simulate).unwrap();
        assert!(strict.members().len() < loose.members().len());
        let width = |r: &GlueResult| {
            (0..observed.len()).map(|t| r.upper().value_at(t) - r.lower().value_at(t)).sum::<f64>()
        };
        assert!(width(&strict) < width(&loose), "strict bounds must be narrower");
    }

    #[test]
    fn impossible_threshold_errors() {
        let err = glue(&toy_space(), 50, 2, &toy_observed(), Objective::Nse, 0.99999, |p| {
            // A model that can never be that good.
            toy_simulate(p).map(|s| s.map(|v| v + 3.0))
        })
        .unwrap_err();
        assert_eq!(err, GlueError::NoBehaviouralMembers { runs: 50 });
    }

    #[test]
    fn failed_simulations_are_skipped() {
        let observed = toy_observed();
        let mut failures = 0;
        let result = glue(&toy_space(), 500, 3, &observed, Objective::Nse, 0.0, |p| {
            if p[0] > 3.0 {
                failures += 1;
                None
            } else {
                toy_simulate(p)
            }
        })
        .unwrap();
        assert!(failures > 0, "some runs should have failed");
        assert!(result.members().iter().all(|m| m.params[0] <= 3.0));
    }

    #[test]
    fn weighted_quantile_degenerate_cases() {
        assert_eq!(weighted_quantile(&[(5.0, 1.0)], 0.5), 5.0);
        let pairs = [(1.0, 0.5), (2.0, 0.5)];
        assert_eq!(weighted_quantile(&pairs, 0.25), 1.0);
        assert_eq!(weighted_quantile(&pairs, 0.75), 2.0);
    }
}
