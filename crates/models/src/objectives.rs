//! Objective functions and flood metrics.
//!
//! Calibration and GLUE both need a goodness-of-fit measure between
//! simulated and observed discharge; the portal's scenario comparison needs
//! flood-event metrics (peak, time-to-peak, time over threshold). All
//! functions ignore paired samples where either side is missing.

use evop_data::TimeSeries;
use serde::{Deserialize, Serialize};

/// Which objective to optimise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Objective {
    /// Nash–Sutcliffe efficiency (1 is perfect; maximise).
    Nse,
    /// NSE on log-transformed flows — weights low flows (maximise).
    LogNse,
    /// Root-mean-square error (minimise).
    Rmse,
    /// Percent bias (closer to 0 is better).
    Pbias,
}

impl Objective {
    /// Scores a simulation against observations such that **larger is
    /// always better** (error measures are negated, PBIAS is negated
    /// absolute).
    pub fn score(self, simulated: &TimeSeries, observed: &TimeSeries) -> f64 {
        match self {
            Objective::Nse => nse(simulated, observed),
            Objective::LogNse => log_nse(simulated, observed),
            Objective::Rmse => -rmse(simulated, observed),
            Objective::Pbias => -pbias(simulated, observed).abs(),
        }
    }
}

fn paired(simulated: &TimeSeries, observed: &TimeSeries) -> Vec<(f64, f64)> {
    simulated
        .values()
        .iter()
        .zip(observed.values())
        .filter(|(s, o)| !s.is_nan() && !o.is_nan())
        .map(|(&s, &o)| (s, o))
        .collect()
}

/// Nash–Sutcliffe efficiency: `1 − Σ(o−s)² / Σ(o−ō)²`.
///
/// Returns `-inf`-like very negative values for terrible fits, 1.0 for a
/// perfect fit, and `NaN` when there are no valid pairs or the observations
/// are constant.
///
/// # Examples
///
/// ```
/// use evop_data::{TimeSeries, Timestamp};
/// use evop_models::objectives::nse;
///
/// let t = Timestamp::UNIX_EPOCH;
/// let obs = TimeSeries::from_values(t, 3600, vec![1.0, 3.0, 2.0, 5.0]);
/// assert!((nse(&obs.clone(), &obs) - 1.0).abs() < 1e-12);
/// ```
pub fn nse(simulated: &TimeSeries, observed: &TimeSeries) -> f64 {
    let pairs = paired(simulated, observed);
    if pairs.is_empty() {
        return f64::NAN;
    }
    let mean_obs = pairs.iter().map(|(_, o)| o).sum::<f64>() / pairs.len() as f64;
    let ss_err: f64 = pairs.iter().map(|(s, o)| (o - s).powi(2)).sum();
    let ss_tot: f64 = pairs.iter().map(|(_, o)| (o - mean_obs).powi(2)).sum();
    // Degenerate (constant) observations: no variance to explain. The
    // epsilon guard is NaN-safe and also catches the numerically-zero case.
    if ss_tot.is_nan() || ss_tot.abs() < f64::EPSILON {
        return f64::NAN;
    }
    1.0 - ss_err / ss_tot
}

/// NSE on `ln(x + ε)`-transformed flows, emphasising low-flow fit.
pub fn log_nse(simulated: &TimeSeries, observed: &TimeSeries) -> f64 {
    const EPS: f64 = 1e-6;
    let ln = |series: &TimeSeries| series.map(|v| (v.max(0.0) + EPS).ln());
    nse(&ln(simulated), &ln(observed))
}

/// Root-mean-square error.
pub fn rmse(simulated: &TimeSeries, observed: &TimeSeries) -> f64 {
    let pairs = paired(simulated, observed);
    if pairs.is_empty() {
        return f64::NAN;
    }
    (pairs.iter().map(|(s, o)| (o - s).powi(2)).sum::<f64>() / pairs.len() as f64).sqrt()
}

/// Percent bias: `100 · Σ(s−o) / Σo`. Positive = over-prediction.
pub fn pbias(simulated: &TimeSeries, observed: &TimeSeries) -> f64 {
    let pairs = paired(simulated, observed);
    let sum_obs: f64 = pairs.iter().map(|(_, o)| o).sum();
    if pairs.is_empty() || sum_obs.is_nan() || sum_obs.abs() < f64::EPSILON {
        return f64::NAN;
    }
    100.0 * pairs.iter().map(|(s, o)| s - o).sum::<f64>() / sum_obs
}

/// Flood-event metrics for the scenario comparison table (experiment E9).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FloodMetrics {
    /// Peak discharge, m³/s.
    pub peak_m3s: f64,
    /// Index of the peak sample.
    pub peak_step: usize,
    /// Steps spent at or above the threshold.
    pub steps_over_threshold: usize,
    /// Total volume, m³ (sum · step seconds).
    pub volume_m3: f64,
}

/// Computes flood metrics for a discharge series against a discharge
/// threshold.
///
/// Returns `None` for an empty or all-missing series.
pub fn flood_metrics(discharge_m3s: &TimeSeries, threshold_m3s: f64) -> Option<FloodMetrics> {
    let (peak_step, peak) = discharge_m3s.peak()?;
    let over =
        discharge_m3s.values().iter().filter(|v| !v.is_nan() && **v >= threshold_m3s).count();
    let volume = discharge_m3s.sum() * f64::from(discharge_m3s.step_secs());
    Some(FloodMetrics { peak_m3s: peak, peak_step, steps_over_threshold: over, volume_m3: volume })
}

#[cfg(test)]
mod tests {
    use super::*;
    use evop_data::Timestamp;

    fn series(values: Vec<f64>) -> TimeSeries {
        TimeSeries::from_values(Timestamp::UNIX_EPOCH, 3600, values)
    }

    #[test]
    fn nse_of_mean_prediction_is_zero() {
        let obs = series(vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        let mean = series(vec![3.0; 5]);
        assert!((nse(&mean, &obs)).abs() < 1e-12);
    }

    #[test]
    fn nse_penalises_bad_fits_below_zero() {
        let obs = series(vec![1.0, 2.0, 3.0]);
        let bad = series(vec![10.0, -5.0, 8.0]);
        assert!(nse(&bad, &obs) < 0.0);
    }

    #[test]
    fn nse_ignores_missing_pairs() {
        let obs = series(vec![1.0, f64::NAN, 3.0, 4.0]);
        let sim = series(vec![1.0, 99.0, 3.0, 4.0]);
        assert!((nse(&sim, &obs) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nse_nan_for_constant_observations() {
        let obs = series(vec![2.0, 2.0, 2.0]);
        let sim = series(vec![2.0, 2.0, 2.0]);
        assert!(nse(&sim, &obs).is_nan());
    }

    #[test]
    fn log_nse_weights_low_flows() {
        let obs = series(vec![0.1, 0.2, 0.1, 10.0]);
        // Bad at low flow, perfect at peak.
        let low_bad = series(vec![0.5, 0.8, 0.5, 10.0]);
        // Perfect at low flow, 20 % off at peak.
        let peak_off = series(vec![0.1, 0.2, 0.1, 8.0]);
        assert!(log_nse(&peak_off, &obs) > log_nse(&low_bad, &obs));
        assert!(nse(&peak_off, &obs) < nse(&low_bad, &obs));
    }

    #[test]
    fn rmse_known_value() {
        let obs = series(vec![0.0, 0.0]);
        let sim = series(vec![3.0, 4.0]);
        assert!((rmse(&sim, &obs) - (12.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn pbias_sign_convention() {
        let obs = series(vec![1.0, 1.0]);
        let over = series(vec![1.5, 1.5]);
        let under = series(vec![0.5, 0.5]);
        assert!((pbias(&over, &obs) - 50.0).abs() < 1e-9);
        assert!((pbias(&under, &obs) + 50.0).abs() < 1e-9);
    }

    #[test]
    fn objective_scores_are_larger_is_better() {
        let obs = series(vec![1.0, 2.0, 3.0, 4.0]);
        let good = series(vec![1.1, 2.0, 2.9, 4.0]);
        // Both mis-shaped and biased, so every objective ranks it worse.
        let bad = series(vec![4.0, 1.0, 4.0, 6.0]);
        for objective in [Objective::Nse, Objective::LogNse, Objective::Rmse, Objective::Pbias] {
            assert!(
                objective.score(&good, &obs) > objective.score(&bad, &obs),
                "{objective:?} did not rank the better fit higher"
            );
        }
    }

    #[test]
    fn flood_metrics_basics() {
        let q = series(vec![0.5, 1.0, 6.0, 8.0, 3.0, 0.7]);
        let m = flood_metrics(&q, 5.0).unwrap();
        assert_eq!(m.peak_m3s, 8.0);
        assert_eq!(m.peak_step, 3);
        assert_eq!(m.steps_over_threshold, 2);
        assert!((m.volume_m3 - q.sum() * 3600.0).abs() < 1e-9);
    }

    #[test]
    fn flood_metrics_none_when_empty() {
        let q = series(vec![f64::NAN, f64::NAN]);
        assert!(flood_metrics(&q, 1.0).is_none());
    }
}
