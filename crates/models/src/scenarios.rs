//! The land-use and management change scenarios of the LEFT modelling
//! widget.
//!
//! "the user could also select from four land use and management change
//! scenarios. These scenarios, developed with stakeholders, were used to
//! illustrate how changes to land use and land management practices are
//! likely to impact flood risk at the catchment outlet" (paper §V-B). Each
//! scenario is a physically-motivated modifier on model parameters; the
//! widget's preset buttons map one-to-one onto this enum, and the sliders
//! default to each scenario's modified values.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::fuse::FuseParams;
use crate::topmodel::TopmodelParams;

/// A land-use / land-management scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Scenario {
    /// Current land use — the reference run.
    #[default]
    Baseline,
    /// Planting broadleaf woodland on upland pasture: deeper rooting and
    /// higher infiltration absorb more rain (reduces flood peaks).
    Afforestation,
    /// Intensive livestock grazing compacts the soil: thinner effective
    /// root zone, faster saturation (increases flood peaks).
    CompactedSoils,
    /// Installing field drains on wet moorland: water reaches the channel
    /// faster (increases flood peaks, speeds response).
    DrainedMoorland,
    /// Blocking drains and restoring wetland storage: slower, damped
    /// response (reduces flood peaks).
    RestoredWetland,
}

impl Scenario {
    /// All scenarios in widget display order (baseline first).
    pub fn all() -> [Scenario; 5] {
        [
            Scenario::Baseline,
            Scenario::Afforestation,
            Scenario::CompactedSoils,
            Scenario::DrainedMoorland,
            Scenario::RestoredWetland,
        ]
    }

    /// The four change scenarios shown as preset buttons (paper Fig. 6).
    pub fn change_scenarios() -> [Scenario; 4] {
        [
            Scenario::Afforestation,
            Scenario::CompactedSoils,
            Scenario::DrainedMoorland,
            Scenario::RestoredWetland,
        ]
    }

    /// A stable identifier used in URLs and WPS inputs.
    pub fn id(self) -> &'static str {
        match self {
            Scenario::Baseline => "baseline",
            Scenario::Afforestation => "afforestation",
            Scenario::CompactedSoils => "compacted-soils",
            Scenario::DrainedMoorland => "drained-moorland",
            Scenario::RestoredWetland => "restored-wetland",
        }
    }

    /// Parses a scenario id.
    pub fn from_id(id: &str) -> Option<Scenario> {
        Scenario::all().into_iter().find(|s| s.id() == id)
    }

    /// The help text the widget shows — part of the paper's "educate the
    /// user about the model and scenarios" requirement.
    pub fn description(self) -> &'static str {
        match self {
            Scenario::Baseline => "Current land use and management, as observed today.",
            Scenario::Afforestation => {
                "Broadleaf woodland planted on upland pasture. Deeper roots and \
                 litter layers store more water in the soil, so less rain runs \
                 off quickly: flood peaks fall."
            }
            Scenario::CompactedSoils => {
                "Heavy livestock traffic compacts the topsoil. The effective \
                 root zone thins and the ground saturates sooner, shedding \
                 more storm rain: flood peaks rise."
            }
            Scenario::DrainedMoorland => {
                "New field drains move soil water to the channel network \
                 quickly. The catchment responds faster and peaks rise."
            }
            Scenario::RestoredWetland => {
                "Drains are blocked and wetlands re-wetted. Extra surface \
                 storage slows the flood wave and clips the peak."
            }
        }
    }

    /// Whether stakeholder reasoning expects this scenario to *increase*
    /// flood peaks relative to baseline (used as the assertion in
    /// experiment E9).
    pub fn expected_peak_increase(self) -> Option<bool> {
        match self {
            Scenario::Baseline => None,
            Scenario::Afforestation | Scenario::RestoredWetland => Some(false),
            Scenario::CompactedSoils | Scenario::DrainedMoorland => Some(true),
        }
    }

    /// Applies the scenario to TOPMODEL parameters.
    pub fn apply_to_topmodel(self, base: &TopmodelParams) -> TopmodelParams {
        let mut p = *base;
        match self {
            Scenario::Baseline => {}
            Scenario::Afforestation => {
                // Deeper rooting and higher infiltration: more storm rain is
                // stored before it can run off.
                p.srmax *= 2.0;
                p.td *= 1.6;
                p.ln_t0 += 0.8; // macropores raise transmissivity
                p.route_tp_hours *= 1.2;
            }
            Scenario::CompactedSoils => {
                // Thin, fast-saturating, low-transmissivity soils that also
                // shed surface water quickly.
                p.srmax *= 0.3;
                p.td *= 0.3;
                p.ln_t0 -= 1.2;
                p.route_tp_hours = (p.route_tp_hours * 0.7).max(0.5);
            }
            Scenario::DrainedMoorland => {
                // Faster delivery to the channel.
                p.td *= 0.35;
                p.route_tp_hours = (p.route_tp_hours * 0.55).max(0.5);
                p.srmax *= 0.8;
            }
            Scenario::RestoredWetland => {
                // Added storage and slowed routing.
                p.srmax *= 1.4;
                p.route_tp_hours *= 1.6;
                p.td *= 1.8;
            }
        }
        // Modifiers must not break the sr0 <= srmax invariant.
        p.sr0 = p.sr0.min(p.srmax);
        p
    }

    /// Applies the scenario to FUSE parameters.
    pub fn apply_to_fuse(self, base: &FuseParams) -> FuseParams {
        let mut p = *base;
        match self {
            Scenario::Baseline => {}
            Scenario::Afforestation => {
                p.s1max *= 1.7;
                p.b *= 0.7;
                p.route_tp_hours *= 1.2;
            }
            Scenario::CompactedSoils => {
                p.s1max *= 0.5;
                p.b *= 1.5;
            }
            Scenario::DrainedMoorland => {
                p.route_tp_hours = (p.route_tp_hours * 0.55).max(0.5);
                p.ku *= 1.5;
                p.b *= 1.2;
            }
            Scenario::RestoredWetland => {
                p.s1max *= 1.35;
                p.route_tp_hours *= 1.7;
                p.b *= 0.8;
            }
        }
        p
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Scenario::Baseline => "Baseline",
            Scenario::Afforestation => "Afforestation",
            Scenario::CompactedSoils => "Compacted soils",
            Scenario::DrainedMoorland => "Drained moorland",
            Scenario::RestoredWetland => "Restored wetland",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip() {
        for s in Scenario::all() {
            assert_eq!(Scenario::from_id(s.id()), Some(s));
        }
        assert_eq!(Scenario::from_id("martian-canals"), None);
    }

    #[test]
    fn four_change_scenarios_plus_baseline() {
        assert_eq!(Scenario::all().len(), 5);
        assert_eq!(Scenario::change_scenarios().len(), 4);
        assert!(!Scenario::change_scenarios().contains(&Scenario::Baseline));
    }

    #[test]
    fn baseline_is_identity() {
        let t = TopmodelParams::default();
        assert_eq!(Scenario::Baseline.apply_to_topmodel(&t), t);
        let f = FuseParams::default();
        assert_eq!(Scenario::Baseline.apply_to_fuse(&f), f);
    }

    #[test]
    fn modified_params_remain_valid() {
        for s in Scenario::all() {
            assert!(
                s.apply_to_topmodel(&TopmodelParams::default()).validate().is_ok(),
                "{s} breaks TOPMODEL params"
            );
            assert!(
                s.apply_to_fuse(&FuseParams::default()).validate().is_ok(),
                "{s} breaks FUSE params"
            );
        }
    }

    #[test]
    fn storage_direction_matches_narrative() {
        let base = TopmodelParams::default();
        assert!(Scenario::Afforestation.apply_to_topmodel(&base).srmax > base.srmax);
        assert!(Scenario::CompactedSoils.apply_to_topmodel(&base).srmax < base.srmax);
        assert!(
            Scenario::DrainedMoorland.apply_to_topmodel(&base).route_tp_hours < base.route_tp_hours
        );
        assert!(
            Scenario::RestoredWetland.apply_to_topmodel(&base).route_tp_hours > base.route_tp_hours
        );
    }

    #[test]
    fn expected_direction_is_declared_for_changes() {
        for s in Scenario::change_scenarios() {
            assert!(s.expected_peak_increase().is_some(), "{s} lacks an expectation");
        }
        assert!(Scenario::Baseline.expected_peak_increase().is_none());
    }

    #[test]
    fn descriptions_are_substantive() {
        for s in Scenario::all() {
            assert!(s.description().len() > 30, "{s} description too short");
        }
    }
}
