//! Seeded Monte Carlo calibration.
//!
//! "Model calibration was carried out offline to ensure that input data and
//! parameters were in the correct format and the model could adequately
//! reproduce observed discharge at the outlet of the catchment" (paper
//! §V-B). Monte Carlo sampling over parameter ranges is also the paper's
//! canonical embarrassingly parallel cloud workload (§IV-B, §VI) — each
//! sample is an independent model run, which is exactly what the elasticity
//! experiments fan out across instances.

use std::fmt;

use evop_data::TimeSeries;
use evop_sim::SimRng;

use crate::objectives::Objective;

/// Why a calibration could not produce a best sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CalibrationError {
    /// Every evaluated sample scored `NaN` — the model failed over the
    /// whole sampled space.
    AllSamplesNan,
}

impl fmt::Display for CalibrationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CalibrationError::AllSamplesNan => {
                write!(f, "every sample scored NaN — model is broken over the whole space")
            }
        }
    }
}

impl std::error::Error for CalibrationError {}

/// A named box-constrained parameter space.
///
/// # Examples
///
/// ```
/// use evop_models::calibrate::ParamSpace;
/// use evop_models::TopmodelParams;
/// use evop_sim::SimRng;
///
/// let space = ParamSpace::from_ranges(&TopmodelParams::ranges());
/// let mut rng = SimRng::new(1);
/// let sample = space.sample(&mut rng);
/// assert_eq!(sample.len(), 7);
/// assert!(space.contains(&sample));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ParamSpace {
    dims: Vec<(String, f64, f64)>,
}

impl ParamSpace {
    /// Builds a space from `(name, min, max)` triples.
    ///
    /// # Panics
    ///
    /// Panics if any range is empty or inverted.
    pub fn from_ranges(ranges: &[(&str, f64, f64)]) -> ParamSpace {
        assert!(!ranges.is_empty(), "parameter space needs at least one dimension");
        for (name, lo, hi) in ranges {
            assert!(lo < hi, "range for {name} is inverted: [{lo}, {hi}]");
        }
        ParamSpace { dims: ranges.iter().map(|(n, lo, hi)| ((*n).to_owned(), *lo, *hi)).collect() }
    }

    /// Number of dimensions.
    pub fn len(&self) -> usize {
        self.dims.len()
    }

    /// `true` if the space has no dimensions (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.dims.is_empty()
    }

    /// Dimension names in order.
    pub fn names(&self) -> Vec<&str> {
        self.dims.iter().map(|(n, _, _)| n.as_str()).collect()
    }

    /// Draws a uniform sample.
    pub fn sample(&self, rng: &mut SimRng) -> Vec<f64> {
        self.dims.iter().map(|(_, lo, hi)| rng.uniform_in(*lo, *hi)).collect()
    }

    /// `true` if `point` lies inside the box.
    pub fn contains(&self, point: &[f64]) -> bool {
        point.len() == self.dims.len()
            && point.iter().zip(&self.dims).all(|(x, (_, lo, hi))| x >= lo && x <= hi)
    }
}

/// One evaluated sample.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationSample {
    /// The sampled parameter vector.
    pub params: Vec<f64>,
    /// Its objective score (larger is better; `NaN` runs are kept but never
    /// win).
    pub score: f64,
}

/// The outcome of a Monte Carlo calibration.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationResult {
    samples: Vec<CalibrationSample>,
    best: usize,
    evaluations: u64,
    allocations: u64,
}

impl CalibrationResult {
    /// All evaluated samples, in draw order.
    pub fn samples(&self) -> &[CalibrationSample] {
        &self.samples
    }

    /// Model evaluations performed — the "runs" in the perf plane's
    /// Monte Carlo runs/sec. Deterministic: a pure function of the
    /// calibration arguments, never of wall time.
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Logical heap allocations performed per calibration (parameter
    /// vectors drawn plus sample/workspace buffers) — the allocation
    /// pressure figure `perf_report` tracks so an accidental clone in the
    /// hot loop shows up as a counted regression, not a vibe.
    pub fn allocations(&self) -> u64 {
        self.allocations
    }

    /// The best sample.
    pub fn best(&self) -> &CalibrationSample {
        &self.samples[self.best]
    }

    /// The best score.
    pub fn best_score(&self) -> f64 {
        self.best().score
    }

    /// Fraction of samples scoring above `threshold` (used by GLUE to pick
    /// a behavioural cut).
    pub fn fraction_above(&self, threshold: f64) -> f64 {
        let n = self.samples.len();
        if n == 0 {
            return 0.0;
        }
        self.samples.iter().filter(|s| s.score > threshold).count() as f64 / n as f64
    }
}

/// Runs `n` independent, seeded Monte Carlo evaluations of `run`.
///
/// `run` maps a parameter vector to a score (larger is better); model
/// failures should return `NaN`, which never wins.
///
/// # Panics
///
/// Panics if `n` is zero or every sample scored `NaN`. Use
/// [`try_monte_carlo`] to handle the all-`NaN` case as a typed error.
pub fn monte_carlo<F>(space: &ParamSpace, n: usize, seed: u64, run: F) -> CalibrationResult
where
    F: FnMut(&[f64]) -> f64,
{
    match try_monte_carlo(space, n, seed, run) {
        Ok(result) => result,
        // evop-lint: allow(rob-panic) -- documented panicking wrapper; try_monte_carlo is the typed-error path
        Err(err) => panic!("{err}"),
    }
}

/// Fallible [`monte_carlo`]: returns the typed error instead of panicking
/// when every sample scores `NaN`.
///
/// # Errors
///
/// [`CalibrationError::AllSamplesNan`] when no sample produced a finite
/// score.
///
/// # Panics
///
/// Panics if `n` is zero — that is programmer input, not model behaviour.
pub fn try_monte_carlo<F>(
    space: &ParamSpace,
    n: usize,
    seed: u64,
    mut run: F,
) -> Result<CalibrationResult, CalibrationError>
where
    F: FnMut(&[f64]) -> f64,
{
    assert!(n > 0, "at least one sample is required");
    let mut rng = SimRng::new(seed).fork("monte-carlo");
    let mut samples: Vec<CalibrationSample> = Vec::with_capacity(n);
    let mut best: Option<usize> = None;
    for i in 0..n {
        let params = space.sample(&mut rng);
        let score = run(&params);
        if !score.is_nan() && best.is_none_or(|b: usize| score > samples[b].score) {
            best = Some(i);
        }
        samples.push(CalibrationSample { params, score });
    }
    // One parameter vector per draw plus the sample buffer itself.
    let allocations = n as u64 + 1;
    match best {
        Some(best) => Ok(CalibrationResult { samples, best, evaluations: n as u64, allocations }),
        None => Err(CalibrationError::AllSamplesNan),
    }
}

/// Chunked, parallelisable [`monte_carlo`]: `n` seeded evaluations split
/// into fixed-width chunks, each drawing from its own
/// [`fork_indexed`](SimRng::fork_indexed) child stream, merged in chunk
/// order.
///
/// The result is a pure function of `(space, n, seed, run)` — bitwise
/// identical across thread counts and with the `parallel` feature compiled
/// out — but it is a *different* deterministic stream than the
/// single-stream [`monte_carlo`], so switch a workload to one or the
/// other, not back and forth.
///
/// `run` must be `Fn + Sync` (it may be called from worker threads).
///
/// # Panics
///
/// Panics if `n` is zero or every sample scored `NaN`. Use
/// [`try_par_monte_carlo`] to handle the all-`NaN` case as a typed error.
pub fn par_monte_carlo<F>(space: &ParamSpace, n: usize, seed: u64, run: F) -> CalibrationResult
where
    F: Fn(&[f64]) -> f64 + Sync,
{
    match try_par_monte_carlo(space, n, seed, run) {
        Ok(result) => result,
        // evop-lint: allow(rob-panic) -- documented panicking wrapper; try_par_monte_carlo is the typed-error path
        Err(err) => panic!("{err}"),
    }
}

/// Fallible [`par_monte_carlo`]: returns the typed error instead of
/// panicking when every sample scores `NaN`.
///
/// # Errors
///
/// [`CalibrationError::AllSamplesNan`] when no sample produced a finite
/// score.
///
/// # Panics
///
/// Panics if `n` is zero — programmer input, not model behaviour.
pub fn try_par_monte_carlo<F>(
    space: &ParamSpace,
    n: usize,
    seed: u64,
    run: F,
) -> Result<CalibrationResult, CalibrationError>
where
    F: Fn(&[f64]) -> f64 + Sync,
{
    try_par_monte_carlo_with_threads(space, n, seed, crate::par::thread_count(), run)
}

/// [`try_par_monte_carlo`] with an explicit thread count — the hook the
/// determinism soak uses to prove 1, 2 and 8 workers produce identical
/// bits. The thread count only schedules; it never reaches the RNG.
pub fn try_par_monte_carlo_with_threads<F>(
    space: &ParamSpace,
    n: usize,
    seed: u64,
    threads: usize,
    run: F,
) -> Result<CalibrationResult, CalibrationError>
where
    F: Fn(&[f64]) -> f64 + Sync,
{
    assert!(n > 0, "at least one sample is required");
    let root = SimRng::new(seed).fork("monte-carlo");
    let chunks = n.div_ceil(crate::par::PAR_CHUNK);
    let root = &root;
    let run = &run;
    let chunk_samples: Vec<Vec<CalibrationSample>> =
        crate::par::run_chunks_with_threads(chunks, threads, |c| {
            let mut rng = root.fork_indexed("chunk", c as u64);
            let lo = c * crate::par::PAR_CHUNK;
            let hi = (lo + crate::par::PAR_CHUNK).min(n);
            (lo..hi)
                .map(|_| {
                    let params = space.sample(&mut rng);
                    let score = run(&params);
                    CalibrationSample { params, score }
                })
                .collect()
        });

    let mut samples: Vec<CalibrationSample> = Vec::with_capacity(n);
    let mut best: Option<usize> = None;
    for sample in chunk_samples.into_iter().flatten() {
        if !sample.score.is_nan() && best.is_none_or(|b: usize| sample.score > samples[b].score) {
            best = Some(samples.len());
        }
        samples.push(sample);
    }
    // One params vec per draw, the merged buffer, plus one buffer per chunk.
    let allocations = n as u64 + 1 + chunks as u64;
    match best {
        Some(best) => Ok(CalibrationResult { samples, best, evaluations: n as u64, allocations }),
        None => Err(CalibrationError::AllSamplesNan),
    }
}

/// Multi-round Monte Carlo with box refinement: each round samples
/// uniformly, then shrinks the box around the incumbent best by `shrink`
/// (clamped to the original bounds) for the next round.
///
/// This is the cheap global-then-local search hydrologists reach for when
/// a single uniform pass undersamples a high-dimensional space.
///
/// # Panics
///
/// Panics if `rounds` or `samples_per_round` is zero, `shrink` is not in
/// `(0, 1)`, or every sample scores `NaN`.
///
/// # Examples
///
/// ```
/// use evop_models::calibrate::{monte_carlo_refined, ParamSpace};
///
/// let space = ParamSpace::from_ranges(&[("x", -10.0, 10.0), ("y", -10.0, 10.0)]);
/// let result = monte_carlo_refined(&space, 4, 200, 0.5, 1, |p| {
///     -(p[0] - 3.0).powi(2) - (p[1] + 2.0).powi(2)
/// });
/// assert!((result.best().params[0] - 3.0).abs() < 0.1);
/// ```
pub fn monte_carlo_refined<F>(
    space: &ParamSpace,
    rounds: usize,
    samples_per_round: usize,
    shrink: f64,
    seed: u64,
    run: F,
) -> CalibrationResult
where
    F: FnMut(&[f64]) -> f64,
{
    match try_monte_carlo_refined(space, rounds, samples_per_round, shrink, seed, run) {
        Ok(result) => result,
        // evop-lint: allow(rob-panic) -- documented panicking wrapper; try_monte_carlo_refined is the typed-error path
        Err(err) => panic!("{err}"),
    }
}

/// Fallible [`monte_carlo_refined`]: returns the typed error instead of
/// panicking when every sample scores `NaN`.
///
/// # Errors
///
/// [`CalibrationError::AllSamplesNan`] when no round produced a finite
/// score.
///
/// # Panics
///
/// Panics if `rounds` or `samples_per_round` is zero or `shrink` is not
/// in `(0, 1)` — programmer input, not model behaviour.
pub fn try_monte_carlo_refined<F>(
    space: &ParamSpace,
    rounds: usize,
    samples_per_round: usize,
    shrink: f64,
    seed: u64,
    mut run: F,
) -> Result<CalibrationResult, CalibrationError>
where
    F: FnMut(&[f64]) -> f64,
{
    assert!(rounds > 0 && samples_per_round > 0, "rounds and samples must be positive");
    assert!(shrink > 0.0 && shrink < 1.0, "shrink must be in (0, 1)");

    let mut all_samples: Vec<CalibrationSample> = Vec::new();
    let mut best: Option<usize> = None;
    let mut current = space.clone();
    let mut evaluations = 0u64;
    // The accumulator buffer, plus one shrunken ParamSpace per round.
    let mut allocations = 1u64 + rounds as u64;
    for round in 0..rounds {
        let result =
            try_monte_carlo(&current, samples_per_round, seed ^ (round as u64) << 32, &mut run)?;
        evaluations += result.evaluations;
        allocations += result.allocations;
        for sample in result.samples {
            if !sample.score.is_nan()
                && best.is_none_or(|b: usize| sample.score > all_samples[b].score)
            {
                best = Some(all_samples.len());
            }
            all_samples.push(sample);
        }
        // The first round either returned `AllSamplesNan` above or
        // produced a finite-scoring best.
        let Some(best) = best else { return Err(CalibrationError::AllSamplesNan) };
        // Shrink around the incumbent, clamped to the original bounds.
        let incumbent = &all_samples[best].params;
        current = ParamSpace {
            dims: space
                .dims
                .iter()
                .enumerate()
                .map(|(i, (name, lo, hi))| {
                    let half = (hi - lo) * shrink.powi(round as i32 + 1) / 2.0;
                    let centre = incumbent[i];
                    (name.clone(), (centre - half).max(*lo), (centre + half).min(*hi))
                })
                .collect(),
        };
    }
    match best {
        Some(best) => {
            Ok(CalibrationResult { samples: all_samples, best, evaluations, allocations })
        }
        None => Err(CalibrationError::AllSamplesNan),
    }
}

/// Convenience: calibrates a simulation closure against observations with a
/// standard objective.
///
/// `simulate` maps a parameter vector to a discharge series aligned with
/// `observed`; failures may return `None`.
pub fn calibrate_series<F>(
    space: &ParamSpace,
    n: usize,
    seed: u64,
    observed: &TimeSeries,
    objective: Objective,
    mut simulate: F,
) -> CalibrationResult
where
    F: FnMut(&[f64]) -> Option<TimeSeries>,
{
    monte_carlo(space, n, seed, |params| match simulate(params) {
        Some(sim) => objective.score(&sim, observed),
        None => f64::NAN,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use evop_data::Timestamp;

    #[test]
    fn monte_carlo_finds_known_optimum() {
        // Score = -(x-3)² - (y+1)²: optimum at (3, -1).
        let space = ParamSpace::from_ranges(&[("x", 0.0, 5.0), ("y", -3.0, 2.0)]);
        let result =
            monte_carlo(&space, 4000, 42, |p| -(p[0] - 3.0).powi(2) - (p[1] + 1.0).powi(2));
        let best = result.best();
        assert!((best.params[0] - 3.0).abs() < 0.2, "x = {}", best.params[0]);
        assert!((best.params[1] + 1.0).abs() < 0.2, "y = {}", best.params[1]);
        assert_eq!(result.samples().len(), 4000);
    }

    #[test]
    fn calibration_is_deterministic_per_seed() {
        let space = ParamSpace::from_ranges(&[("x", 0.0, 1.0)]);
        let a = monte_carlo(&space, 100, 7, |p| -p[0]);
        let b = monte_carlo(&space, 100, 7, |p| -p[0]);
        assert_eq!(a, b);
        let c = monte_carlo(&space, 100, 8, |p| -p[0]);
        assert_ne!(a.best().params, c.best().params);
    }

    #[test]
    fn nan_scores_never_win() {
        let space = ParamSpace::from_ranges(&[("x", 0.0, 1.0)]);
        let result = monte_carlo(&space, 200, 1, |p| if p[0] > 0.5 { f64::NAN } else { p[0] });
        assert!(result.best().params[0] <= 0.5);
        assert!(!result.best_score().is_nan());
    }

    #[test]
    #[should_panic(expected = "every sample scored NaN")]
    fn all_nan_panics() {
        let space = ParamSpace::from_ranges(&[("x", 0.0, 1.0)]);
        let _ = monte_carlo(&space, 10, 1, |_| f64::NAN);
    }

    #[test]
    fn perf_counters_are_deterministic_functions_of_arguments() {
        let space = ParamSpace::from_ranges(&[("x", 0.0, 1.0)]);
        let result = monte_carlo(&space, 250, 9, |p| p[0]);
        assert_eq!(result.evaluations(), 250);
        assert_eq!(result.allocations(), 251, "one params vec per draw + the sample buffer");
        let refined = monte_carlo_refined(&space, 3, 100, 0.5, 9, |p| p[0]);
        assert_eq!(refined.evaluations(), 300);
        // 3 rounds × (100 + 1) + accumulator + 3 shrunken spaces.
        assert_eq!(refined.allocations(), 3 * 101 + 1 + 3);
    }

    #[test]
    fn fraction_above_counts_correctly() {
        let space = ParamSpace::from_ranges(&[("x", 0.0, 1.0)]);
        let result = monte_carlo(&space, 1000, 3, |p| p[0]);
        let frac = result.fraction_above(0.8);
        assert!((frac - 0.2).abs() < 0.05, "fraction {frac}");
    }

    #[test]
    fn calibrate_series_scores_against_observed() {
        let t0 = Timestamp::from_ymd(2012, 1, 1);
        let observed = TimeSeries::from_values(t0, 3600, vec![2.0, 4.0, 6.0, 8.0]);
        let space = ParamSpace::from_ranges(&[("gain", 0.1, 5.0)]);
        // The "model": gain · [1,2,3,4]. True gain = 2.
        let result = calibrate_series(&space, 2000, 11, &observed, Objective::Nse, |p| {
            Some(TimeSeries::from_values(t0, 3600, vec![p[0], 2.0 * p[0], 3.0 * p[0], 4.0 * p[0]]))
        });
        assert!((result.best().params[0] - 2.0).abs() < 0.05);
        assert!(result.best_score() > 0.99);
    }

    #[test]
    fn sample_stays_in_box() {
        let space = ParamSpace::from_ranges(&[("a", -1.0, 1.0), ("b", 100.0, 200.0)]);
        let mut rng = SimRng::new(5);
        for _ in 0..100 {
            assert!(space.contains(&space.sample(&mut rng)));
        }
        assert!(!space.contains(&[0.0]));
        assert!(!space.contains(&[0.0, 99.0]));
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_range_rejected() {
        let _ = ParamSpace::from_ranges(&[("x", 1.0, 0.0)]);
    }
}
