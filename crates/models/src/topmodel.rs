//! TOPMODEL (Beven & Kirkby, 1979) — the "established quasi-physical
//! process-based model" of the LEFT widget (paper §V-B).
//!
//! The implementation follows the classic formulation: the catchment is
//! discretised into topographic-index classes; a local saturation deficit is
//! maintained per class via the catchment-mean deficit and the exponential
//! transmissivity assumption; rain on saturated classes becomes
//! saturation-excess overland flow; the unsaturated zone drains to the
//! saturated store with a deficit-dependent delay; baseflow follows the
//! exponential store; and total runoff is routed through a triangular unit
//! hydrograph.

use evop_data::TimeSeries;
use serde::{Deserialize, Serialize};

use crate::routing::triangular_kernel;
use crate::Forcing;

/// TOPMODEL parameters. Units follow the classic papers (metres and hours).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TopmodelParams {
    /// Exponential transmissivity decay parameter `m` (m). Small `m` → flashy.
    pub m: f64,
    /// Log of the saturated transmissivity `ln T₀` (T₀ in m²/h).
    pub ln_t0: f64,
    /// Root-zone available water capacity (m).
    pub srmax: f64,
    /// Initial root-zone deficit (m), `0 ≤ sr0 ≤ srmax`.
    pub sr0: f64,
    /// Unsaturated-zone time delay per unit deficit (h/m).
    pub td: f64,
    /// Channel routing time-to-peak (h) of the triangular unit hydrograph.
    pub route_tp_hours: f64,
    /// Antecedent specific discharge used to initialise the mean deficit
    /// (mm/h) — classic TOPMODEL takes this from the first observed flow.
    pub q0_init_mm_h: f64,
}

impl Default for TopmodelParams {
    fn default() -> TopmodelParams {
        TopmodelParams {
            m: 0.012,
            ln_t0: 5.0,
            srmax: 0.05,
            sr0: 0.02,
            td: 10.0,
            route_tp_hours: 4.0,
            q0_init_mm_h: 0.15,
        }
    }
}

impl TopmodelParams {
    /// The calibration ranges used by the Monte Carlo calibrator and the
    /// widget's parameter sliders: `(name, min, max)`.
    pub fn ranges() -> Vec<(&'static str, f64, f64)> {
        vec![
            ("m", 0.002, 0.08),
            ("ln_t0", -2.0, 8.0),
            ("srmax", 0.01, 0.20),
            ("sr0", 0.0, 0.05),
            ("td", 1.0, 40.0),
            ("route_tp_hours", 1.0, 12.0),
            ("q0_init_mm_h", 0.02, 2.0),
        ]
    }

    /// Builds parameters from a calibration vector ordered as
    /// [`TopmodelParams::ranges`].
    ///
    /// # Panics
    ///
    /// Panics if `values` does not have exactly seven entries.
    pub fn from_vector(values: &[f64]) -> TopmodelParams {
        assert_eq!(values.len(), 7, "expected 7 parameter values");
        TopmodelParams {
            m: values[0],
            ln_t0: values[1],
            srmax: values[2],
            sr0: values[3],
            td: values[4],
            route_tp_hours: values[5],
            q0_init_mm_h: values[6],
        }
    }

    /// Flattens to a calibration vector ordered as
    /// [`TopmodelParams::ranges`].
    pub fn to_vector(self) -> Vec<f64> {
        vec![
            self.m,
            self.ln_t0,
            self.srmax,
            self.sr0,
            self.td,
            self.route_tp_hours,
            self.q0_init_mm_h,
        ]
    }

    /// Validates physical consistency.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for non-positive `m`/`srmax`/`td`,
    /// or `sr0` outside `[0, srmax]`.
    pub fn validate(&self) -> Result<(), String> {
        if self.m.is_nan() || self.m <= 0.0 {
            return Err(format!("m must be positive, got {}", self.m));
        }
        if self.srmax.is_nan() || self.srmax <= 0.0 {
            return Err(format!("srmax must be positive, got {}", self.srmax));
        }
        if self.td.is_nan() || self.td <= 0.0 {
            return Err(format!("td must be positive, got {}", self.td));
        }
        if self.sr0 < 0.0 || self.sr0 > self.srmax {
            return Err(format!("sr0 {} outside [0, srmax={}]", self.sr0, self.srmax));
        }
        if self.route_tp_hours.is_nan() || self.route_tp_hours <= 0.0 {
            return Err(format!("route_tp_hours must be positive, got {}", self.route_tp_hours));
        }
        if self.q0_init_mm_h.is_nan() || self.q0_init_mm_h <= 0.0 {
            return Err(format!("q0_init_mm_h must be positive, got {}", self.q0_init_mm_h));
        }
        Ok(())
    }
}

/// Model output: discharge plus diagnostic series.
#[derive(Debug, Clone, PartialEq)]
pub struct TopmodelOutput {
    /// Routed discharge at the outlet, m³/s.
    pub discharge_m3s: TimeSeries,
    /// Fraction of the catchment saturated at each step, `[0, 1]`.
    pub saturated_fraction: TimeSeries,
    /// Baseflow component before routing, mm per step.
    pub baseflow_mm: TimeSeries,
    /// Saturation-excess overland flow before routing, mm per step.
    pub overland_mm: TimeSeries,
}

/// A TOPMODEL instance bound to a catchment's topographic-index
/// distribution and area.
///
/// # Examples
///
/// ```
/// use evop_data::{Catchment, Timestamp};
/// use evop_data::synthetic::WeatherGenerator;
/// use evop_models::pet::hamon_series;
/// use evop_models::{Forcing, Topmodel, TopmodelParams};
/// use rand::SeedableRng;
///
/// let catchment = Catchment::morland();
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
/// let dem = catchment.generate_dem(&mut rng);
/// let model = Topmodel::new(dem.ti_distribution(16), catchment.area_km2());
///
/// let g = WeatherGenerator::for_catchment(&catchment, 1);
/// let start = Timestamp::from_ymd(2012, 1, 1);
/// let rain = g.rainfall(start, 3600, 24 * 30);
/// let temp = g.temperature(start, 3600, 24 * 30);
/// let forcing = Forcing::new(rain, hamon_series(&temp, catchment.outlet().lat()));
///
/// let out = model.run(&TopmodelParams::default(), &forcing).unwrap();
/// assert_eq!(out.discharge_m3s.len(), 24 * 30);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Topmodel {
    ti_classes: Vec<(f64, f64)>,
    area_km2: f64,
    lambda: f64,
}

impl Topmodel {
    /// Creates a model from a topographic-index distribution (`(class
    /// value, area fraction)` pairs, fractions summing to ~1) and catchment
    /// area.
    ///
    /// # Panics
    ///
    /// Panics if the distribution is empty, fractions do not sum to ~1, or
    /// the area is not positive.
    pub fn new(ti_classes: Vec<(f64, f64)>, area_km2: f64) -> Topmodel {
        assert!(!ti_classes.is_empty(), "need at least one TI class");
        assert!(area_km2 > 0.0, "area must be positive");
        let total: f64 = ti_classes.iter().map(|(_, f)| f).sum();
        assert!((total - 1.0).abs() < 0.01, "TI fractions must sum to 1, got {total}");
        let lambda = ti_classes.iter().map(|(ti, f)| ti * f).sum();
        Topmodel { ti_classes, area_km2, lambda }
    }

    /// The catchment-average topographic index λ.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// The catchment area in km².
    pub fn area_km2(&self) -> f64 {
        self.area_km2
    }

    /// Runs the model over the forcing.
    ///
    /// # Errors
    ///
    /// Returns a message when the parameters fail
    /// [`TopmodelParams::validate`].
    pub fn run(
        &self,
        params: &TopmodelParams,
        forcing: &Forcing,
    ) -> Result<TopmodelOutput, String> {
        params.validate()?;
        let dt = forcing.step_hours();
        let n = forcing.len();
        let start = forcing.rainfall().start();
        let step = forcing.rainfall().step_secs();

        // Subsurface rate scale q0 = T0 e^{-λ} (m/h per unit area).
        let q0 = (params.ln_t0 - self.lambda).exp();
        // Initialise the mean deficit from the antecedent discharge.
        let q_init = params.q0_init_mm_h / 1000.0; // m/h
        let mut sbar = (-params.m * (q_init / q0).ln()).max(1e-4);
        let mut srz = params.sr0; // root-zone deficit, m
        let mut suz = vec![0.0f64; self.ti_classes.len()]; // per-class unsat storage, m

        let kernel = triangular_kernel(params.route_tp_hours, dt);
        let mut route_buffer = vec![0.0f64; n + kernel.len()];

        let mut baseflow_mm = TimeSeries::new(start, step);
        let mut overland_mm = TimeSeries::new(start, step);
        let mut saturated = TimeSeries::new(start, step);

        for t in 0..n {
            let rain_m = forcing.rainfall().value_at(t).max(0.0) / 1000.0;
            let pet_m = forcing.pet().value_at(t).max(0.0) / 1000.0;

            // 1. Baseflow from the exponential saturated store.
            let qb = (q0 * (-sbar / params.m).exp() * dt).max(0.0); // m per step

            // 2. Root zone: evapotranspiration scaled by moisture, then rain
            //    infiltration.
            let ea = pet_m * (1.0 - srz / params.srmax).clamp(0.0, 1.0);
            srz = (srz + ea).min(params.srmax);
            let fill = rain_m.min(srz);
            srz -= fill;
            let p_excess = rain_m - fill;

            // 3. Per-class unsaturated zone accounting.
            let mut qof = 0.0; // saturation-excess, m per step
            let mut recharge = 0.0; // to saturated zone, m per step
            let mut sat_area = 0.0;
            for (i, &(ti, frac)) in self.ti_classes.iter().enumerate() {
                let local_deficit = sbar + params.m * (self.lambda - ti);
                if local_deficit <= 0.0 {
                    // Saturated class: everything runs off, stored water
                    // exfiltrates.
                    sat_area += frac;
                    qof += frac * (p_excess + suz[i]);
                    suz[i] = 0.0;
                } else {
                    suz[i] += p_excess;
                    if suz[i] > local_deficit {
                        qof += frac * (suz[i] - local_deficit);
                        suz[i] = local_deficit;
                    }
                    // Gravity drainage with deficit-dependent delay.
                    let rate = suz[i] / (local_deficit * params.td); // m/h
                    let quz = (rate * dt).min(suz[i]);
                    suz[i] -= quz;
                    recharge += frac * quz;
                }
            }

            // 4. Mean deficit bookkeeping: baseflow deepens it, recharge
            //    shallows it.
            sbar = (sbar + qb - recharge).max(-0.05);

            // 5. Route total runoff through the unit hydrograph.
            let total = qof + qb;
            for (k, &w) in kernel.iter().enumerate() {
                route_buffer[t + k] += total * w;
            }

            baseflow_mm.push(qb * 1000.0);
            overland_mm.push(qof * 1000.0);
            saturated.push(sat_area);
        }

        // Convert routed depth (m per step) to discharge (m³/s).
        let area_m2 = self.area_km2 * 1e6;
        let dt_secs = f64::from(step);
        let mut discharge = TimeSeries::new(start, step);
        for value in route_buffer.iter().take(n) {
            discharge.push(value * area_m2 / dt_secs);
        }

        Ok(TopmodelOutput {
            discharge_m3s: discharge,
            saturated_fraction: saturated,
            baseflow_mm,
            overland_mm,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evop_data::{Catchment, Timestamp};

    fn model() -> Topmodel {
        use rand::SeedableRng;
        let catchment = Catchment::morland();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let dem = catchment.generate_dem(&mut rng);
        Topmodel::new(dem.ti_distribution(16), catchment.area_km2())
    }

    fn storm_forcing(dry_hours: usize, storm_mm_per_h: f64, storm_hours: usize) -> Forcing {
        let start = Timestamp::from_ymd(2012, 1, 1);
        let total = dry_hours + storm_hours + 240;
        let rain = TimeSeries::from_fn(start, 3600, total, |t| {
            let h = ((t - start) / 3600) as usize;
            if (dry_hours..dry_hours + storm_hours).contains(&h) {
                storm_mm_per_h
            } else {
                0.0
            }
        });
        let pet = TimeSeries::from_values(start, 3600, vec![0.02; total]);
        Forcing::new(rain, pet)
    }

    #[test]
    fn recession_without_rain() {
        let m = model();
        let start = Timestamp::from_ymd(2012, 1, 1);
        let rain = TimeSeries::from_values(start, 3600, vec![0.0; 240]);
        let pet = TimeSeries::from_values(start, 3600, vec![0.02; 240]);
        let out = m.run(&TopmodelParams::default(), &Forcing::new(rain, pet)).unwrap();
        let q = &out.discharge_m3s;
        // After the routing kernel settles, flow must recede monotonically.
        for i in 20..q.len() - 1 {
            assert!(
                q.value_at(i + 1) <= q.value_at(i) + 1e-12,
                "flow rose during recession at step {i}"
            );
        }
        assert!(q.value_at(239) < q.value_at(20));
    }

    #[test]
    fn storm_produces_delayed_peak() {
        let m = model();
        let out = m.run(&TopmodelParams::default(), &storm_forcing(48, 6.0, 12)).unwrap();
        let (peak_idx, peak) = out.discharge_m3s.peak().unwrap();
        assert!(peak_idx >= 48, "peak at {peak_idx} precedes storm onset at 48");
        let pre_storm = out.discharge_m3s.value_at(40);
        assert!(peak > pre_storm * 2.0, "peak {peak} vs pre-storm {pre_storm}");
    }

    #[test]
    fn mass_balance_is_bounded_by_input() {
        let m = model();
        let forcing = storm_forcing(24, 5.0, 24);
        let out = m.run(&TopmodelParams::default(), &forcing).unwrap();
        let rain_m3 = forcing.rainfall().sum() / 1000.0 * m.area_km2() * 1e6;
        let q_m3: f64 = out.discharge_m3s.values().iter().sum::<f64>() * 3600.0;
        // Output cannot exceed input plus initial storage drainage
        // (generously bounded at 100 mm over the catchment).
        let initial_storage_m3 = 0.1 * m.area_km2() * 1e6;
        assert!(
            q_m3 < rain_m3 + initial_storage_m3,
            "discharge volume {q_m3:.0} m³ vs rain {rain_m3:.0} m³"
        );
        assert!(q_m3 > 0.05 * rain_m3, "implausibly little runoff");
    }

    #[test]
    fn saturated_fraction_grows_in_storm() {
        let m = model();
        let out = m.run(&TopmodelParams::default(), &storm_forcing(24, 8.0, 48)).unwrap();
        let before = out.saturated_fraction.value_at(20);
        let after = out.saturated_fraction.value_at(80);
        assert!(after > before, "saturation {after} should exceed pre-storm {before}");
        assert!(out.saturated_fraction.values().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn smaller_m_is_flashier() {
        let m = model();
        let forcing = storm_forcing(48, 6.0, 12);
        let flashy = TopmodelParams { m: 0.008, ..TopmodelParams::default() };
        let damped = TopmodelParams { m: 0.06, ..TopmodelParams::default() };
        let q_flashy = m.run(&flashy, &forcing).unwrap().discharge_m3s;
        let q_damped = m.run(&damped, &forcing).unwrap().discharge_m3s;
        assert!(
            q_flashy.peak().unwrap().1 > q_damped.peak().unwrap().1,
            "flashy peak {} should exceed damped peak {}",
            q_flashy.peak().unwrap().1,
            q_damped.peak().unwrap().1
        );
    }

    #[test]
    fn larger_root_zone_absorbs_more() {
        let m = model();
        let forcing = storm_forcing(48, 4.0, 10);
        let thin = TopmodelParams { srmax: 0.01, sr0: 0.01, ..TopmodelParams::default() };
        let thick = TopmodelParams { srmax: 0.18, sr0: 0.05, ..TopmodelParams::default() };
        let v_thin: f64 = m.run(&thin, &forcing).unwrap().discharge_m3s.sum();
        let v_thick: f64 = m.run(&thick, &forcing).unwrap().discharge_m3s.sum();
        assert!(
            v_thin > v_thick,
            "thin root zone {v_thin} should yield more runoff than {v_thick}"
        );
    }

    #[test]
    fn run_is_deterministic() {
        let m = model();
        let forcing = storm_forcing(48, 6.0, 12);
        let a = m.run(&TopmodelParams::default(), &forcing).unwrap();
        let b = m.run(&TopmodelParams::default(), &forcing).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn invalid_params_are_rejected() {
        let m = model();
        let forcing = storm_forcing(4, 1.0, 2);
        let bad = TopmodelParams { m: -1.0, ..TopmodelParams::default() };
        assert!(m.run(&bad, &forcing).is_err());
        let bad_sr0 = TopmodelParams { sr0: 1.0, srmax: 0.05, ..TopmodelParams::default() };
        assert!(m.run(&bad_sr0, &forcing).is_err());
    }

    #[test]
    fn param_vector_round_trip() {
        let p = TopmodelParams::default();
        let v = p.to_vector();
        assert_eq!(TopmodelParams::from_vector(&v), p);
        assert_eq!(v.len(), TopmodelParams::ranges().len());
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn bad_ti_distribution_rejected() {
        let _ = Topmodel::new(vec![(5.0, 0.4)], 10.0);
    }
}
