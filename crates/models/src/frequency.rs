//! Flood-frequency analysis: flow-duration curves and return periods.
//!
//! The portal overlays "indicative flood hazard thresholds" on its data
//! (paper §I), and stakeholders asked "how do I decide when my property is
//! at risk of flooding?" (§V-B). This module provides the standard
//! hydrological answers: the flow-duration curve (how often is a flow
//! exceeded?), annual-maximum extraction, and Gumbel (EV1) return-level
//! estimation ("the 10-year flood").

use evop_data::TimeSeries;

/// A flow-duration curve: exceedance probability versus flow.
///
/// # Examples
///
/// ```
/// use evop_data::{TimeSeries, Timestamp};
/// use evop_models::frequency::FlowDurationCurve;
///
/// let q = TimeSeries::from_values(
///     Timestamp::UNIX_EPOCH,
///     3600,
///     (1..=100).map(f64::from).collect(),
/// );
/// let fdc = FlowDurationCurve::from_series(&q).unwrap();
/// // Q95 (flow exceeded 95 % of the time) is near the low end…
/// assert!(fdc.exceeded_fraction_of_time(0.95) <= 10.0);
/// // …and Q5 near the top.
/// assert!(fdc.exceeded_fraction_of_time(0.05) >= 90.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FlowDurationCurve {
    /// Flows sorted descending.
    sorted: Vec<f64>,
}

impl FlowDurationCurve {
    /// Builds the curve from a discharge series (missing samples ignored).
    ///
    /// Returns `None` when no finite samples exist.
    pub fn from_series(discharge: &TimeSeries) -> Option<FlowDurationCurve> {
        let mut sorted: Vec<f64> =
            discharge.values().iter().copied().filter(|v| v.is_finite()).collect();
        if sorted.is_empty() {
            return None;
        }
        sorted.sort_by(|a, b| b.total_cmp(a));
        Some(FlowDurationCurve { sorted })
    }

    /// The flow exceeded `fraction` of the time (e.g. `0.95` → Q95).
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1]`.
    pub fn exceeded_fraction_of_time(&self, fraction: f64) -> f64 {
        assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
        let n = self.sorted.len();
        let rank = ((fraction * n as f64).ceil() as usize).clamp(1, n);
        self.sorted[rank - 1]
    }

    /// The fraction of time `flow` is equalled or exceeded.
    pub fn exceedance_probability(&self, flow: f64) -> f64 {
        let over = self.sorted.partition_point(|&v| v >= flow);
        over as f64 / self.sorted.len() as f64
    }

    /// Samples the curve at `points` evenly spaced exceedance fractions,
    /// as `(fraction, flow)` pairs — the series the portal plots.
    ///
    /// # Panics
    ///
    /// Panics if `points < 2`.
    pub fn sample(&self, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 2, "need at least two points");
        (0..points)
            .map(|i| {
                let fraction = i as f64 / (points - 1) as f64;
                (fraction, self.exceeded_fraction_of_time(fraction.clamp(0.001, 1.0)))
            })
            .collect()
    }
}

/// Extracts annual maxima from a discharge series (calendar years with at
/// least ~half a year of data).
pub fn annual_maxima(discharge: &TimeSeries) -> Vec<(i32, f64)> {
    use std::collections::BTreeMap;
    let mut by_year: BTreeMap<i32, (f64, usize)> = BTreeMap::new();
    for (t, v) in discharge.iter() {
        if !v.is_finite() {
            continue;
        }
        let entry = by_year.entry(t.year()).or_insert((f64::NEG_INFINITY, 0));
        entry.0 = entry.0.max(v);
        entry.1 += 1;
    }
    let steps_per_year = (365 * 86_400) / i64::from(discharge.step_secs()).max(1);
    by_year
        .into_iter()
        .filter(|(_, (_, count))| *count as i64 >= steps_per_year / 2)
        .map(|(year, (max, _))| (year, max))
        .collect()
}

/// A fitted Gumbel (EV1) distribution over annual maxima.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GumbelFit {
    /// Location parameter μ.
    pub location: f64,
    /// Scale parameter β.
    pub scale: f64,
    /// Sample size the fit used.
    pub n: usize,
}

impl GumbelFit {
    /// Fits by the method of moments: `β = s·√6/π`, `μ = x̄ − γβ`.
    ///
    /// Returns `None` with fewer than 3 maxima or zero variance.
    pub fn fit(annual_maxima: &[(i32, f64)]) -> Option<GumbelFit> {
        if annual_maxima.len() < 3 {
            return None;
        }
        let n = annual_maxima.len() as f64;
        let mean = annual_maxima.iter().map(|&(_, v)| v).sum::<f64>() / n;
        let var = annual_maxima.iter().map(|&(_, v)| (v - mean).powi(2)).sum::<f64>() / (n - 1.0);
        if var <= 0.0 {
            return None;
        }
        const EULER_GAMMA: f64 = 0.577_215_664_901_532_9;
        let scale = var.sqrt() * (6.0f64).sqrt() / std::f64::consts::PI;
        let location = mean - EULER_GAMMA * scale;
        Some(GumbelFit { location, scale, n: annual_maxima.len() })
    }

    /// The `t`-year return level: the annual-maximum flow exceeded on
    /// average once every `t` years.
    ///
    /// # Panics
    ///
    /// Panics if `t <= 1`.
    pub fn return_level(&self, t: f64) -> f64 {
        assert!(t > 1.0, "return period must exceed one year");
        let y = -(-(1.0 - 1.0 / t).ln()).ln(); // reduced variate −ln(−ln(1−1/T))
        self.location + self.scale * y
    }

    /// The return period (years) of a given annual-maximum flow.
    pub fn return_period(&self, flow: f64) -> f64 {
        let y = (flow - self.location) / self.scale;
        let p_non_exceed = (-(-y).exp()).exp();
        if p_non_exceed >= 1.0 {
            f64::INFINITY
        } else {
            1.0 / (1.0 - p_non_exceed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evop_data::Timestamp;

    fn t0() -> Timestamp {
        Timestamp::from_ymd(2010, 1, 1)
    }

    #[test]
    fn fdc_is_monotone_decreasing() {
        let q = TimeSeries::from_values(
            t0(),
            3600,
            (0..500).map(|i| (i as f64 * 0.37).sin().abs() * 9.0 + 0.5).collect(),
        );
        let fdc = FlowDurationCurve::from_series(&q).unwrap();
        let samples = fdc.sample(21);
        for pair in samples.windows(2) {
            assert!(pair[1].1 <= pair[0].1 + 1e-12, "FDC must decrease: {pair:?}");
        }
    }

    #[test]
    fn fdc_exceedance_round_trip() {
        let q = TimeSeries::from_values(t0(), 3600, (1..=1000).map(f64::from).collect());
        let fdc = FlowDurationCurve::from_series(&q).unwrap();
        let q90 = fdc.exceeded_fraction_of_time(0.9);
        let p = fdc.exceedance_probability(q90);
        assert!((p - 0.9).abs() < 0.01, "round trip gave {p}");
    }

    #[test]
    fn fdc_ignores_missing_and_rejects_empty() {
        let q = TimeSeries::from_values(t0(), 3600, vec![f64::NAN, 2.0, f64::NAN, 4.0]);
        let fdc = FlowDurationCurve::from_series(&q).unwrap();
        assert_eq!(fdc.exceeded_fraction_of_time(1.0), 2.0);
        let empty = TimeSeries::from_values(t0(), 3600, vec![f64::NAN; 3]);
        assert!(FlowDurationCurve::from_series(&empty).is_none());
    }

    #[test]
    fn annual_maxima_picks_per_year_peaks() {
        // Three full years of hourly data with known peaks.
        let n = 3 * 365 * 24;
        let q = TimeSeries::from_fn(t0(), 3600, n, |t| {
            let base = 1.0;
            match (t.year(), t.day_of_year()) {
                (2010, 30) => 10.0,
                (2011, 200) => 20.0,
                (2012, 100) => 15.0,
                _ => base,
            }
        });
        let maxima = annual_maxima(&q);
        assert_eq!(maxima.len(), 3);
        assert_eq!(maxima[0], (2010, 10.0));
        assert_eq!(maxima[1], (2011, 20.0));
        assert_eq!(maxima[2], (2012, 15.0));
    }

    #[test]
    fn short_years_are_excluded() {
        // Only 10 days of 2013: no annual maximum for it.
        let n = 365 * 24 + 10 * 24;
        let q = TimeSeries::from_fn(t0().plus_days(365 * 3), 3600, n, |_| 1.0);
        let maxima = annual_maxima(&q);
        assert_eq!(maxima.len(), 1);
    }

    #[test]
    fn gumbel_return_levels_are_ordered_and_bracket_the_data() {
        let maxima: Vec<(i32, f64)> =
            (0..20).map(|i| (2000 + i, 8.0 + 3.0 * ((i as f64 * 0.7).sin() + 1.0))).collect();
        let fit = GumbelFit::fit(&maxima).unwrap();
        let q2 = fit.return_level(2.0);
        let q10 = fit.return_level(10.0);
        let q100 = fit.return_level(100.0);
        assert!(q2 < q10 && q10 < q100, "{q2} {q10} {q100}");
        // The 2-year level sits near the median of the maxima.
        let mut values: Vec<f64> = maxima.iter().map(|&(_, v)| v).collect();
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = values[values.len() / 2];
        assert!((q2 - median).abs() < 2.0, "q2 {q2} vs median {median}");
    }

    #[test]
    fn gumbel_return_period_inverts_return_level() {
        let maxima: Vec<(i32, f64)> = (0..30).map(|i| (1990 + i, 5.0 + (i % 7) as f64)).collect();
        let fit = GumbelFit::fit(&maxima).unwrap();
        for t in [2.0, 5.0, 25.0, 100.0] {
            let level = fit.return_level(t);
            let back = fit.return_period(level);
            assert!((back - t).abs() / t < 1e-6, "t={t} back={back}");
        }
    }

    #[test]
    fn gumbel_fit_rejects_degenerate_input() {
        assert!(GumbelFit::fit(&[(2000, 1.0), (2001, 2.0)]).is_none());
        assert!(GumbelFit::fit(&[(2000, 3.0), (2001, 3.0), (2002, 3.0)]).is_none());
    }
}
