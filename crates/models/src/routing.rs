//! Channel routing shared by the models.

/// Triangular unit-hydrograph weights with time-to-peak `tp` (time base
/// `2·tp`), discretised to the model step and normalised to sum to 1.
///
/// # Examples
///
/// ```
/// use evop_models::routing::triangular_kernel;
///
/// let k = triangular_kernel(4.0, 1.0);
/// assert!((k.iter().sum::<f64>() - 1.0).abs() < 1e-12);
/// ```
///
/// # Panics
///
/// Panics if `tp_hours` or `dt_hours` is not positive.
pub fn triangular_kernel(tp_hours: f64, dt_hours: f64) -> Vec<f64> {
    assert!(tp_hours > 0.0 && dt_hours > 0.0, "routing times must be positive");
    let base = 2.0 * tp_hours;
    let n = ((base / dt_hours).ceil() as usize).max(1);
    let mut weights: Vec<f64> = (0..n)
        .map(|k| {
            let t = (k as f64 + 0.5) * dt_hours;
            if t <= tp_hours {
                t / tp_hours
            } else {
                ((base - t) / tp_hours).max(0.0)
            }
        })
        .collect();
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        // Time base shorter than one step: all mass arrives immediately.
        return vec![1.0];
    }
    for w in &mut weights {
        *w /= total;
    }
    weights
}

/// Convolves a runoff series (depth per step) with a kernel, returning a
/// series of the same length (tail truncated).
pub fn convolve(runoff: &[f64], kernel: &[f64]) -> Vec<f64> {
    let mut out = vec![0.0; runoff.len() + kernel.len()];
    for (t, &r) in runoff.iter().enumerate() {
        for (k, &w) in kernel.iter().enumerate() {
            out[t + k] += r * w;
        }
    }
    out.truncate(runoff.len());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_is_normalised() {
        for (tp, dt) in [(4.0, 1.0), (0.5, 1.0), (12.0, 0.25)] {
            let k = triangular_kernel(tp, dt);
            assert!((k.iter().sum::<f64>() - 1.0).abs() < 1e-12, "tp={tp} dt={dt}");
        }
    }

    #[test]
    fn kernel_rises_then_falls() {
        let k = triangular_kernel(6.0, 1.0);
        let peak = k.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        assert!(k[..peak].windows(2).all(|w| w[0] <= w[1]));
        assert!(k[peak..].windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn convolution_preserves_mass_within_window() {
        let kernel = triangular_kernel(2.0, 1.0);
        let runoff = vec![1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let routed = convolve(&runoff, &kernel);
        assert_eq!(routed.len(), runoff.len());
        assert!((routed.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn convolution_delays_peak() {
        let kernel = triangular_kernel(3.0, 1.0);
        let runoff = vec![5.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let routed = convolve(&runoff, &kernel);
        let peak =
            routed.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        assert!(peak >= 2, "routed peak at {peak}");
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_tp_rejected() {
        let _ = triangular_kernel(0.0, 1.0);
    }
}
