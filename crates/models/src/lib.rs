//! Hydrological models for the EVOp reproduction.
//!
//! "For this use case, two hydrological models were deployed in the cloud to
//! test the conceptual land use scenarios: TOPMODEL, an established
//! quasi-physical processed based model, and the multi-model ensemble FUSE"
//! (paper §V-B). This crate implements both from the published equations,
//! plus everything around them:
//!
//! * [`topmodel`] — Beven & Kirkby's TOPMODEL: topographic-index classes,
//!   saturation-excess runoff, exponential transmissivity baseflow, root and
//!   unsaturated zone accounting, triangular channel routing;
//! * [`fuse`] — a FUSE-style modular framework: two-bucket models assembled
//!   from interchangeable architectural decisions, and the ensemble runner;
//! * [`pet`] — Hamon potential evapotranspiration from temperature and
//!   latitude;
//! * [`objectives`] — NSE, log-NSE, RMSE, PBIAS and flood-event metrics;
//! * [`calibrate`] — seeded Monte Carlo calibration over parameter spaces;
//! * [`frequency`] — flow-duration curves, annual maxima and Gumbel
//!   return levels (the portal's flood-hazard thresholds);
//! * [`glue`] — GLUE uncertainty analysis (behavioural ensembles and
//!   prediction bounds), the paper's flagship embarrassingly parallel
//!   workload;
//! * [`scenarios`] — the four land-use / management change scenarios of the
//!   LEFT modelling widget (paper Fig. 6).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibrate;
pub mod frequency;
pub mod fuse;
pub mod glue;
pub mod objectives;
pub(crate) mod par;
pub mod pet;
pub mod routing;
pub mod scenarios;
pub mod topmodel;

pub use fuse::{FuseConfig, FuseModel, FuseParams};
pub use scenarios::Scenario;
pub use topmodel::{Topmodel, TopmodelParams};

use evop_data::TimeSeries;

/// Meteorological forcing shared by every model: aligned rainfall and
/// potential evapotranspiration series.
#[derive(Debug, Clone, PartialEq)]
pub struct Forcing {
    rainfall: TimeSeries,
    pet: TimeSeries,
}

impl Forcing {
    /// Creates forcing from aligned rainfall and PET series.
    ///
    /// # Panics
    ///
    /// Panics if the series do not share start, step and length.
    pub fn new(rainfall: TimeSeries, pet: TimeSeries) -> Forcing {
        assert_eq!(rainfall.start(), pet.start(), "forcing must share a start");
        assert_eq!(rainfall.step_secs(), pet.step_secs(), "forcing must share a step");
        assert_eq!(rainfall.len(), pet.len(), "forcing must share a length");
        Forcing { rainfall, pet }
    }

    /// The rainfall series (mm per step).
    pub fn rainfall(&self) -> &TimeSeries {
        &self.rainfall
    }

    /// The potential evapotranspiration series (mm per step).
    pub fn pet(&self) -> &TimeSeries {
        &self.pet
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.rainfall.len()
    }

    /// `true` when the forcing is empty.
    pub fn is_empty(&self) -> bool {
        self.rainfall.is_empty()
    }

    /// Step length in hours.
    pub fn step_hours(&self) -> f64 {
        f64::from(self.rainfall.step_secs()) / 3600.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evop_data::Timestamp;

    #[test]
    fn forcing_validates_alignment() {
        let t0 = Timestamp::from_ymd(2012, 1, 1);
        let rain = TimeSeries::from_values(t0, 3600, vec![1.0; 10]);
        let pet = TimeSeries::from_values(t0, 3600, vec![0.1; 10]);
        let f = Forcing::new(rain, pet);
        assert_eq!(f.len(), 10);
        assert!((f.step_hours() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "share a length")]
    fn forcing_rejects_mismatched_length() {
        let t0 = Timestamp::from_ymd(2012, 1, 1);
        let rain = TimeSeries::from_values(t0, 3600, vec![1.0; 10]);
        let pet = TimeSeries::from_values(t0, 3600, vec![0.1; 9]);
        let _ = Forcing::new(rain, pet);
    }
}
