//! A FUSE-style modular modelling framework (Clark et al., 2008).
//!
//! FUSE ("Framework for Understanding Structural Errors") builds conceptual
//! rainfall-runoff models by *mixing architectural decisions* rather than
//! picking one fixed structure; the LEFT widget ran "the multi-model
//! ensemble FUSE" alongside TOPMODEL (paper §V-B). This module implements a
//! two-store framework with four interchangeable decisions — upper-layer
//! architecture, percolation, surface runoff and baseflow — a set of named
//! parent configurations, and an ensemble runner with prediction bands.

use evop_data::TimeSeries;
use serde::{Deserialize, Serialize};

use crate::routing::{convolve, triangular_kernel};
use crate::Forcing;

/// Upper-layer (soil) architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UpperArch {
    /// One undifferentiated store.
    SingleState,
    /// Tension storage (evaporation-accessible) fills before free storage
    /// (drainage-accessible).
    TensionFree,
}

/// Percolation from the upper to the lower store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PercolationArch {
    /// Drainage above field capacity only.
    FieldCapacity,
    /// Power-law of relative storage (drains at all moisture levels).
    Saturation,
}

/// Surface (storm) runoff generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RunoffArch {
    /// Saturated-area fraction `(s/smax)^b` (TOPMODEL/PRMS-like).
    SaturatedArea,
    /// VIC/Arno infiltration curve `1 − (1 − s/smax)^b`.
    VicCurve,
}

/// Baseflow from the lower store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BaseflowArch {
    /// Single linear reservoir.
    Linear,
    /// Power-law reservoir (`n > 1` gives slow deep recessions).
    Power,
    /// Two parallel linear reservoirs (fast + slow), Sacramento-like.
    TwoParallel,
}

/// One complete structural configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FuseConfig {
    /// Upper-layer architecture.
    pub upper: UpperArch,
    /// Percolation scheme.
    pub percolation: PercolationArch,
    /// Surface-runoff scheme.
    pub runoff: RunoffArch,
    /// Baseflow scheme.
    pub baseflow: BaseflowArch,
}

impl FuseConfig {
    /// A short structural signature, e.g. `"single/fc/sat/linear"`.
    pub fn signature(&self) -> String {
        let u = match self.upper {
            UpperArch::SingleState => "single",
            UpperArch::TensionFree => "tension",
        };
        let p = match self.percolation {
            PercolationArch::FieldCapacity => "fc",
            PercolationArch::Saturation => "sat-perc",
        };
        let r = match self.runoff {
            RunoffArch::SaturatedArea => "satarea",
            RunoffArch::VicCurve => "vic",
        };
        let b = match self.baseflow {
            BaseflowArch::Linear => "linear",
            BaseflowArch::Power => "power",
            BaseflowArch::TwoParallel => "parallel",
        };
        format!("{u}/{p}/{r}/{b}")
    }

    /// The four named parent configurations FUSE was built from.
    pub fn named_parents() -> Vec<(&'static str, FuseConfig)> {
        vec![
            (
                "prms-like",
                FuseConfig {
                    upper: UpperArch::TensionFree,
                    percolation: PercolationArch::FieldCapacity,
                    runoff: RunoffArch::SaturatedArea,
                    baseflow: BaseflowArch::Linear,
                },
            ),
            (
                "arno-vic-like",
                FuseConfig {
                    upper: UpperArch::SingleState,
                    percolation: PercolationArch::Saturation,
                    runoff: RunoffArch::VicCurve,
                    baseflow: BaseflowArch::Power,
                },
            ),
            (
                "topmodel-like",
                FuseConfig {
                    upper: UpperArch::SingleState,
                    percolation: PercolationArch::FieldCapacity,
                    runoff: RunoffArch::SaturatedArea,
                    baseflow: BaseflowArch::Power,
                },
            ),
            (
                "sacramento-like",
                FuseConfig {
                    upper: UpperArch::TensionFree,
                    percolation: PercolationArch::Saturation,
                    runoff: RunoffArch::VicCurve,
                    baseflow: BaseflowArch::TwoParallel,
                },
            ),
        ]
    }

    /// Every structural combination (2·2·2·3 = 24 configurations) — the
    /// full ensemble.
    pub fn all_combinations() -> Vec<FuseConfig> {
        let mut out = Vec::with_capacity(24);
        for upper in [UpperArch::SingleState, UpperArch::TensionFree] {
            for percolation in [PercolationArch::FieldCapacity, PercolationArch::Saturation] {
                for runoff in [RunoffArch::SaturatedArea, RunoffArch::VicCurve] {
                    for baseflow in
                        [BaseflowArch::Linear, BaseflowArch::Power, BaseflowArch::TwoParallel]
                    {
                        out.push(FuseConfig { upper, percolation, runoff, baseflow });
                    }
                }
            }
        }
        out
    }
}

/// FUSE parameters, shared across structures (unused ones are ignored by
/// structures that do not need them — FUSE's convention).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FuseParams {
    /// Upper store capacity (mm).
    pub s1max: f64,
    /// Tension-storage fraction of the upper store (TensionFree only).
    pub tension_frac: f64,
    /// Field capacity as a fraction of `s1max`.
    pub field_capacity: f64,
    /// Maximum percolation rate (mm/h).
    pub ku: f64,
    /// Percolation exponent (Saturation percolation).
    pub c: f64,
    /// Runoff curve exponent.
    pub b: f64,
    /// Baseflow rate constant (1/h).
    pub ks: f64,
    /// Baseflow exponent (Power baseflow).
    pub n: f64,
    /// Fast/slow split for TwoParallel baseflow, `[0, 1]` fast share.
    pub fast_frac: f64,
    /// Fast-reservoir rate multiplier (TwoParallel).
    pub fast_mult: f64,
    /// Channel routing time-to-peak (h).
    pub route_tp_hours: f64,
}

impl Default for FuseParams {
    fn default() -> FuseParams {
        FuseParams {
            s1max: 150.0,
            tension_frac: 0.4,
            field_capacity: 0.5,
            ku: 0.8,
            c: 2.0,
            b: 1.5,
            ks: 0.004,
            n: 1.6,
            fast_frac: 0.4,
            fast_mult: 12.0,
            route_tp_hours: 4.0,
        }
    }
}

impl FuseParams {
    /// Calibration ranges `(name, min, max)` in the order used by
    /// [`FuseParams::from_vector`].
    pub fn ranges() -> Vec<(&'static str, f64, f64)> {
        vec![
            ("s1max", 40.0, 400.0),
            ("tension_frac", 0.1, 0.9),
            ("field_capacity", 0.2, 0.8),
            ("ku", 0.05, 4.0),
            ("c", 1.0, 6.0),
            ("b", 0.3, 4.0),
            ("ks", 0.0005, 0.03),
            ("n", 1.0, 4.0),
            ("fast_frac", 0.1, 0.9),
            ("fast_mult", 2.0, 40.0),
            ("route_tp_hours", 1.0, 12.0),
        ]
    }

    /// Builds parameters from a calibration vector ordered as
    /// [`FuseParams::ranges`].
    ///
    /// # Panics
    ///
    /// Panics if `values` does not have exactly eleven entries.
    pub fn from_vector(values: &[f64]) -> FuseParams {
        assert_eq!(values.len(), 11, "expected 11 parameter values");
        FuseParams {
            s1max: values[0],
            tension_frac: values[1],
            field_capacity: values[2],
            ku: values[3],
            c: values[4],
            b: values[5],
            ks: values[6],
            n: values[7],
            fast_frac: values[8],
            fast_mult: values[9],
            route_tp_hours: values[10],
        }
    }

    /// Validates physical consistency.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.s1max.is_nan() || self.s1max <= 0.0 {
            return Err(format!("s1max must be positive, got {}", self.s1max));
        }
        for (name, v) in [
            ("tension_frac", self.tension_frac),
            ("field_capacity", self.field_capacity),
            ("fast_frac", self.fast_frac),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{name} must be in [0,1], got {v}"));
            }
        }
        for (name, v) in [
            ("ku", self.ku),
            ("b", self.b),
            ("ks", self.ks),
            ("n", self.n),
            ("route_tp_hours", self.route_tp_hours),
        ] {
            if v.is_nan() || v <= 0.0 {
                return Err(format!("{name} must be positive, got {v}"));
            }
        }
        Ok(())
    }
}

/// A FUSE model: one structural configuration bound to a catchment area.
///
/// # Examples
///
/// ```
/// use evop_data::{TimeSeries, Timestamp};
/// use evop_models::{Forcing, FuseConfig, FuseModel, FuseParams};
///
/// let config = FuseConfig::named_parents()[0].1;
/// let model = FuseModel::new(config, 12.5);
/// let t0 = Timestamp::from_ymd(2012, 1, 1);
/// let rain = TimeSeries::from_values(t0, 3600, vec![2.0; 100]);
/// let pet = TimeSeries::from_values(t0, 3600, vec![0.05; 100]);
/// let q = model.run(&FuseParams::default(), &Forcing::new(rain, pet)).unwrap();
/// assert_eq!(q.len(), 100);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FuseModel {
    config: FuseConfig,
    area_km2: f64,
}

impl FuseModel {
    /// Creates a model.
    ///
    /// # Panics
    ///
    /// Panics if `area_km2` is not positive.
    pub fn new(config: FuseConfig, area_km2: f64) -> FuseModel {
        assert!(area_km2 > 0.0, "area must be positive");
        FuseModel { config, area_km2 }
    }

    /// The structural configuration.
    pub fn config(&self) -> FuseConfig {
        self.config
    }

    /// Runs the model, returning routed discharge in m³/s.
    ///
    /// # Errors
    ///
    /// Returns a message when the parameters fail
    /// [`FuseParams::validate`].
    pub fn run(&self, params: &FuseParams, forcing: &Forcing) -> Result<TimeSeries, String> {
        params.validate()?;
        let dt = forcing.step_hours();
        let n = forcing.len();

        let mut s1 = params.s1max * 0.3; // upper store, mm
        let mut s2 = 50.0f64; // lower store, mm
        let mut runoff = Vec::with_capacity(n);

        for t in 0..n {
            let p = forcing.rainfall().value_at(t).max(0.0);
            let pet = forcing.pet().value_at(t).max(0.0);
            let rel1 = (s1 / params.s1max).clamp(0.0, 1.0);

            // Surface runoff fraction by decision.
            let sat_frac = match self.config.runoff {
                RunoffArch::SaturatedArea => rel1.powf(params.b),
                RunoffArch::VicCurve => 1.0 - (1.0 - rel1).powf(params.b),
            }
            .clamp(0.0, 1.0);
            let qsx = p * sat_frac;
            s1 += p - qsx;

            // Evaporation by upper architecture.
            let evap = match self.config.upper {
                UpperArch::SingleState => pet * rel1,
                UpperArch::TensionFree => {
                    // Tension storage evaporates at potential while wet.
                    let tension = (s1).min(params.tension_frac * params.s1max);
                    pet * (tension / (params.tension_frac * params.s1max)).clamp(0.0, 1.0)
                }
            };
            s1 = (s1 - evap.min(s1)).max(0.0);

            // Percolation by decision.
            let q12 = match self.config.percolation {
                PercolationArch::FieldCapacity => {
                    let fc = params.field_capacity * params.s1max;
                    if s1 > fc {
                        (params.ku * dt * ((s1 - fc) / (params.s1max - fc)).clamp(0.0, 1.0))
                            .min(s1 - fc)
                    } else {
                        0.0
                    }
                }
                PercolationArch::Saturation => (params.ku * dt * rel1.powf(params.c)).min(s1),
            };
            s1 -= q12;
            s2 += q12;

            // Upper-store overflow.
            let overflow = (s1 - params.s1max).max(0.0);
            s1 = s1.min(params.s1max);

            // Baseflow by decision.
            let qb = match self.config.baseflow {
                BaseflowArch::Linear => params.ks * dt * s2,
                BaseflowArch::Power => {
                    params.ks * dt * s2 * (s2 / 100.0).powf(params.n - 1.0).min(20.0)
                }
                BaseflowArch::TwoParallel => {
                    let fast = params.fast_frac * s2;
                    let slow = s2 - fast;
                    (params.ks * params.fast_mult * dt * fast) + (params.ks * dt * slow)
                }
            }
            .min(s2);
            s2 -= qb;

            runoff.push(qsx + overflow + qb);
        }

        let kernel = triangular_kernel(params.route_tp_hours, dt);
        let routed = convolve(&runoff, &kernel);

        let start = forcing.rainfall().start();
        let step = forcing.rainfall().step_secs();
        let mut q = TimeSeries::new(start, step);
        for depth_mm in routed {
            // mm over the catchment per step → m³/s.
            q.push(depth_mm * self.area_km2 / (3.6 * dt));
        }
        Ok(q)
    }
}

/// An ensemble run: every member's hydrograph plus summary bands.
#[derive(Debug, Clone, PartialEq)]
pub struct EnsembleOutput {
    /// Per-member `(signature, discharge)` pairs.
    pub members: Vec<(String, TimeSeries)>,
    /// Ensemble mean at each step.
    pub mean: TimeSeries,
    /// Ensemble minimum at each step.
    pub lower: TimeSeries,
    /// Ensemble maximum at each step.
    pub upper: TimeSeries,
}

/// Runs a FUSE ensemble over the given configurations with shared
/// parameters — the multi-model spread the LEFT widget displays.
///
/// # Errors
///
/// Returns the first member's error when parameters are invalid.
///
/// # Panics
///
/// Panics if `configs` is empty.
pub fn run_ensemble(
    configs: &[FuseConfig],
    params: &FuseParams,
    forcing: &Forcing,
    area_km2: f64,
) -> Result<EnsembleOutput, String> {
    assert!(!configs.is_empty(), "ensemble needs at least one member");
    let mut members = Vec::with_capacity(configs.len());
    for config in configs {
        let q = FuseModel::new(*config, area_km2).run(params, forcing)?;
        members.push((config.signature(), q));
    }
    let n = members[0].1.len();
    let start = members[0].1.start();
    let step = members[0].1.step_secs();
    let mut mean = TimeSeries::new(start, step);
    let mut lower = TimeSeries::new(start, step);
    let mut upper = TimeSeries::new(start, step);
    for t in 0..n {
        let values: Vec<f64> = members.iter().map(|(_, q)| q.value_at(t)).collect();
        mean.push(values.iter().sum::<f64>() / values.len() as f64);
        lower.push(values.iter().cloned().fold(f64::INFINITY, f64::min));
        upper.push(values.iter().cloned().fold(f64::NEG_INFINITY, f64::max));
    }
    Ok(EnsembleOutput { members, mean, lower, upper })
}

#[cfg(test)]
mod tests {
    use super::*;
    use evop_data::Timestamp;

    fn storm_forcing() -> Forcing {
        let t0 = Timestamp::from_ymd(2012, 1, 1);
        let n = 24 * 12;
        let rain = TimeSeries::from_fn(t0, 3600, n, |t| {
            let h = (t - t0) / 3600;
            if (72..84).contains(&h) {
                5.0
            } else {
                0.0
            }
        });
        let pet = TimeSeries::from_values(t0, 3600, vec![0.05; n]);
        Forcing::new(rain, pet)
    }

    #[test]
    fn all_structures_run_and_differ() {
        let forcing = storm_forcing();
        let params = FuseParams::default();
        let mut peaks = Vec::new();
        for config in FuseConfig::all_combinations() {
            let q = FuseModel::new(config, 12.5).run(&params, &forcing).unwrap();
            assert!(
                q.values().iter().all(|v| v.is_finite() && *v >= 0.0),
                "{}",
                config.signature()
            );
            peaks.push(q.peak().unwrap().1);
        }
        let min = peaks.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = peaks.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(max > min * 1.05, "structures should disagree: peaks in [{min}, {max}]");
    }

    #[test]
    fn named_parents_are_distinct() {
        let parents = FuseConfig::named_parents();
        assert_eq!(parents.len(), 4);
        let mut sigs: Vec<String> = parents.iter().map(|(_, c)| c.signature()).collect();
        sigs.sort();
        sigs.dedup();
        assert_eq!(sigs.len(), 4);
    }

    #[test]
    fn combination_count() {
        assert_eq!(FuseConfig::all_combinations().len(), 24);
    }

    #[test]
    fn storm_response_is_causal() {
        let q = FuseModel::new(FuseConfig::named_parents()[0].1, 12.5)
            .run(&FuseParams::default(), &storm_forcing())
            .unwrap();
        let (peak_idx, peak) = q.peak().unwrap();
        assert!(peak_idx >= 72, "peak at {peak_idx} precedes storm");
        assert!(peak > q.value_at(60), "storm must raise flow");
    }

    #[test]
    fn mass_is_bounded() {
        let forcing = storm_forcing();
        for (_, config) in FuseConfig::named_parents() {
            let q = FuseModel::new(config, 12.5).run(&FuseParams::default(), &forcing).unwrap();
            let q_mm: f64 = q.values().iter().sum::<f64>() * 3.6 / 12.5;
            let rain_mm = forcing.rainfall().sum();
            // Allow initial-storage drainage of up to 60 mm.
            assert!(
                q_mm < rain_mm + 60.0,
                "{}: {q_mm:.1} mm out vs {rain_mm:.1} mm rain",
                config.signature()
            );
        }
    }

    #[test]
    fn ensemble_bands_bracket_members() {
        let forcing = storm_forcing();
        let configs = FuseConfig::all_combinations();
        let out = run_ensemble(&configs, &FuseParams::default(), &forcing, 12.5).unwrap();
        assert_eq!(out.members.len(), 24);
        for t in (0..out.mean.len()).step_by(17) {
            for (_, member) in &out.members {
                assert!(member.value_at(t) >= out.lower.value_at(t) - 1e-12);
                assert!(member.value_at(t) <= out.upper.value_at(t) + 1e-12);
            }
            assert!(out.mean.value_at(t) >= out.lower.value_at(t) - 1e-12);
            assert!(out.mean.value_at(t) <= out.upper.value_at(t) + 1e-12);
        }
    }

    #[test]
    fn invalid_params_rejected() {
        let bad = FuseParams { s1max: -5.0, ..FuseParams::default() };
        assert!(FuseModel::new(FuseConfig::named_parents()[0].1, 10.0)
            .run(&bad, &storm_forcing())
            .is_err());
        let bad_frac = FuseParams { tension_frac: 1.5, ..FuseParams::default() };
        assert!(bad_frac.validate().is_err());
    }

    #[test]
    fn param_vector_round_trip() {
        let ranges = FuseParams::ranges();
        let mid: Vec<f64> = ranges.iter().map(|(_, lo, hi)| (lo + hi) / 2.0).collect();
        let params = FuseParams::from_vector(&mid);
        assert!(params.validate().is_ok());
        assert_eq!(ranges.len(), 11);
    }
}
