//! Seed-split chunked execution for embarrassingly parallel workloads.
//!
//! The paper's flagship cloud workloads — Monte Carlo calibration and the
//! GLUE ensemble (§IV-B, §VI) — are embarrassingly parallel: every model
//! run is independent. This module provides the one primitive they share:
//! run `chunks` independent jobs and return their results **in chunk
//! order**, optionally fanning out across threads when the `parallel`
//! feature is enabled.
//!
//! Determinism is structural, not incidental:
//!
//! * randomness never crosses a chunk boundary — each chunk derives its own
//!   child stream via [`SimRng::fork_indexed`](evop_sim::SimRng::fork_indexed),
//!   a pure function of `(seed, label, chunk index)`;
//! * results are merged in chunk index order, never completion order;
//! * the chunk width is a fixed constant, never derived from the thread
//!   count.
//!
//! Together these make the output a pure function of the arguments: bitwise
//! identical whether the chunks run on one thread, eight threads, or with
//! the `parallel` feature compiled out entirely. The sequential paths
//! (`monte_carlo`, `glue`) remain the golden reference; the `par_*`
//! entry points are a *different* deterministic stream (one sub-stream per
//! chunk rather than one global stream), locked down by
//! `tests/par_determinism.rs`.

/// Fixed number of samples per chunk. Constant by design: deriving it from
/// the machine's thread count would make results machine-dependent.
pub(crate) const PAR_CHUNK: usize = 4096;

/// Worker threads to use: `RAYON_NUM_THREADS` when set to a positive
/// integer (the conventional knob, honoured so CI can pin the matrix),
/// otherwise the machine's available parallelism.
///
/// Only ever consulted for *scheduling*; results never depend on it.
pub(crate) fn thread_count() -> usize {
    match std::env::var("RAYON_NUM_THREADS") {
        Ok(raw) => match raw.trim().parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => default_threads(),
        },
        Err(_) => default_threads(),
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
}

/// Runs `job(0..chunks)` with an explicit thread count and returns the
/// results in chunk order — also the hook the determinism soak uses to
/// prove 1, 2 and 8 threads produce identical bits.
///
/// Threads are assigned chunks by striding (thread `t` runs chunks `t`,
/// `t + threads`, …) and the per-thread result vectors are interleaved
/// back into chunk order, so scheduling jitter cannot reorder anything.
#[cfg(feature = "parallel")]
pub(crate) fn run_chunks_with_threads<T, F>(chunks: usize, threads: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.clamp(1, chunks.max(1));
    if threads == 1 {
        return (0..chunks).map(job).collect();
    }
    let job = &job;
    let per_thread: Vec<Vec<T>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| scope.spawn(move || (t..chunks).step_by(threads).map(job).collect()))
            .collect();
        handles
            .into_iter()
            .map(|handle| match handle.join() {
                Ok(results) => results,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    // Interleave back into chunk order: round r of the merge visits each
    // thread once, reproducing chunks r·T, r·T+1, … in index order.
    let mut iters: Vec<std::vec::IntoIter<T>> =
        per_thread.into_iter().map(Vec::into_iter).collect();
    let mut merged = Vec::with_capacity(chunks);
    while merged.len() < chunks {
        let before = merged.len();
        for iter in &mut iters {
            if let Some(result) = iter.next() {
                merged.push(result);
            }
        }
        assert!(merged.len() > before, "chunk merge stalled: worker produced too few results");
    }
    merged
}

/// Sequential fallback when the `parallel` feature is off: same chunking,
/// same per-chunk streams, same order — the bit-identity reference.
#[cfg(not(feature = "parallel"))]
pub(crate) fn run_chunks_with_threads<T, F>(chunks: usize, _threads: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    (0..chunks).map(job).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_chunk_order() {
        for threads in [1, 2, 3, 8, 64] {
            let got = run_chunks_with_threads(37, threads, |c| c * 10);
            let expect: Vec<usize> = (0..37).map(|c| c * 10).collect();
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn zero_chunks_is_empty() {
        let got: Vec<usize> = run_chunks_with_threads(0, 8, |c| c);
        assert!(got.is_empty());
    }

    #[test]
    fn env_override_must_be_positive_integer() {
        // Not an env-mutation test (those race across threads): just the
        // machine default path must be at least one.
        assert!(thread_count() >= 1);
    }
}
