//! Determinism soak for the seed-split parallel plane.
//!
//! The contract under test: `par_monte_carlo` / `par_glue` output is a
//! pure function of the arguments — **bitwise** identical across thread
//! counts (1, 2, 8) and with the `parallel` feature compiled out. The CI
//! matrix runs this file under both feature configurations and under
//! `RAYON_NUM_THREADS` ∈ {1, 2, 8}, so the env-driven entry points get
//! exercised at every pinned width as well.
//!
//! Floats are compared through `f64::to_bits`, not `==`: `NaN` scores are
//! part of the contract (failed model runs) and must reproduce exactly.

use evop_data::{TimeSeries, Timestamp};
use evop_models::calibrate::{
    try_par_monte_carlo, try_par_monte_carlo_with_threads, CalibrationResult, ParamSpace,
};
use evop_models::glue::{par_glue, par_glue_with_threads, GlueResult};
use evop_models::objectives::Objective;
use evop_sim::SimRng;

const SEEDS: [u64; 8] = [0, 1, 2, 7, 42, 1337, 0xDEAD_BEEF, u64::MAX];
const THREADS: [usize; 3] = [1, 2, 8];

fn space() -> ParamSpace {
    ParamSpace::from_ranges(&[("x", -5.0, 5.0), ("y", 0.0, 1.0), ("z", 10.0, 20.0)])
}

/// A lumpy score with a NaN pocket, so failed runs are in the soak too.
fn score(p: &[f64]) -> f64 {
    if p[1] > 0.95 {
        return f64::NAN;
    }
    -(p[0] - 1.5).powi(2) + (p[2] * p[1]).sin()
}

fn assert_bitwise_eq(a: &CalibrationResult, b: &CalibrationResult, context: &str) {
    assert_eq!(a.samples().len(), b.samples().len(), "{context}: sample counts");
    for (i, (sa, sb)) in a.samples().iter().zip(b.samples()).enumerate() {
        assert_eq!(
            sa.score.to_bits(),
            sb.score.to_bits(),
            "{context}: score bits diverged at sample {i}"
        );
        assert_eq!(sa.params.len(), sb.params.len(), "{context}: params len at sample {i}");
        for (pa, pb) in sa.params.iter().zip(&sb.params) {
            assert_eq!(pa.to_bits(), pb.to_bits(), "{context}: param bits at sample {i}");
        }
    }
    assert_eq!(a.best().params, b.best().params, "{context}: best sample");
    assert_eq!(a.evaluations(), b.evaluations(), "{context}: evaluations");
    assert_eq!(a.allocations(), b.allocations(), "{context}: allocations");
}

#[test]
fn monte_carlo_bits_survive_every_thread_count() {
    // 10_000 samples spans three chunks (PAR_CHUNK = 4096), so the merge
    // order and the ragged final chunk are both on the hook.
    for seed in SEEDS {
        let reference = try_par_monte_carlo_with_threads(&space(), 10_000, seed, 1, score).unwrap();
        for threads in THREADS {
            let run =
                try_par_monte_carlo_with_threads(&space(), 10_000, seed, threads, score).unwrap();
            assert_bitwise_eq(&reference, &run, &format!("seed {seed}, {threads} threads"));
        }
        // The env-driven entry point (whatever RAYON_NUM_THREADS says in
        // this CI cell) must land on the same bits.
        let env_run = try_par_monte_carlo(&space(), 10_000, seed, score).unwrap();
        assert_bitwise_eq(&reference, &env_run, &format!("seed {seed}, env threads"));
    }
}

#[test]
fn monte_carlo_matches_a_handwritten_sequential_chunk_loop() {
    // Reimplement the chunk scheme longhand: if this ever diverges, the
    // parallel plane changed its stream contract, not just its schedule.
    const N: usize = 9000;
    const CHUNK: usize = 4096;
    let space = space();
    for seed in [3u64, 99] {
        let root = SimRng::new(seed).fork("monte-carlo");
        let mut expect: Vec<(Vec<f64>, f64)> = Vec::new();
        let mut c = 0u64;
        while expect.len() < N {
            let mut rng = root.fork_indexed("chunk", c);
            for _ in 0..CHUNK.min(N - expect.len()) {
                let params = space.sample(&mut rng);
                let s = score(&params);
                expect.push((params, s));
            }
            c += 1;
        }
        let got = try_par_monte_carlo(&space, N, seed, score).unwrap();
        assert_eq!(got.samples().len(), N);
        for (sample, (params, s)) in got.samples().iter().zip(&expect) {
            assert_eq!(&sample.params, params);
            assert_eq!(sample.score.to_bits(), s.to_bits());
        }
    }
}

fn toy_observed() -> TimeSeries {
    TimeSeries::from_values(
        Timestamp::from_ymd(2012, 1, 1),
        3600,
        vec![2.5, 4.5, 10.5, 6.5, 3.5, 2.5],
    )
}

fn toy_simulate(params: &[f64]) -> Option<TimeSeries> {
    if params[1] > 0.9 {
        return None; // a failure pocket, so skipped runs are in the soak
    }
    let base = [1.0, 2.0, 5.0, 3.0, 1.5, 1.0];
    Some(TimeSeries::from_values(
        Timestamp::from_ymd(2012, 1, 1),
        3600,
        base.iter().map(|b| params[0].abs() * b + params[1]).collect(),
    ))
}

fn assert_glue_bitwise_eq(a: &GlueResult, b: &GlueResult, context: &str) {
    assert_eq!(a.members().len(), b.members().len(), "{context}: member counts");
    for (i, (ma, mb)) in a.members().iter().zip(b.members()).enumerate() {
        assert_eq!(ma.params, mb.params, "{context}: params at member {i}");
        assert_eq!(ma.score.to_bits(), mb.score.to_bits(), "{context}: score at member {i}");
        assert_eq!(ma.weight.to_bits(), mb.weight.to_bits(), "{context}: weight at member {i}");
    }
    for t in 0..a.lower().len() {
        for (sa, sb) in [(a.lower(), b.lower()), (a.median(), b.median()), (a.upper(), b.upper())] {
            assert_eq!(sa.value_at(t).to_bits(), sb.value_at(t).to_bits(), "{context}: bounds");
        }
    }
    assert_eq!(a.total_runs(), b.total_runs(), "{context}: total runs");
}

#[test]
fn glue_bits_survive_every_thread_count() {
    let observed = toy_observed();
    for seed in SEEDS {
        let reference = par_glue_with_threads(
            &space(),
            9000,
            seed,
            1,
            &observed,
            Objective::Nse,
            0.0,
            toy_simulate,
        )
        .unwrap();
        for threads in THREADS {
            let run = par_glue_with_threads(
                &space(),
                9000,
                seed,
                threads,
                &observed,
                Objective::Nse,
                0.0,
                toy_simulate,
            )
            .unwrap();
            assert_glue_bitwise_eq(&reference, &run, &format!("seed {seed}, {threads} threads"));
        }
        let env_run =
            par_glue(&space(), 9000, seed, &observed, Objective::Nse, 0.0, toy_simulate).unwrap();
        assert_glue_bitwise_eq(&reference, &env_run, &format!("seed {seed}, env threads"));
    }
}

#[test]
fn parallel_counters_match_sequential_contract() {
    // evaluations = n exactly; allocations = n + merged buffer + one
    // buffer per chunk — a pure function of n, never of the thread count.
    let result = try_par_monte_carlo_with_threads(&space(), 10_000, 5, 8, score).unwrap();
    assert_eq!(result.evaluations(), 10_000);
    assert_eq!(result.allocations(), 10_000 + 1 + 3);
}
