//! Vendored minimal substitute for `proptest`.
//!
//! Provides the subset this workspace's property tests use: integer,
//! float, tuple, `Vec`, and character-class string strategies, driven by
//! a deterministic per-test RNG (seeded from the test name), plus the
//! `proptest!` / `prop_assert*` macros. No shrinking: a failing case
//! reports its case number and message and panics.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Number of generated cases per property.
pub const CASES: usize = 64;

/// Deterministic splitmix64 RNG seeded from the test name.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the RNG from a test name via FNV-1a.
    pub fn from_name(name: &str) -> TestRng {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: hash }
    }

    /// Next 64 random bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform f64 in `[0, 1)` using 53 random bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform usize in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// Why a single generated case failed.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError { msg: msg.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

/// Result of a single property-test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A source of random values of one type.
pub trait Strategy {
    /// The value type this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),+ $(,)?) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = (self.end as i128) - (self.start as i128);
                    let offset = (rng.next_u64() as i128).rem_euclid(span);
                    ((self.start as i128) + offset) as $ty
                }
            }

            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty integer range strategy");
                    let span = (end as i128) - (start as i128) + 1;
                    let offset = (rng.next_u64() as i128).rem_euclid(span);
                    ((start as i128) + offset) as $ty
                }
            }
        )+
    };
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (self.end - self.start) * rng.next_f64() as f32
    }
}

/// `&str` strategies are a regex subset: a sequence of
/// `[class]{min,max}` / `[class]{n}` / `[class]` groups and literal
/// characters, where a class holds literal characters and `a-z` ranges.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

impl Strategy for String {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut pos = 0;
    while pos < chars.len() {
        let (alphabet, next) = if chars[pos] == '[' {
            let close = chars[pos..]
                .iter()
                .position(|&c| c == ']')
                .map(|i| pos + i)
                .unwrap_or_else(|| panic!("unclosed character class in pattern {pattern:?}"));
            (parse_class(&chars[pos + 1..close]), close + 1)
        } else {
            (vec![chars[pos]], pos + 1)
        };
        let (lo, hi, next) = parse_repeat(&chars, next, pattern);
        let count = if lo == hi { lo } else { lo + rng.below(hi - lo + 1) };
        for _ in 0..count {
            out.push(alphabet[rng.below(alphabet.len())]);
        }
        pos = next;
    }
    out
}

fn parse_class(body: &[char]) -> Vec<char> {
    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < body.len() {
        if i + 2 < body.len() && body[i + 1] == '-' {
            let (lo, hi) = (body[i] as u32, body[i + 2] as u32);
            assert!(lo <= hi, "descending character range in class");
            for c in lo..=hi {
                alphabet.push(char::from_u32(c).expect("valid char in class range"));
            }
            i += 3;
        } else {
            alphabet.push(body[i]);
            i += 1;
        }
    }
    assert!(!alphabet.is_empty(), "empty character class");
    alphabet
}

fn parse_repeat(chars: &[char], pos: usize, pattern: &str) -> (usize, usize, usize) {
    if pos >= chars.len() || chars[pos] != '{' {
        return (1, 1, pos);
    }
    let close = chars[pos..]
        .iter()
        .position(|&c| c == '}')
        .map(|i| pos + i)
        .unwrap_or_else(|| panic!("unclosed repetition in pattern {pattern:?}"));
    let body: String = chars[pos + 1..close].iter().collect();
    let (lo, hi) = match body.split_once(',') {
        Some((lo, hi)) => (
            lo.trim().parse().expect("repetition lower bound"),
            hi.trim().parse().expect("repetition upper bound"),
        ),
        None => {
            let n = body.trim().parse().expect("repetition count");
            (n, n)
        }
    };
    (lo, hi, close + 1)
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {
        $(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+
    };
}

tuple_strategy!((A, B), (A, B, C), (A, B, C, D));

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A half-open size range for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> SizeRange {
            assert!(range.start < range.end, "empty collection size range");
            SizeRange { lo: range.start, hi_exclusive: range.end }
        }
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> SizeRange {
            SizeRange { lo: exact, hi_exclusive: exact + 1 }
        }
    }

    /// Strategy producing `Vec`s of an element strategy's values.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Creates a strategy for `Vec`s with sizes drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi_exclusive - self.size.lo;
            let len = self.size.lo + rng.below(span.max(1));
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// One-stop imports for property tests (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate as prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Strategy, TestCaseError, TestCaseResult, TestRng};
}

/// Defines property tests: each `fn` runs [`CASES`] generated cases.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::TestRng::from_name(stringify!($name));
                for __case in 0..$crate::CASES {
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut __rng);)+
                    let __result: $crate::TestCaseResult = (|| {
                        {
                            $body
                        }
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(__err) = __result {
                        panic!(
                            "property {} failed at case {}/{}: {}",
                            stringify!($name),
                            __case + 1,
                            $crate::CASES,
                            __err
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test, failing the case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property test, failing the case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__left, __right) => {
                if !(*__left == *__right) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                        stringify!($left),
                        stringify!($right),
                        __left,
                        __right
                    )));
                }
            }
        }
    };
}

/// Asserts inequality inside a property test, failing the case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__left, __right) => {
                if *__left == *__right {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: {} != {}\n  both: {:?}",
                        stringify!($left),
                        stringify!($right),
                        __left
                    )));
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn int_ranges_stay_in_bounds(x in -2_000_000_000i64..4_000_000_000i64) {
            prop_assert!((-2_000_000_000..4_000_000_000).contains(&x));
        }

        #[test]
        fn vec_sizes_respect_range(xs in prop::collection::vec(0u64..10, 3..7)) {
            prop_assert!(xs.len() >= 3 && xs.len() < 7);
            prop_assert!(xs.iter().all(|&x| x < 10));
        }

        #[test]
        fn string_patterns_match_class(s in "[a-z0-9-]{1,20}") {
            prop_assert!(!s.is_empty() && s.len() <= 20);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'));
        }

        #[test]
        fn tuples_and_mut_patterns(mut pair in (0u8..3, 0usize..4)) {
            pair.1 += 1;
            prop_assert!(pair.0 < 3);
            prop_assert_eq!(pair.1 >= 1, true);
            if pair.0 == 0 {
                return Ok(());
            }
            prop_assert_ne!(pair.0, 0);
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::from_name("same");
        let mut b = TestRng::from_name("same");
        let mut c = TestRng::from_name("other");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
