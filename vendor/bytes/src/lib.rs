//! Vendored minimal subset of the `bytes` crate: just the cheaply-clonable
//! immutable byte container the workspace uses for message bodies.
//!
//! The container networks cannot be reached from the build environment, so
//! the workspace ships tiny self-contained implementations of its external
//! dependencies. Only the API surface the workspace actually uses is
//! provided.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable contiguous slice of bytes.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Bytes {
        Bytes { data: Arc::from(&[][..]) }
    }

    /// Creates `Bytes` from a static slice.
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes { data: Arc::from(bytes) }
    }

    /// Copies a slice into a new `Bytes`.
    pub fn copy_from_slice(bytes: &[u8]) -> Bytes {
        Bytes { data: Arc::from(bytes) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    /// Copies the bytes into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes { data: Arc::from(data) }
    }
}

impl From<String> for Bytes {
    fn from(data: String) -> Bytes {
        Bytes::from(data.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(data: &str) -> Bytes {
        Bytes::copy_from_slice(data.as_bytes())
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Bytes {
        Bytes::copy_from_slice(data)
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(data: &[u8; N]) -> Bytes {
        Bytes::copy_from_slice(data)
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<str> for Bytes {
    fn eq(&self, other: &str) -> bool {
        self.as_slice() == other.as_bytes()
    }
}

impl PartialEq<&str> for Bytes {
    fn eq(&self, other: &&str) -> bool {
        self.as_slice() == other.as_bytes()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            match b {
                b'"' => write!(f, "\\\"")?,
                b'\\' => write!(f, "\\\\")?,
                b'\n' => write!(f, "\\n")?,
                b'\r' => write!(f, "\\r")?,
                b'\t' => write!(f, "\\t")?,
                0x20..=0x7e => write!(f, "{}", b as char)?,
                _ => write!(f, "\\x{b:02x}")?,
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_storage_and_compare_equal() {
        let a = Bytes::from("hello");
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        assert_eq!(&a[..2], b"he");
    }

    #[test]
    fn debug_escapes_non_printables() {
        let b = Bytes::from(vec![b'a', 0, b'"']);
        assert_eq!(format!("{b:?}"), "b\"a\\x00\\\"\"");
    }
}
