//! The JSON value tree shared by the vendored `serde` and `serde_json`:
//! [`Value`], [`Number`], [`Map`], plus compact/pretty writers and a
//! recursive-descent parser.
//!
//! Objects are backed by a `BTreeMap`, so key order — and therefore every
//! serialized byte — is deterministic, which the workspace's reproducibility
//! guarantees rely on.

use std::borrow::Borrow;
use std::collections::btree_map;
use std::collections::BTreeMap;
use std::fmt;

use crate::de::Error;

// ---------------------------------------------------------------------
// Number
// ---------------------------------------------------------------------

/// A JSON number: unsigned, signed-negative, or floating point.
#[derive(Clone, Copy)]
pub struct Number {
    n: N,
}

#[derive(Clone, Copy)]
enum N {
    PosInt(u64),
    NegInt(i64),
    Float(f64),
}

impl Number {
    /// The value as `f64` (always possible).
    pub fn as_f64(&self) -> Option<f64> {
        Some(match self.n {
            N::PosInt(v) => v as f64,
            N::NegInt(v) => v as f64,
            N::Float(v) => v,
        })
    }

    /// The value as `i64`, if integral and in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self.n {
            N::PosInt(v) => i64::try_from(v).ok(),
            N::NegInt(v) => Some(v),
            N::Float(_) => None,
        }
    }

    /// The value as `u64`, if integral and non-negative.
    pub fn as_u64(&self) -> Option<u64> {
        match self.n {
            N::PosInt(v) => Some(v),
            N::NegInt(_) | N::Float(_) => None,
        }
    }

    /// `true` for floating-point numbers.
    pub fn is_f64(&self) -> bool {
        matches!(self.n, N::Float(_))
    }

    /// `true` when representable as `i64`.
    pub fn is_i64(&self) -> bool {
        self.as_i64().is_some()
    }

    /// `true` when representable as `u64`.
    pub fn is_u64(&self) -> bool {
        self.as_u64().is_some()
    }

    /// Builds a number from a finite `f64`; `None` for NaN/infinite.
    pub fn from_f64(value: f64) -> Option<Number> {
        value.is_finite().then_some(Number { n: N::Float(value) })
    }

    fn write(&self, out: &mut String) {
        match self.n {
            N::PosInt(v) => out.push_str(&v.to_string()),
            N::NegInt(v) => out.push_str(&v.to_string()),
            N::Float(v) => {
                if v.is_finite() {
                    let text = format!("{v}");
                    let looks_integral = !text.contains(['.', 'e', 'E']);
                    out.push_str(&text);
                    if looks_integral {
                        // Keep the float/integer distinction through a
                        // serialize → parse round trip.
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Number) -> bool {
        match (self.n, other.n) {
            (N::PosInt(a), N::PosInt(b)) => a == b,
            (N::NegInt(a), N::NegInt(b)) => a == b,
            (N::Float(a), N::Float(b)) => a == b,
            _ => false,
        }
    }
}

impl fmt::Debug for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

macro_rules! number_from_unsigned {
    ($($ty:ty),+ $(,)?) => {
        $(impl From<$ty> for Number {
            fn from(value: $ty) -> Number {
                Number { n: N::PosInt(value as u64) }
            }
        })+
    };
}

macro_rules! number_from_signed {
    ($($ty:ty),+ $(,)?) => {
        $(impl From<$ty> for Number {
            fn from(value: $ty) -> Number {
                if value < 0 {
                    Number { n: N::NegInt(value as i64) }
                } else {
                    Number { n: N::PosInt(value as u64) }
                }
            }
        })+
    };
}

number_from_unsigned!(u8, u16, u32, u64, usize);
number_from_signed!(i8, i16, i32, i64, isize);

// ---------------------------------------------------------------------
// Map
// ---------------------------------------------------------------------

/// An ordered string-keyed map of JSON values (deterministic iteration).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Map<K: Ord = String, V = Value> {
    inner: BTreeMap<K, V>,
}

impl<K: Ord, V> Map<K, V> {
    /// Creates an empty map.
    pub fn new() -> Map<K, V> {
        Map { inner: BTreeMap::new() }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// `true` when there are no entries.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Inserts an entry, returning the previous value for the key.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        self.inner.insert(key, value)
    }

    /// Looks up an entry.
    pub fn get<Q>(&self, key: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        self.inner.get(key)
    }

    /// Looks up an entry mutably.
    pub fn get_mut<Q>(&mut self, key: &Q) -> Option<&mut V>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        self.inner.get_mut(key)
    }

    /// `true` when the key is present.
    pub fn contains_key<Q>(&self, key: &Q) -> bool
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        self.inner.contains_key(key)
    }

    /// Removes an entry.
    pub fn remove<Q>(&mut self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        self.inner.remove(key)
    }

    /// Iterates entries in key order.
    pub fn iter(&self) -> btree_map::Iter<'_, K, V> {
        self.inner.iter()
    }

    /// Iterates entries mutably in key order.
    pub fn iter_mut(&mut self) -> btree_map::IterMut<'_, K, V> {
        self.inner.iter_mut()
    }

    /// Iterates keys in order.
    pub fn keys(&self) -> btree_map::Keys<'_, K, V> {
        self.inner.keys()
    }

    /// Iterates values in key order.
    pub fn values(&self) -> btree_map::Values<'_, K, V> {
        self.inner.values()
    }
}

impl<K: Ord, V> IntoIterator for Map<K, V> {
    type Item = (K, V);
    type IntoIter = btree_map::IntoIter<K, V>;

    fn into_iter(self) -> Self::IntoIter {
        self.inner.into_iter()
    }
}

impl<'a, K: Ord, V> IntoIterator for &'a Map<K, V> {
    type Item = (&'a K, &'a V);
    type IntoIter = btree_map::Iter<'a, K, V>;

    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter()
    }
}

impl<K: Ord, V> FromIterator<(K, V)> for Map<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Map<K, V> {
        Map { inner: iter.into_iter().collect() }
    }
}

impl<K: Ord, V> Extend<(K, V)> for Map<K, V> {
    fn extend<I: IntoIterator<Item = (K, V)>>(&mut self, iter: I) {
        self.inner.extend(iter);
    }
}

impl std::ops::Index<&str> for Map<String, Value> {
    type Output = Value;

    /// Missing keys yield `Null`, matching `Value` indexing semantics.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

// ---------------------------------------------------------------------
// Value
// ---------------------------------------------------------------------

/// A JSON value.
#[derive(Clone, Debug, Default, PartialEq)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered list.
    Array(Vec<Value>),
    /// A string-keyed object.
    Object(Map<String, Value>),
}

impl Value {
    /// `true` for `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// `true` for booleans.
    pub fn is_boolean(&self) -> bool {
        matches!(self, Value::Bool(_))
    }

    /// `true` for numbers.
    pub fn is_number(&self) -> bool {
        matches!(self, Value::Number(_))
    }

    /// `true` for strings.
    pub fn is_string(&self) -> bool {
        matches!(self, Value::String(_))
    }

    /// `true` for arrays.
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    /// `true` for objects.
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    /// Float view of any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// `i64` view of an integral number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// `u64` view of a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// Borrowed string content.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean content.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Borrowed array content.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Mutable array content.
    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrowed object content.
    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Mutable object content.
    pub fn as_object_mut(&mut self) -> Option<&mut Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Object member lookup (`None` off objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// JSON Pointer lookup (RFC 6901): `"/a/0/b"` walks objects and
    /// arrays; `""` refers to the whole document. `~0`/`~1` unescape to
    /// `~`/`/`.
    pub fn pointer(&self, pointer: &str) -> Option<&Value> {
        if pointer.is_empty() {
            return Some(self);
        }
        if !pointer.starts_with('/') {
            return None;
        }
        pointer[1..].split('/').try_fold(self, |target, token| {
            let token = token.replace("~1", "/").replace("~0", "~");
            match target {
                Value::Object(map) => map.get(&token),
                Value::Array(items) => token.parse::<usize>().ok().and_then(|i| items.get(i)),
                _ => None,
            }
        })
    }

    /// Replaces `self` with `Null`, returning the old value.
    pub fn take(&mut self) -> Value {
        std::mem::take(self)
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<String> for Value {
    type Output = Value;

    fn index(&self, key: String) -> &Value {
        self.get(&key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, index: usize) -> &Value {
        self.as_array().and_then(|a| a.get(index)).unwrap_or(&NULL)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&to_string(self))
    }
}

// From conversions -----------------------------------------------------

impl From<bool> for Value {
    fn from(value: bool) -> Value {
        Value::Bool(value)
    }
}

impl From<String> for Value {
    fn from(value: String) -> Value {
        Value::String(value)
    }
}

impl From<&str> for Value {
    fn from(value: &str) -> Value {
        Value::String(value.to_owned())
    }
}

impl From<&String> for Value {
    fn from(value: &String) -> Value {
        Value::String(value.clone())
    }
}

impl From<Number> for Value {
    fn from(value: Number) -> Value {
        Value::Number(value)
    }
}

impl From<f64> for Value {
    fn from(value: f64) -> Value {
        Number::from_f64(value).map_or(Value::Null, Value::Number)
    }
}

impl From<f32> for Value {
    fn from(value: f32) -> Value {
        Value::from(value as f64)
    }
}

macro_rules! value_from_int {
    ($($ty:ty),+ $(,)?) => {
        $(impl From<$ty> for Value {
            fn from(value: $ty) -> Value {
                Value::Number(Number::from(value))
            }
        })+
    };
}

value_from_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(values: Vec<T>) -> Value {
        Value::Array(values.into_iter().map(Into::into).collect())
    }
}

impl<T: Clone + Into<Value>> From<&[T]> for Value {
    fn from(values: &[T]) -> Value {
        Value::Array(values.iter().cloned().map(Into::into).collect())
    }
}

impl From<Map<String, Value>> for Value {
    fn from(map: Map<String, Value>) -> Value {
        Value::Object(map)
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(value: Option<T>) -> Value {
        value.map_or(Value::Null, Into::into)
    }
}

impl<T: Into<Value>> FromIterator<T> for Value {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Value {
        Value::Array(iter.into_iter().map(Into::into).collect())
    }
}

// Literal comparisons --------------------------------------------------

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<Value> for str {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

impl PartialEq<Value> for String {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<Value> for bool {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        matches!(self, Value::Number(n) if n.is_f64() && n.as_f64() == Some(*other))
    }
}

impl PartialEq<Value> for f64 {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

macro_rules! value_eq_int {
    ($($ty:ty),+ $(,)?) => {
        $(
            impl PartialEq<$ty> for Value {
                fn eq(&self, other: &$ty) -> bool {
                    match self {
                        Value::Number(n) => match n.n {
                            N::PosInt(v) => (v as i128) == (*other as i128),
                            N::NegInt(v) => (v as i128) == (*other as i128),
                            N::Float(_) => false,
                        },
                        _ => false,
                    }
                }
            }

            impl PartialEq<Value> for $ty {
                fn eq(&self, other: &Value) -> bool {
                    other == self
                }
            }
        )+
    };
}

value_eq_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// ---------------------------------------------------------------------
// Writers
// ---------------------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_compact(out: &mut String, value: &Value) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => n.write(out),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, item);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (key, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, key);
                out.push(':');
                write_compact(out, item);
            }
            out.push('}');
        }
    }
}

fn write_pretty(out: &mut String, value: &Value, indent: usize) {
    const STEP: usize = 2;
    match value {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&" ".repeat(indent + STEP));
                write_pretty(out, item, indent + STEP);
            }
            out.push('\n');
            out.push_str(&" ".repeat(indent));
            out.push(']');
        }
        Value::Object(map) if !map.is_empty() => {
            out.push_str("{\n");
            for (i, (key, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&" ".repeat(indent + STEP));
                write_escaped(out, key);
                out.push_str(": ");
                write_pretty(out, item, indent + STEP);
            }
            out.push('\n');
            out.push_str(&" ".repeat(indent));
            out.push('}');
        }
        other => write_compact(out, other),
    }
}

/// Renders a value as compact JSON.
pub fn to_string(value: &Value) -> String {
    let mut out = String::new();
    write_compact(&mut out, value);
    out
}

/// Renders a value as human-readable JSON (2-space indent).
pub fn to_string_pretty(value: &Value) -> String {
    let mut out = String::new();
    write_pretty(&mut out, value, 0);
    out
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, msg: &str) -> Error {
        Error::custom(format!("{msg} at byte {}", self.pos))
    }

    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn consume_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'n') if self.consume_literal("null") => Ok(Value::Null),
            Some(b't') if self.consume_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.consume_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.error("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.error("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let unit = self.parse_hex4()?;
                            let c = if (0xd800..0xdc00).contains(&unit) {
                                // High surrogate: require the paired low one.
                                if !self.consume_literal("\\u") {
                                    return Err(self.error("unpaired surrogate"));
                                }
                                let low = self.parse_hex4()?;
                                if !(0xdc00..0xe000).contains(&low) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((unit - 0xd800) << 10) + (low - 0xdc00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(unit)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.error("invalid unicode escape")),
                            }
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                }
                _ => {
                    // Re-scan the full UTF-8 scalar starting at this byte.
                    let start = self.pos - 1;
                    let rest = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.error("invalid utf-8"))?;
                    let c = rest.chars().next().ok_or_else(|| self.error("unterminated"))?;
                    self.pos = start + c.len_utf8();
                    out.push(c);
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.error("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.error("invalid unicode escape"))?;
        let unit = u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid hex"))?;
        self.pos = end;
        Ok(unit)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if is_float {
            let v: f64 = text.parse().map_err(|_| self.error("invalid number"))?;
            return Ok(Number::from_f64(v).map_or(Value::Null, Value::Number));
        }
        if text.starts_with('-') {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Number(Number::from(v)));
            }
        } else if let Ok(v) = text.parse::<u64>() {
            return Ok(Value::Number(Number::from(v)));
        }
        let v: f64 = text.parse().map_err(|_| self.error("invalid number"))?;
        Ok(Number::from_f64(v).map_or(Value::Null, Value::Number))
    }
}

/// Parses a JSON document into a [`Value`].
///
/// # Errors
///
/// Returns [`Error`] on malformed input or trailing garbage.
pub fn parse(input: &str) -> Result<Value, Error> {
    let mut parser = Parser { bytes: input.as_bytes(), pos: 0 };
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters"));
    }
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_preserve_structure() {
        let doc = r#"{"a": [1, -2, 3.5], "b": {"nested": "x\ny"}, "c": null, "d": true}"#;
        let value = parse(doc).unwrap();
        let compact = to_string(&value);
        assert_eq!(parse(&compact).unwrap(), value);
    }

    #[test]
    fn float_integer_distinction_survives() {
        let value = parse("[1, 1.0]").unwrap();
        let items = value.as_array().unwrap();
        assert_eq!(items[0].as_u64(), Some(1));
        assert!(items[1].as_u64().is_none());
        assert_eq!(items[1].as_f64(), Some(1.0));
        let text = to_string(&value);
        assert_eq!(text, "[1,1.0]");
        assert_eq!(parse(&text).unwrap(), value);
    }

    #[test]
    fn object_keys_are_sorted() {
        let value = parse(r#"{"b": 1, "a": 2}"#).unwrap();
        assert_eq!(to_string(&value), r#"{"a":2,"b":1}"#);
    }

    #[test]
    fn unicode_escapes_decode() {
        let value = parse(r#""A😀""#).unwrap();
        assert_eq!(value.as_str(), Some("A\u{1f600}"));
    }

    #[test]
    fn index_off_shape_is_null() {
        let value = parse(r#"{"a": 1}"#).unwrap();
        assert!(value["missing"].is_null());
        assert!(value[3].is_null());
        assert_eq!(value["a"], 1);
    }
}
