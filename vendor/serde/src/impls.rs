//! `Serialize`/`Deserialize` implementations for primitives and the
//! standard containers the workspace serializes.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use crate::de::Error;
use crate::json::{Map, Number, Value};
use crate::{Deserialize, Serialize};

// ---------------------------------------------------------------------
// Serialize
// ---------------------------------------------------------------------

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for Number {
    fn to_value(&self) -> Value {
        Value::Number(*self)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! serialize_int {
    ($($ty:ty),+ $(,)?) => {
        $(impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::Number(Number::from(*self))
            }
        })+
    };
}

serialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::from(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::from(f64::from(*self))
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value(), self.2.to_value()])
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        let mut map = Map::new();
        for (key, value) in self {
            map.insert(key.clone(), value.to_value());
        }
        Value::Object(map)
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut map = Map::new();
        for (key, value) in self {
            map.insert(key.clone(), value.to_value());
        }
        Value::Object(map)
    }
}

impl<V: Serialize> Serialize for Map<String, V> {
    fn to_value(&self) -> Value {
        let mut map = Map::new();
        for (key, value) in self.iter() {
            map.insert(key.clone(), value.to_value());
        }
        Value::Object(map)
    }
}

// ---------------------------------------------------------------------
// Deserialize
// ---------------------------------------------------------------------

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Value, Error> {
        Ok(value.clone())
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<bool, Error> {
        value.as_bool().ok_or_else(|| Error::custom("expected a boolean"))
    }
}

macro_rules! deserialize_int {
    ($($ty:ty),+ $(,)?) => {
        $(impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<$ty, Error> {
                let n = value
                    .as_i64()
                    .map(i128::from)
                    .or_else(|| value.as_u64().map(i128::from))
                    .ok_or_else(|| Error::custom(concat!("expected an integer for ", stringify!($ty))))?;
                <$ty>::try_from(n)
                    .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($ty))))
            }
        })+
    };
}

deserialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<f64, Error> {
        if value.is_null() {
            // Non-finite floats serialize as null; accept the round trip.
            return Ok(f64::NAN);
        }
        value.as_f64().ok_or_else(|| Error::custom("expected a number"))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<f32, Error> {
        f64::from_value(value).map(|v| v as f32)
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<String, Error> {
        value.as_str().map(str::to_owned).ok_or_else(|| Error::custom("expected a string"))
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<char, Error> {
        let s = value.as_str().ok_or_else(|| Error::custom("expected a string"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected a single character")),
        }
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Box<T>, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Option<T>, Error> {
        if value.is_null() {
            Ok(None)
        } else {
            T::from_value(value).map(Some)
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Vec<T>, Error> {
        let items = value.as_array().ok_or_else(|| Error::custom("expected an array"))?;
        items.iter().map(T::from_value).collect()
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(value: &Value) -> Result<BTreeSet<T>, Error> {
        let items = value.as_array().ok_or_else(|| Error::custom("expected an array"))?;
        items.iter().map(T::from_value).collect()
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<(A, B), Error> {
        let items = value.as_array().ok_or_else(|| Error::custom("expected an array"))?;
        if items.len() != 2 {
            return Err(Error::custom("expected an array of length 2"));
        }
        Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(value: &Value) -> Result<(A, B, C), Error> {
        let items = value.as_array().ok_or_else(|| Error::custom("expected an array"))?;
        if items.len() != 3 {
            return Err(Error::custom("expected an array of length 3"));
        }
        Ok((A::from_value(&items[0])?, B::from_value(&items[1])?, C::from_value(&items[2])?))
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<BTreeMap<String, V>, Error> {
        let object = value.as_object().ok_or_else(|| Error::custom("expected an object"))?;
        object.iter().map(|(k, v)| Ok((k.clone(), V::from_value(v)?))).collect()
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(value: &Value) -> Result<HashMap<String, V>, Error> {
        let object = value.as_object().ok_or_else(|| Error::custom("expected an object"))?;
        object.iter().map(|(k, v)| Ok((k.clone(), V::from_value(v)?))).collect()
    }
}

impl<V: Deserialize> Deserialize for Map<String, V> {
    fn from_value(value: &Value) -> Result<Map<String, V>, Error> {
        let object = value.as_object().ok_or_else(|| Error::custom("expected an object"))?;
        object.iter().map(|(k, v)| Ok((k.clone(), V::from_value(v)?))).collect()
    }
}
