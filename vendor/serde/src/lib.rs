//! Vendored minimal substitute for `serde`, built around a JSON value tree.
//!
//! The real serde is a zero-copy serialization *framework*; this vendored
//! stand-in collapses it to the one concrete use the workspace has: moving
//! plain Rust data structures to and from JSON [`json::Value`] trees. The
//! `Serialize`/`Deserialize` traits therefore convert directly to/from
//! [`json::Value`], and the companion `serde_json` crate supplies text
//! encoding on top. Derive macros come from the vendored `serde_derive`
//! when the `derive` feature is enabled.

#![forbid(unsafe_code)]

pub mod json;

mod impls;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A type that can be converted into a JSON value tree.
pub trait Serialize {
    /// Converts `self` to a [`json::Value`].
    fn to_value(&self) -> json::Value;
}

/// A type that can be reconstructed from a JSON value tree.
pub trait Deserialize: Sized {
    /// Builds `Self` from a [`json::Value`].
    ///
    /// # Errors
    ///
    /// Returns [`de::Error`] when the value's shape does not match.
    fn from_value(value: &json::Value) -> Result<Self, de::Error>;
}

/// Deserialization support types.
pub mod de {
    use std::fmt;

    pub use crate::Deserialize;

    /// A deserialization (or JSON parse) error.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Error {
        msg: String,
    }

    impl Error {
        /// Creates an error from any displayable message.
        pub fn custom(msg: impl fmt::Display) -> Error {
            Error { msg: msg.to_string() }
        }
    }

    impl fmt::Display for Error {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.msg)
        }
    }

    impl std::error::Error for Error {}

    /// Marker for types deserializable without borrowing from the input.
    ///
    /// The vendored `Deserialize` never borrows, so this is a blanket alias.
    pub trait DeserializeOwned: Deserialize {}

    impl<T: Deserialize> DeserializeOwned for T {}
}

/// Serialization support types.
pub mod ser {
    pub use crate::Serialize;
}
