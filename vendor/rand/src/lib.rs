//! Vendored minimal subset of the `rand` crate: the `RngCore`,
//! `SeedableRng` and `Rng` traits plus uniform sampling for the primitive
//! types the workspace draws.
//!
//! Only the API surface the workspace actually uses is provided; the
//! statistical quality comes from the backing generator (ChaCha8 in this
//! workspace), which implements [`RngCore`].

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Error type for fallible generator operations.
///
/// The workspace's generators are infallible; this exists to satisfy the
/// `try_fill_bytes` signature.
#[derive(Debug)]
pub struct Error {
    msg: &'static str,
}

impl Error {
    /// Creates an error with a static message.
    pub fn new(msg: &'static str) -> Error {
        Error { msg }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.msg)
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);

    /// Fills `dest` with random bytes, fallibly.
    ///
    /// # Errors
    ///
    /// Never fails for the generators in this workspace.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The seed byte array type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with a PCG32
    /// sequence exactly as upstream `rand_core` 0.6 does, so seeds
    /// produce the same key material as the real crate.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6_364_136_223_846_793_005;
        const INC: u64 = 11_634_580_027_462_260_723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            let bytes = x.to_le_bytes();
            for (dst, src) in chunk.iter_mut().zip(bytes) {
                *dst = src;
            }
        }
        Self::from_seed(seed)
    }
}

/// Types samplable uniformly over their "standard" domain (`[0, 1)` for
/// floats, the full range for integers, fair coin for `bool`).
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($ty:ty => $src:ident),+ $(,)?) => {
        $(impl StandardSample for $ty {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $ty {
                rng.$src() as $ty
            }
        })+
    };
}

standard_int!(
    u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64, usize => next_u64,
    i8 => next_u32, i16 => next_u32, i32 => next_u32, i64 => next_u64, isize => next_u64,
);

/// Ranges that can produce one uniform sample.
pub trait SampleRange<T> {
    /// Draws one value from `rng`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

// Integer range sampling replicates upstream rand 0.8's
// `UniformInt::sample_single`: widening multiply with zone rejection,
// drawing one value of the width class's "large" unsigned type per
// attempt ($u32 for 8/16/32-bit targets, u64 for 64-bit) so the
// generator stream position matches the real crate draw for draw.
macro_rules! range_int_32 {
    ($($ty:ty => $uty:ty),+ $(,)?) => {
        $(
            impl SampleRange<$ty> for Range<$ty> {
                fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let range = (self.end as $uty).wrapping_sub(self.start as $uty) as u32;
                    sample_lemire_32(rng, range, <$uty>::MAX as u32 <= u16::MAX as u32).map_or_else(
                        || <$ty as StandardSample>::sample_standard(rng),
                        |offset| (self.start as $uty).wrapping_add(offset as $uty) as $ty,
                    )
                }
            }

            impl SampleRange<$ty> for RangeInclusive<$ty> {
                fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    let (start, end) = self.into_inner();
                    assert!(start <= end, "cannot sample empty range");
                    let range = ((end as $uty).wrapping_sub(start as $uty) as u32).wrapping_add(1);
                    sample_lemire_32(rng, range, <$uty>::MAX as u32 <= u16::MAX as u32).map_or_else(
                        || <$ty as StandardSample>::sample_standard(rng),
                        |offset| (start as $uty).wrapping_add(offset as $uty) as $ty,
                    )
                }
            }
        )+
    };
}

macro_rules! range_int_64 {
    ($($ty:ty),+ $(,)?) => {
        $(
            impl SampleRange<$ty> for Range<$ty> {
                fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let range = (self.end as u64).wrapping_sub(self.start as u64);
                    sample_lemire_64(rng, range).map_or_else(
                        || <$ty as StandardSample>::sample_standard(rng),
                        |offset| (self.start as u64).wrapping_add(offset) as $ty,
                    )
                }
            }

            impl SampleRange<$ty> for RangeInclusive<$ty> {
                fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    let (start, end) = self.into_inner();
                    assert!(start <= end, "cannot sample empty range");
                    let range = ((end as u64).wrapping_sub(start as u64)).wrapping_add(1);
                    sample_lemire_64(rng, range).map_or_else(
                        || <$ty as StandardSample>::sample_standard(rng),
                        |offset| (start as u64).wrapping_add(offset) as $ty,
                    )
                }
            }
        )+
    };
}

range_int_32!(u8 => u8, u16 => u16, u32 => u32, i8 => u8, i16 => u16, i32 => u32);
range_int_64!(u64, usize, i64, isize);

/// Widening-multiply rejection sampling over a 32-bit draw; `None`
/// signals a zero `range` (full-width inclusive range). `narrow_type`
/// selects upstream's modulo-derived zone used for sub-u32 targets.
fn sample_lemire_32<R: RngCore + ?Sized>(
    rng: &mut R,
    range: u32,
    narrow_type: bool,
) -> Option<u32> {
    if range == 0 {
        return None;
    }
    let zone = if narrow_type {
        let ints_to_reject = (u32::MAX - range + 1) % range;
        u32::MAX - ints_to_reject
    } else {
        (range << range.leading_zeros()).wrapping_sub(1)
    };
    loop {
        let v = rng.next_u32();
        let m = u64::from(v) * u64::from(range);
        let (hi, lo) = ((m >> 32) as u32, m as u32);
        if lo <= zone {
            return Some(hi);
        }
    }
}

/// Widening-multiply rejection sampling over a 64-bit draw; `None`
/// signals a zero `range` (full-width inclusive range).
fn sample_lemire_64<R: RngCore + ?Sized>(rng: &mut R, range: u64) -> Option<u64> {
    if range == 0 {
        return None;
    }
    let zone = (range << range.leading_zeros()).wrapping_sub(1);
    loop {
        let v = rng.next_u64();
        let m = u128::from(v) * u128::from(range);
        let (hi, lo) = ((m >> 64) as u64, m as u64);
        if lo <= zone {
            return Some(hi);
        }
    }
}

// Float range sampling replicates upstream rand 0.8's
// `UniformFloat::sample_single`: a value in [1, 2) built from mantissa
// bits, shifted to [0, 1), then scaled — FMA-compatible ordering.
impl SampleRange<f64> for Range<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let scale = self.end - self.start;
        loop {
            let value1_2 = f64::from_bits((1023u64 << 52) | (rng.next_u64() >> 12));
            let value0_1 = value1_2 - 1.0;
            let res = value0_1 * scale + self.start;
            if res < self.end {
                return res;
            }
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = self.into_inner();
        assert!(start <= end, "cannot sample empty range");
        let value1_2 = f64::from_bits((1023u64 << 52) | (rng.next_u64() >> 12));
        let value0_1 = value1_2 - 1.0;
        value0_1 * (end - start) + start
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let scale = self.end - self.start;
        loop {
            let value1_2 = f32::from_bits((127u32 << 23) | (rng.next_u32() >> 9));
            let value0_1 = value1_2 - 1.0;
            let res = value0_1 * scale + self.start;
            if res < self.end {
                return res;
            }
        }
    }
}

impl SampleRange<f32> for RangeInclusive<f32> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let (start, end) = self.into_inner();
        assert!(start <= end, "cannot sample empty range");
        let value1_2 = f32::from_bits((127u32 << 23) | (rng.next_u32() >> 9));
        let value0_1 = value1_2 - 1.0;
        value0_1 * (end - start) + start
    }
}

/// Convenience extension methods over [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the type's standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_one(self)
    }

    /// Bernoulli draw with probability `p` (upstream's fixed-point
    /// comparison against one 64-bit draw).
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        if p >= 1.0 {
            return true;
        }
        let p_int = (p * (2.0 * (1u64 << 63) as f64)) as u64;
        self.next_u64() < p_int
    }

    /// Fills a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                for (dst, src) in chunk.iter_mut().zip(bytes) {
                    *dst = src;
                }
            }
        }
    }

    #[test]
    fn f64_standard_is_unit_interval() {
        let mut rng = Counter(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = Counter(2);
        for _ in 0..1000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&w));
            let f = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
    }
}
