//! Vendored minimal substitute for `criterion`.
//!
//! Keeps the macro and builder surface the workspace's benches use
//! (`criterion_group!`, `criterion_main!`, benchmark groups, and
//! `Bencher::iter`) but runs each benchmark for a small fixed number of
//! iterations and prints a single timing line. Good enough to keep
//! `cargo bench` compiling and producing comparable smoke numbers
//! without the statistics engine.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::Instant;

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id like `function/parameter`.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { id: format!("{function}/{parameter}") }
    }

    /// Builds an id from just a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> BenchmarkId {
        BenchmarkId { id: id.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> BenchmarkId {
        BenchmarkId { id }
    }
}

impl From<&String> for BenchmarkId {
    fn from(id: &String) -> BenchmarkId {
        BenchmarkId { id: id.clone() }
    }
}

/// Times closures passed to [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    iterations: u64,
}

impl Bencher {
    /// Runs `routine` for a fixed number of iterations, timing the batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One warm-up call, then the timed batch.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        let elapsed = start.elapsed();
        let per_iter = elapsed / u32::try_from(self.iterations).unwrap_or(u32::MAX);
        println!("    {} iterations in {elapsed:?} ({per_iter:?}/iter)", self.iterations);
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup { _criterion: self, name, iterations: 3 }
    }

    /// Runs a single standalone benchmark.
    pub fn bench_function<ID, F>(&mut self, id: ID, mut f: F) -> &mut Criterion
    where
        ID: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        println!("bench {id}");
        let mut bencher = Bencher { iterations: 3 };
        f(&mut bencher);
        self
    }
}

/// A named set of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    iterations: u64,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; scales the fixed iteration count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iterations = (n as u64 / 3).max(1).min(10);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<ID, F>(&mut self, id: ID, mut f: F) -> &mut Self
    where
        ID: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        println!("  bench {}/{}", self.name, id);
        let mut bencher = Bencher { iterations: self.iterations };
        f(&mut bencher);
        self
    }

    /// Runs one parameterised benchmark in this group.
    pub fn bench_with_input<ID, I, F>(&mut self, id: ID, input: &I, mut f: F) -> &mut Self
    where
        ID: Into<BenchmarkId>,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        println!("  bench {}/{}", self.name, id);
        let mut bencher = Bencher { iterations: self.iterations };
        f(&mut bencher, input);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Collects benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates the bench `main` from one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("smoke");
        group.sample_size(10);
        group.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2)));
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| black_box(7u64) * 6));
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn macros_and_groups_run() {
        benches();
    }
}
