//! Vendored ChaCha8 random number generator implementing the workspace's
//! vendored `rand` traits.
//!
//! This is a faithful ChaCha block function (8 rounds, 64-bit counter);
//! determinism and statistical quality match the real cipher, though the
//! exact output stream is not guaranteed to be bit-identical to the
//! upstream `rand_chacha` crate (nothing in the workspace depends on
//! upstream's stream).

#![forbid(unsafe_code)]

use rand::{Error, RngCore, SeedableRng};

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
const ROUNDS: usize = 8;

/// A ChaCha generator with 8 rounds.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buffer: [u32; 16],
    index: usize,
}

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;

        let mut working = state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self.buffer.iter_mut().zip(working.iter().zip(state.iter())) {
            *out = w.wrapping_add(*s);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }

    /// The number of 64-byte blocks generated so far.
    pub fn get_word_pos(&self) -> u128 {
        (self.counter as u128) * 16 + self.index as u128
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> ChaCha8Rng {
        let mut key = [0u32; 8];
        for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        ChaCha8Rng { key, counter: 0, buffer: [0; 16], index: 16 }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let bytes = self.next_u32().to_le_bytes();
            for (dst, src) in chunk.iter_mut().zip(bytes) {
                *dst = src;
            }
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn unit_floats_look_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} too far from 0.5");
    }

    #[test]
    fn clone_preserves_position() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        rng.next_u32();
        let mut snapshot = rng.clone();
        assert_eq!(rng.next_u64(), snapshot.next_u64());
    }
}
