//! Vendored minimal subset of `crossbeam`: the unbounded MPMC channel with
//! clonable `Sender`/`Receiver` handles and disconnect detection.
//!
//! Only the API surface the workspace actually uses is provided.

#![forbid(unsafe_code)]

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Mutex, PoisonError};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    impl<T> Shared<T> {
        fn queue(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            self.queue.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message is currently queued.
        Empty,
        /// All senders are gone and the queue is drained.
        Disconnected,
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }

    impl<T> Sender<T> {
        /// Queues a message.
        ///
        /// # Errors
        ///
        /// Returns the message back if every receiver has been dropped.
        pub fn send(&self, message: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(message));
            }
            self.shared.queue().push_back(message);
            Ok(())
        }

        /// Number of queued messages.
        pub fn len(&self) -> usize {
            self.shared.queue().len()
        }

        /// `true` when no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.shared.queue().is_empty()
        }
    }

    impl<T> Receiver<T> {
        /// Receives a message without blocking.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] when nothing is queued,
        /// [`TryRecvError::Disconnected`] when additionally every sender is
        /// gone.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            match self.shared.queue().pop_front() {
                Some(message) => Ok(message),
                None if self.shared.senders.load(Ordering::SeqCst) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }

        /// Receives a message, spinning until one arrives.
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] when the channel is drained and every
        /// sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            loop {
                match self.try_recv() {
                    Ok(message) => return Ok(message),
                    Err(TryRecvError::Disconnected) => return Err(RecvError),
                    Err(TryRecvError::Empty) => std::thread::yield_now(),
                }
            }
        }

        /// Drains currently queued messages without blocking.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { receiver: self }
        }

        /// Number of queued messages.
        pub fn len(&self) -> usize {
            self.shared.queue().len()
        }

        /// `true` when no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.shared.queue().is_empty()
        }
    }

    /// Iterator over currently queued messages; see [`Receiver::try_iter`].
    pub struct TryIter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.try_recv().ok()
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.shared.senders.fetch_add(1, Ordering::SeqCst);
            Sender { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.shared.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            self.shared.senders.fetch_sub(1, Ordering::SeqCst);
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::SeqCst);
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("receiving on an empty channel"),
                TryRecvError::Disconnected => f.write_str("receiving on a disconnected channel"),
            }
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on a disconnected channel")
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_and_disconnect_semantics() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.try_recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn cloned_receiver_keeps_channel_alive() {
            let (tx, rx) = unbounded();
            let rx2 = rx.clone();
            drop(rx);
            tx.send(7).unwrap();
            assert_eq!(rx2.try_recv(), Ok(7));
            drop(rx2);
            assert!(tx.send(8).is_err());
        }
    }
}
