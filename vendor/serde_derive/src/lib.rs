//! Vendored minimal `#[derive(Serialize)]` / `#[derive(Deserialize)]`
//! macros for the vendored value-based serde.
//!
//! Written without `syn`/`quote`: the input item is parsed directly from
//! the token stream and the generated impl is assembled as source text.
//! Supports exactly the shapes this workspace derives on: non-generic
//! structs with named fields, tuple/newtype structs (including
//! `#[serde(transparent)]`), and enums whose variants are units, named
//! structs, or tuples. Enums use serde's externally-tagged representation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Input {
    name: String,
    kind: Kind,
}

#[derive(Debug)]
enum Kind {
    NamedStruct { fields: Vec<String>, transparent: bool },
    TupleStruct { arity: usize },
    UnitStruct,
    Enum { variants: Vec<Variant> },
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: VariantShape,
}

#[derive(Debug)]
enum VariantShape {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

/// Derives the vendored value-based `Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    generate_serialize(&parsed).parse().expect("generated Serialize impl parses")
}

/// Derives the vendored value-based `Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    generate_deserialize(&parsed).parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

/// Consumes leading `#[...]` attributes, reporting whether any was
/// `#[serde(transparent)]`.
fn skip_attributes(tokens: &[TokenTree], mut pos: usize) -> (usize, bool) {
    let mut transparent = false;
    while pos + 1 < tokens.len() {
        let TokenTree::Punct(p) = &tokens[pos] else { break };
        if p.as_char() != '#' {
            break;
        }
        let TokenTree::Group(group) = &tokens[pos + 1] else { break };
        if group.delimiter() != Delimiter::Bracket {
            break;
        }
        let inner: Vec<TokenTree> = group.stream().into_iter().collect();
        if let Some(TokenTree::Ident(name)) = inner.first() {
            if name.to_string() == "serde" {
                if let Some(TokenTree::Group(args)) = inner.get(1) {
                    let has_transparent = args.stream().into_iter().any(
                        |t| matches!(&t, TokenTree::Ident(i) if i.to_string() == "transparent"),
                    );
                    transparent = transparent || has_transparent;
                }
            }
        }
        pos += 2;
    }
    (pos, transparent)
}

/// Consumes an optional `pub` / `pub(crate)` / `pub(in ...)` prefix.
fn skip_visibility(tokens: &[TokenTree], mut pos: usize) -> usize {
    if let Some(TokenTree::Ident(ident)) = tokens.get(pos) {
        if ident.to_string() == "pub" {
            pos += 1;
            if let Some(TokenTree::Group(group)) = tokens.get(pos) {
                if group.delimiter() == Delimiter::Parenthesis {
                    pos += 1;
                }
            }
        }
    }
    pos
}

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (pos, transparent) = skip_attributes(&tokens, 0);
    let pos = skip_visibility(&tokens, pos);

    let TokenTree::Ident(keyword) = &tokens[pos] else {
        panic!("expected `struct` or `enum`, got {:?}", tokens[pos]);
    };
    let keyword = keyword.to_string();
    let TokenTree::Ident(name) = &tokens[pos + 1] else {
        panic!("expected the type name after `{keyword}`");
    };
    let name = name.to_string();
    let body = tokens.get(pos + 2);

    let kind = match (keyword.as_str(), body) {
        ("struct", Some(TokenTree::Group(group))) if group.delimiter() == Delimiter::Brace => {
            Kind::NamedStruct { fields: parse_named_fields(group.stream()), transparent }
        }
        ("struct", Some(TokenTree::Group(group)))
            if group.delimiter() == Delimiter::Parenthesis =>
        {
            Kind::TupleStruct { arity: count_tuple_fields(group.stream()) }
        }
        ("struct", _) => Kind::UnitStruct,
        ("enum", Some(TokenTree::Group(group))) if group.delimiter() == Delimiter::Brace => {
            Kind::Enum { variants: parse_variants(group.stream()) }
        }
        _ => panic!("derive only supports plain structs and enums (type `{name}`)"),
    };
    Input { name, kind }
}

/// Parses `field: Type, ...` lists, returning the field names.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let (next, _) = skip_attributes(&tokens, pos);
        let next = skip_visibility(&tokens, next);
        if next >= tokens.len() {
            break;
        }
        let TokenTree::Ident(field) = &tokens[next] else {
            panic!("expected a field name, got {:?}", tokens[next]);
        };
        fields.push(field.to_string());
        // Skip past `:` and the type, to the next top-level comma. Type
        // tokens may contain commas inside `<...>` generic argument lists,
        // which appear as plain punctuation, so track angle depth.
        let mut angle_depth = 0i32;
        pos = next + 1;
        while pos < tokens.len() {
            match &tokens[pos] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    pos += 1;
                    break;
                }
                _ => {}
            }
            pos += 1;
        }
    }
    fields
}

/// Counts top-level comma-separated entries in a tuple-struct body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    let mut saw_tokens_since_comma = true;
    for token in &tokens {
        match token {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                count += 1;
                saw_tokens_since_comma = false;
            }
            _ => saw_tokens_since_comma = true,
        }
    }
    if !saw_tokens_since_comma {
        // Trailing comma.
        count -= 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let (next, _) = skip_attributes(&tokens, pos);
        if next >= tokens.len() {
            break;
        }
        let TokenTree::Ident(name) = &tokens[next] else {
            panic!("expected a variant name, got {:?}", tokens[next]);
        };
        let name = name.to_string();
        pos = next + 1;
        let shape = match tokens.get(pos) {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                pos += 1;
                VariantShape::Named(parse_named_fields(group.stream()))
            }
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                VariantShape::Tuple(count_tuple_fields(group.stream()))
            }
            _ => VariantShape::Unit,
        };
        variants.push(Variant { name, shape });
        // Skip to past the separating comma (tolerates explicit
        // discriminants, which the workspace does not use).
        while pos < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[pos] {
                if p.as_char() == ',' {
                    pos += 1;
                    break;
                }
            }
            pos += 1;
        }
    }
    variants
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

fn generate_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::NamedStruct { fields, transparent: true } => {
            format!("::serde::Serialize::to_value(&self.{})", fields[0])
        }
        Kind::NamedStruct { fields, transparent: false } => {
            let mut code = String::from("let mut __map = ::serde::json::Map::new();\n");
            for field in fields {
                code.push_str(&format!(
                    "__map.insert(::std::string::String::from(\"{field}\"), \
                     ::serde::Serialize::to_value(&self.{field}));\n"
                ));
            }
            code.push_str("::serde::json::Value::Object(__map)");
            code
        }
        Kind::TupleStruct { arity: 1 } => String::from("::serde::Serialize::to_value(&self.0)"),
        Kind::TupleStruct { arity } => {
            let items: Vec<String> =
                (0..*arity).map(|i| format!("::serde::Serialize::to_value(&self.{i})")).collect();
            format!("::serde::json::Value::Array(::std::vec![{}])", items.join(", "))
        }
        Kind::UnitStruct => String::from("::serde::json::Value::Null"),
        Kind::Enum { variants } => {
            let mut arms = String::new();
            for variant in variants {
                let vname = &variant.name;
                match &variant.shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::json::Value::String(\
                         ::std::string::String::from(\"{vname}\")),\n"
                    )),
                    VariantShape::Named(fields) => {
                        let bindings = fields.join(", ");
                        let mut inner =
                            String::from("let mut __inner = ::serde::json::Map::new();\n");
                        for field in fields {
                            inner.push_str(&format!(
                                "__inner.insert(::std::string::String::from(\"{field}\"), \
                                 ::serde::Serialize::to_value({field}));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {bindings} }} => {{\n{inner}\
                             let mut __map = ::serde::json::Map::new();\n\
                             __map.insert(::std::string::String::from(\"{vname}\"), \
                             ::serde::json::Value::Object(__inner));\n\
                             ::serde::json::Value::Object(__map)\n}},\n"
                        ));
                    }
                    VariantShape::Tuple(arity) => {
                        let bindings: Vec<String> =
                            (0..*arity).map(|i| format!("__f{i}")).collect();
                        let payload = if *arity == 1 {
                            String::from("::serde::Serialize::to_value(__f0)")
                        } else {
                            let items: Vec<String> = bindings
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "::serde::json::Value::Array(::std::vec![{}])",
                                items.join(", ")
                            )
                        };
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => {{\n\
                             let mut __map = ::serde::json::Map::new();\n\
                             __map.insert(::std::string::String::from(\"{vname}\"), {payload});\n\
                             ::serde::json::Value::Object(__map)\n}},\n",
                            bindings.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::json::Value {{\n{body}\n}}\n}}\n"
    )
}

fn generate_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::NamedStruct { fields, transparent: true } => {
            format!(
                "::std::result::Result::Ok({name} {{ {}: ::serde::Deserialize::from_value(__value)? }})",
                fields[0]
            )
        }
        Kind::NamedStruct { fields, transparent: false } => {
            let mut inits = String::new();
            for field in fields {
                inits.push_str(&format!(
                    "{field}: ::serde::Deserialize::from_value(\
                     __object.get(\"{field}\").unwrap_or(&::serde::json::Value::Null))?,\n"
                ));
            }
            format!(
                "let __object = __value.as_object().ok_or_else(|| \
                 ::serde::de::Error::custom(\"{name}: expected an object\"))?;\n\
                 ::std::result::Result::Ok({name} {{\n{inits}}})"
            )
        }
        Kind::TupleStruct { arity: 1 } => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__value)?))")
        }
        Kind::TupleStruct { arity } => {
            let mut items = String::new();
            for i in 0..*arity {
                items.push_str(&format!("::serde::Deserialize::from_value(&__items[{i}])?,\n"));
            }
            format!(
                "let __items = __value.as_array().ok_or_else(|| \
                 ::serde::de::Error::custom(\"{name}: expected an array\"))?;\n\
                 if __items.len() != {arity} {{\n\
                 return ::std::result::Result::Err(::serde::de::Error::custom(\
                 \"{name}: expected an array of length {arity}\"));\n}}\n\
                 ::std::result::Result::Ok({name}({items}))"
            )
        }
        Kind::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Kind::Enum { variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for variant in variants {
                let vname = &variant.name;
                match &variant.shape {
                    VariantShape::Unit => unit_arms.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n"
                    )),
                    VariantShape::Named(fields) => {
                        let mut inits = String::new();
                        for field in fields {
                            inits.push_str(&format!(
                                "{field}: ::serde::Deserialize::from_value(\
                                 __inner.get(\"{field}\")\
                                 .unwrap_or(&::serde::json::Value::Null))?,\n"
                            ));
                        }
                        data_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                             let __inner = __payload.as_object().ok_or_else(|| \
                             ::serde::de::Error::custom(\"{name}::{vname}: expected an object\"))?;\n\
                             ::std::result::Result::Ok({name}::{vname} {{\n{inits}}})\n}},\n"
                        ));
                    }
                    VariantShape::Tuple(arity) => {
                        if *arity == 1 {
                            data_arms.push_str(&format!(
                                "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                                 ::serde::Deserialize::from_value(__payload)?)),\n"
                            ));
                        } else {
                            let mut items = String::new();
                            for i in 0..*arity {
                                items.push_str(&format!(
                                    "::serde::Deserialize::from_value(&__items[{i}])?,\n"
                                ));
                            }
                            data_arms.push_str(&format!(
                                "\"{vname}\" => {{\n\
                                 let __items = __payload.as_array().ok_or_else(|| \
                                 ::serde::de::Error::custom(\"{name}::{vname}: expected an array\"))?;\n\
                                 if __items.len() != {arity} {{\n\
                                 return ::std::result::Result::Err(::serde::de::Error::custom(\
                                 \"{name}::{vname}: wrong tuple length\"));\n}}\n\
                                 ::std::result::Result::Ok({name}::{vname}({items}))\n}},\n"
                            ));
                        }
                    }
                }
            }
            format!(
                "match __value {{\n\
                 ::serde::json::Value::String(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => ::std::result::Result::Err(::serde::de::Error::custom(\
                 ::std::format!(\"{name}: unknown variant {{__other}}\"))),\n}},\n\
                 ::serde::json::Value::Object(__map) => {{\n\
                 let (__tag, __payload) = __map.iter().next().ok_or_else(|| \
                 ::serde::de::Error::custom(\"{name}: expected a variant object\"))?;\n\
                 let __payload: &::serde::json::Value = __payload;\n\
                 match __tag.as_str() {{\n\
                 {data_arms}\
                 __other => ::std::result::Result::Err(::serde::de::Error::custom(\
                 ::std::format!(\"{name}: unknown variant {{__other}}\"))),\n}}\n}},\n\
                 _ => ::std::result::Result::Err(::serde::de::Error::custom(\
                 \"{name}: expected a string or object\")),\n}}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__value: &::serde::json::Value) \
         -> ::std::result::Result<Self, ::serde::de::Error> {{\n{body}\n}}\n}}\n"
    )
}
