//! Vendored minimal substitute for `serde_json`.
//!
//! Re-exports the JSON value model that lives in the vendored `serde`
//! crate and adds the familiar function surface (`to_string`,
//! `from_str`, `to_value`, `from_value`, ...) plus the `json!` macro.
//! Object keys are stored in a `BTreeMap`, so all rendered output has
//! deterministically sorted keys.

#![forbid(unsafe_code)]

pub use serde::de::Error;
pub use serde::json::{Map, Number, Value};

use serde::de::DeserializeOwned;
use serde::Serialize;

/// Converts any serializable value into a [`Value`] tree.
///
/// # Errors
///
/// Never fails in this vendored implementation; the `Result` mirrors the
/// upstream signature.
pub fn to_value<T: Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Reconstructs a typed value from a [`Value`] tree.
///
/// # Errors
///
/// Returns [`Error`] when the value's shape does not match `T`.
pub fn from_value<T: DeserializeOwned>(value: Value) -> Result<T, Error> {
    T::from_value(&value)
}

/// Renders a serializable value as compact JSON text.
///
/// # Errors
///
/// Never fails in this vendored implementation.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(serde::json::to_string(&value.to_value()))
}

/// Renders a serializable value as pretty-printed JSON text.
///
/// # Errors
///
/// Never fails in this vendored implementation.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(serde::json::to_string_pretty(&value.to_value()))
}

/// Renders a serializable value as compact JSON bytes.
///
/// # Errors
///
/// Never fails in this vendored implementation.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Parses JSON text into a typed value.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: DeserializeOwned>(text: &str) -> Result<T, Error> {
    let value = serde::json::parse(text)?;
    T::from_value(&value)
}

/// Parses JSON bytes into a typed value.
///
/// # Errors
///
/// Returns [`Error`] on invalid UTF-8, malformed JSON, or a shape mismatch.
pub fn from_slice<T: DeserializeOwned>(bytes: &[u8]) -> Result<T, Error> {
    let text = std::str::from_utf8(bytes).map_err(|_| Error::custom("invalid UTF-8 in JSON"))?;
    from_str(text)
}

#[doc(hidden)]
pub fn to_value_macro_helper<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Constructs a [`Value`] from a JSON literal.
///
/// ```
/// let v = serde_json::json!({ "name": "eden", "sensors": [1, 2, 3] });
/// assert_eq!(v["sensors"][1], 2);
/// ```
#[macro_export]
macro_rules! json {
    ($($json:tt)+) => {
        $crate::json_internal!($($json)+)
    };
    () => {
        compile_error!("json! requires a JSON value")
    };
}

// The tt-muncher below follows the structure of upstream serde_json's
// `json_internal!`: array elements and object entries are munched token
// by token because nested `{...}` / `[...]` literals are not valid Rust
// expressions and cannot be captured as `$value:expr`.
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    // ----- arrays: accumulate elements into [$($elems:expr,)*] -----
    (@array [$($elems:expr,)*]) => {
        $crate::json_internal_vec![$($elems,)*]
    };
    (@array [$($elems:expr),*]) => {
        $crate::json_internal_vec![$($elems),*]
    };
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(null)] $($rest)*)
    };
    (@array [$($elems:expr,)*] true $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(true)] $($rest)*)
    };
    (@array [$($elems:expr,)*] false $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(false)] $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($array:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($array)*])] $($rest)*)
    };
    (@array [$($elems:expr,)*] {$($map:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($map)*})] $($rest)*)
    };
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($next),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last)])
    };
    (@array [$($elems:expr),*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };
    (@array [$($elems:expr),*] $unexpected:tt $($rest:tt)*) => {
        $crate::json_unexpected!($unexpected)
    };

    // ----- objects: munch a key, then its value, inserting into $object -----
    (@object $object:ident () () ()) => {};
    (@object $object:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        let _ = $object.insert(($($key)+).into(), $value);
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };
    (@object $object:ident [$($key:tt)+] ($value:expr) $unexpected:tt $($rest:tt)*) => {
        $crate::json_unexpected!($unexpected);
    };
    (@object $object:ident [$($key:tt)+] ($value:expr)) => {
        let _ = $object.insert(($($key)+).into(), $value);
    };
    (@object $object:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(null)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: true $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(true)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: false $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(false)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: [$($array:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!([$($array)*])) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: {$($map:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!({$($map)*})) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)) , $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)));
    };
    (@object $object:ident ($($key:tt)+) (:) $copy:tt) => {
        // Missing value for the last entry.
        $crate::json_internal!();
    };
    (@object $object:ident ($($key:tt)+) () $copy:tt) => {
        // Missing colon.
        $crate::json_internal!();
    };
    (@object $object:ident () (: $($rest:tt)*) ($colon:tt $($copy:tt)*)) => {
        // Missing key.
        $crate::json_unexpected!($colon);
    };
    (@object $object:ident ($($key:tt)*) (, $($rest:tt)*) ($comma:tt $($copy:tt)*)) => {
        // Comma inside a key.
        $crate::json_unexpected!($comma);
    };
    (@object $object:ident () (($key:expr) : $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($key) (: $($rest)*) (: $($rest)*));
    };
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*) ($($rest)*));
    };

    // ----- primary entry points -----
    (null) => {
        $crate::Value::Null
    };
    (true) => {
        $crate::Value::Bool(true)
    };
    (false) => {
        $crate::Value::Bool(false)
    };
    ([]) => {
        $crate::Value::Array($crate::json_internal_vec![])
    };
    ([ $($tt:tt)+ ]) => {
        $crate::Value::Array($crate::json_internal!(@array [] $($tt)+))
    };
    ({}) => {
        $crate::Value::Object($crate::Map::new())
    };
    ({ $($tt:tt)+ }) => {
        $crate::Value::Object({
            let mut object = $crate::Map::new();
            $crate::json_internal!(@object object () ($($tt)+) ($($tt)+));
            object
        })
    };
    ($other:expr) => {
        $crate::to_value_macro_helper(&$other)
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_internal_vec {
    ($($content:tt)*) => {
        vec![$($content)*]
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_unexpected {
    () => {};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_nested_values() {
        let name = "eden";
        let value = json!({
            "catchment": name,
            "sensors": [1, 2, 3],
            "nested": { "ok": true, "ratio": 0.5 },
            "none": null,
        });
        assert_eq!(value["catchment"], "eden");
        assert_eq!(value["sensors"][2], 3);
        assert_eq!(value["nested"]["ok"], true);
        assert_eq!(value["nested"]["ratio"], 0.5);
        assert!(value["none"].is_null());
        assert_eq!(
            to_string(&value).unwrap(),
            r#"{"catchment":"eden","nested":{"ok":true,"ratio":0.5},"none":null,"sensors":[1,2,3]}"#
        );
    }

    #[test]
    fn round_trip_via_text() {
        let value = json!({"a": [1, 2.5, "x"], "b": {"c": false}});
        let text = to_string(&value).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(value, back);
    }

    #[test]
    fn expression_values_embed() {
        let xs = vec![1u32, 2, 3];
        let value = json!({ "xs": xs, "sum": 1 + 2 });
        assert_eq!(value["sum"], 3);
        assert_eq!(value["xs"][0], 1);
    }
}
