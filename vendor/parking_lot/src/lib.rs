//! Vendored minimal subset of `parking_lot`: `Mutex` and `RwLock` with the
//! poison-free guard-returning API, implemented over `std::sync`.
//!
//! Only the API surface the workspace actually uses is provided.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

/// A mutual exclusion primitive whose `lock` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Wraps a value.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: self.inner.lock().unwrap_or_else(sync::PoisonError::into_inner) }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: guard }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard { inner: p.into_inner() }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Mutex<T> {
        Mutex::new(value)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A reader-writer lock whose `read`/`write` return guards directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Wraps a value.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard { inner: self.inner.read().unwrap_or_else(sync::PoisonError::into_inner) }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard { inner: self.inner.write().unwrap_or_else(sync::PoisonError::into_inner) }
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T> From<T> for RwLock<T> {
    fn from(value: T) -> RwLock<T> {
        RwLock::new(value)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            Err(_) => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
