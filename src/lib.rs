//! EVOp — the Environmental Virtual Observatory pilot, reproduced in Rust.
//!
//! This is the umbrella crate: it re-exports the observatory facade from
//! [`evop_core`] and the individual subsystem crates for downstream users
//! who want one dependency. See the repository README for a tour and
//! `examples/` for runnable scenarios.
//!
//! # Examples
//!
//! ```
//! let evop = evop::Evop::builder().seed(42).days(5).build();
//! assert_eq!(evop.catchments()[0].id().as_str(), "morland");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use evop_core::{
    ablations, api, compose, experiments, registry, AssetKind, AssetRecord, AssetRegistry, Evop,
    EvopBuilder,
};

pub use evop_broker as broker;
pub use evop_cache as cache;
pub use evop_chaos as chaos;
pub use evop_cloud as cloud;
pub use evop_data as data;
pub use evop_models as models;
pub use evop_obs as obs;
pub use evop_portal as portal;
pub use evop_services as services;
pub use evop_sim as sim;
pub use evop_workflow as workflow;
pub use evop_xcloud as xcloud;
